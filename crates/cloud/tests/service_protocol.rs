//! Protocol-level tests of the cloud handlers, driven directly (no network
//! simulator). Each test exercises one policy branch the paper's attacks
//! probe.

// Test code: panicking on unexpected state is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rb_cloud::{CloudConfig, CloudService};
use rb_core::design::{DeviceAuthScheme, VendorDesign};
use rb_core::shadow::ShadowState;
use rb_core::vendors;
use rb_netsim::{NodeId, SimRng, Tick};
use rb_wire::ids::{DevId, MacAddr};
use rb_wire::messages::{
    BindPayload, ControlAction, DenyReason, DeviceAttributes, Message, Response, StatusAuth,
    StatusPayload, UnbindPayload,
};
use rb_wire::telemetry::{ScheduleEntry, TelemetryFrame};
use rb_wire::tokens::{BindToken, DevToken, SessionToken, UserId, UserPw, UserToken};

const USER_NODE: NodeId = NodeId(1);
const DEVICE_NODE: NodeId = NodeId(2);
const ATTACKER_NODE: NodeId = NodeId(3);

const FACTORY_SECRET: u128 = 0xfeed_f00d_dead_beef_0123_4567_89ab_cdef;

fn dev_id() -> DevId {
    DevId::Mac(MacAddr::from_oui([0x50, 0xc7, 0xbf], 0x000042))
}

struct Harness {
    cloud: CloudService,
    rng: SimRng,
    now: Tick,
}

impl Harness {
    fn new(design: VendorDesign) -> Self {
        let mut cloud = CloudService::new(CloudConfig::new(design));
        cloud.provision_account(UserId::new("victim"), UserPw::new("victim-pw"));
        cloud.provision_account(UserId::new("attacker"), UserPw::new("attacker-pw"));
        cloud.manufacture(dev_id(), FACTORY_SECRET, None);
        // User and device share the home NAT; the attacker does not.
        cloud.set_public_ip(USER_NODE, 100);
        cloud.set_public_ip(DEVICE_NODE, 100);
        cloud.set_public_ip(ATTACKER_NODE, 200);
        Harness {
            cloud,
            rng: SimRng::new(0xbead),
            now: Tick(0),
        }
    }

    fn send(&mut self, from: NodeId, msg: Message) -> rb_cloud::Outcome {
        self.now += 10;
        let now = self.now;
        self.cloud.handle_message(from, now, &msg, &mut self.rng)
    }

    fn login(&mut self, from: NodeId, user: &str, pw: &str) -> UserToken {
        match self
            .send(
                from,
                Message::Login {
                    user_id: UserId::new(user),
                    user_pw: UserPw::new(pw),
                },
            )
            .reply
        {
            Response::LoginOk { user_token } => user_token,
            other => panic!("login failed: {other}"),
        }
    }

    fn status_auth(&mut self, user_token: Option<UserToken>) -> StatusAuth {
        match self.cloud.design().auth {
            DeviceAuthScheme::DevToken => {
                let token = user_token.expect("DevToken design needs a user token");
                match self
                    .send(USER_NODE, Message::RequestDevToken { user_token: token })
                    .reply
                {
                    Response::DevTokenIssued { dev_token } => StatusAuth::DevToken(dev_token),
                    other => panic!("token request failed: {other}"),
                }
            }
            DeviceAuthScheme::DevId => StatusAuth::DevId(dev_id()),
            DeviceAuthScheme::Opaque => {
                StatusAuth::DevToken(DevToken::from_entropy(FACTORY_SECRET))
            }
            DeviceAuthScheme::PublicKey => unreachable!("not used in these tests"),
        }
    }

    fn device_register(&mut self, auth: StatusAuth) -> rb_cloud::Outcome {
        self.send(
            DEVICE_NODE,
            Message::Status(StatusPayload::register(
                auth,
                dev_id(),
                DeviceAttributes::new("unit", "1.0"),
            )),
        )
    }

    fn bind_as(&mut self, from: NodeId, user_token: UserToken) -> rb_cloud::Outcome {
        self.send(
            from,
            Message::Bind(BindPayload::AclApp {
                dev_id: dev_id(),
                user_token,
            }),
        )
    }
}

/// Drives the standard happy path: victim logs in, device registers, victim
/// binds. Returns (victim token, device auth, binding session if any).
fn setup_bound(h: &mut Harness) -> (UserToken, StatusAuth, Option<SessionToken>) {
    let victim = h.login(USER_NODE, "victim", "victim-pw");
    let auth = h.status_auth(Some(victim));
    let r = h.device_register(auth.clone());
    assert!(r.reply.is_ok(), "register: {}", r.reply);
    let r = h.bind_as(USER_NODE, victim);
    let session = match r.reply {
        Response::Bound { session } => session,
        other => panic!("bind failed: {other}"),
    };
    // If the design uses post-binding sessions, the app delivers the token
    // to the device locally; the device then presents it in a heartbeat.
    if let Some(s) = session {
        let mut hb = StatusPayload::heartbeat(auth.clone(), dev_id());
        hb.session = Some(s);
        let r = h.send(DEVICE_NODE, Message::Status(hb));
        assert!(r.reply.is_ok());
    }
    (victim, auth, session)
}

// ---------------------------------------------------------------------------
// Happy paths.
// ---------------------------------------------------------------------------

#[test]
fn full_lifecycle_on_a_dev_token_design() {
    let mut h = Harness::new(vendors::lightstory());
    let (victim, _auth, session) = setup_bound(&mut h);
    assert_eq!(h.cloud.shadow_state(&dev_id()), ShadowState::Control);
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));

    // Control works for the bound user.
    let r = h.send(
        USER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: victim,
            session,
            action: ControlAction::TurnOn,
        },
    );
    assert!(r.reply.is_ok(), "{}", r.reply);
    assert_eq!(r.pushes.len(), 1, "one push to the device");
    assert_eq!(r.pushes[0].0, DEVICE_NODE);

    // Unbind by the owner works.
    let r = h.send(
        USER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: victim,
        }),
    );
    assert_eq!(r.reply, Response::Unbound);
    assert_eq!(h.cloud.shadow_state(&dev_id()), ShadowState::Online);
}

#[test]
fn telemetry_flows_to_the_bound_user() {
    let mut h = Harness::new(vendors::d_link());
    let (_victim, auth, _) = setup_bound(&mut h);
    let mut hb = StatusPayload::heartbeat(auth, dev_id());
    hb.telemetry = vec![TelemetryFrame::PowerMilliwatts(1500)];
    let r = h.send(DEVICE_NODE, Message::Status(hb));
    assert!(r.reply.is_ok());
    let (node, push) = &r.pushes[0];
    assert_eq!(*node, USER_NODE);
    match push {
        Response::TelemetryPush { telemetry, .. } => {
            assert_eq!(telemetry, &vec![TelemetryFrame::PowerMilliwatts(1500)]);
        }
        other => panic!("expected telemetry push, got {other}"),
    }
}

#[test]
fn schedule_set_query_and_device_push() {
    let mut h = Harness::new(vendors::d_link());
    let (victim, _auth, _) = setup_bound(&mut h);
    let entry = ScheduleEntry {
        at_tick: 9999,
        turn_on: true,
    };
    let r = h.send(
        USER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: victim,
            session: None,
            action: ControlAction::SetSchedule(entry.clone()),
        },
    );
    assert!(r.reply.is_ok());
    // The schedule is pushed to the device so it can run offline.
    assert!(r
        .pushes
        .iter()
        .any(|(n, p)| *n == DEVICE_NODE && matches!(p, Response::ControlPush { .. })));
    // And can be queried back.
    let r = h.send(
        USER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: victim,
            session: None,
            action: ControlAction::QuerySchedule,
        },
    );
    match r.reply {
        Response::ControlOk { schedule, .. } => assert_eq!(schedule, vec![entry]),
        other => panic!("{other}"),
    }
}

#[test]
fn query_shadow_reports_state_bits() {
    let mut h = Harness::new(vendors::d_link());
    let r = h.send(USER_NODE, Message::QueryShadow { dev_id: dev_id() });
    assert_eq!(
        r.reply,
        Response::ShadowState {
            online: false,
            bound: false
        }
    );
    setup_bound(&mut h);
    let r = h.send(USER_NODE, Message::QueryShadow { dev_id: dev_id() });
    assert_eq!(
        r.reply,
        Response::ShadowState {
            online: true,
            bound: true
        }
    );
}

// ---------------------------------------------------------------------------
// Authentication branches.
// ---------------------------------------------------------------------------

#[test]
fn unknown_device_is_rejected() {
    let mut h = Harness::new(vendors::d_link());
    let ghost = DevId::Uuid(0x6060);
    let r = h.send(
        DEVICE_NODE,
        Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(ghost.clone()),
            ghost,
        )),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::UnknownDevice
        }
    );
}

#[test]
fn dev_token_design_rejects_dev_id_auth() {
    let mut h = Harness::new(vendors::belkin());
    let r = h.send(
        DEVICE_NODE,
        Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        )),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceAuthFailed
        }
    );
    // And rejects made-up tokens.
    let r = h.send(
        DEVICE_NODE,
        Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevToken(DevToken::from_entropy(123)),
            dev_id(),
        )),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceAuthFailed
        }
    );
}

#[test]
fn opaque_design_rejects_everything_but_the_factory_secret() {
    let mut h = Harness::new(vendors::broadlink());
    // The attacker knows the DevId but not the factory secret.
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        )),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceAuthFailed
        }
    );
    // The real firmware authenticates fine.
    let r = h.device_register(StatusAuth::DevToken(DevToken::from_entropy(FACTORY_SECRET)));
    assert!(r.reply.is_ok());
}

#[test]
fn public_key_design_verifies_signatures() {
    let mut h = Harness::new(vendors::public_key_reference());
    let secret = 0x1234_5678_9abc_def0_1111_2222_3333_4444u128;
    h.cloud.manufacture(dev_id(), 0, Some((77, secret)));
    let good = rb_cloud::registry::sign(secret, &dev_id());
    let r = h.device_register(StatusAuth::PublicKey {
        key_id: 77,
        signature: good,
    });
    assert!(r.reply.is_ok());
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::PublicKey {
                key_id: 77,
                signature: good ^ 1,
            },
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceAuthFailed
        }
    );
}

#[test]
fn dev_id_design_accepts_forged_status() {
    // The core weakness: on a DevId design anyone holding the ID *is* the
    // device. (A fresh source must open its own session via Register — the
    // paper's authors did the same with a raw OpenSSL connection.)
    let mut h = Harness::new(vendors::d_link());
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    assert!(r.reply.is_ok(), "{}", r.reply);
    // Follow-up heartbeats within the forged session are accepted too.
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        )),
    );
    assert!(r.reply.is_ok(), "{}", r.reply);
}

#[test]
fn heartbeat_without_a_session_is_rejected() {
    // A heartbeat is only valid inside an established device session.
    let mut h = Harness::new(vendors::d_link());
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        )),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceAuthFailed
        }
    );
}

// ---------------------------------------------------------------------------
// Binding branches.
// ---------------------------------------------------------------------------

#[test]
fn bind_with_invalid_token_rejected() {
    let mut h = Harness::new(vendors::d_link());
    let r = h.bind_as(ATTACKER_NODE, UserToken::from_entropy(999));
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::InvalidUserToken
        }
    );
}

#[test]
fn sticky_design_rejects_second_binder() {
    let mut h = Harness::new(vendors::d_link());
    setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.bind_as(ATTACKER_NODE, attacker);
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::AlreadyBound
        }
    );
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
}

#[test]
fn sticky_design_rebind_by_same_user_is_idempotent() {
    let mut h = Harness::new(vendors::d_link());
    let (victim, _, _) = setup_bound(&mut h);
    let r = h.bind_as(USER_NODE, victim);
    assert!(r.reply.is_ok());
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
}

#[test]
fn replacing_design_displaces_and_notifies_previous_user() {
    let mut h = Harness::new(vendors::e_link());
    setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.bind_as(ATTACKER_NODE, attacker);
    assert!(r.reply.is_ok(), "replacement accepted: {}", r.reply);
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("attacker")));
    assert!(
        r.pushes
            .iter()
            .any(|(n, p)| *n == USER_NODE && *p == Response::BindingRevoked),
        "victim is notified of the revocation"
    );
}

#[test]
fn online_required_design_rejects_bind_for_offline_device() {
    let mut h = Harness::new(vendors::tp_link());
    let victim = h.login(USER_NODE, "victim", "victim-pw");
    // TP-LINK binds by device message; forge one with valid credentials
    // while the device is offline.
    let _ = victim;
    let r = h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("attacker"),
            user_pw: UserPw::new("attacker-pw"),
        }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceOffline
        }
    );
}

#[test]
fn device_initiated_bind_works_when_online() {
    let mut h = Harness::new(vendors::tp_link());
    let r = h.device_register(StatusAuth::DevId(dev_id()));
    assert!(r.reply.is_ok());
    let r = h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("victim"),
            user_pw: UserPw::new("victim-pw"),
        }),
    );
    assert!(r.reply.is_ok(), "{}", r.reply);
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
}

#[test]
fn device_initiated_bind_rejects_wrong_password() {
    let mut h = Harness::new(vendors::tp_link());
    h.device_register(StatusAuth::DevId(dev_id()));
    let r = h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("victim"),
            user_pw: UserPw::new("wrong"),
        }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::BadCredentials
        }
    );
}

#[test]
fn wrong_bind_shape_is_unsupported() {
    let mut h = Harness::new(vendors::d_link());
    let r = h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::Capability {
            bind_token: BindToken::from_entropy(1),
        }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::UnsupportedOperation
        }
    );
}

#[test]
fn hue_style_bind_requires_fresh_button_and_matching_ip() {
    let mut h = Harness::new(vendors::philips_hue());
    let victim = h.login(USER_NODE, "victim", "victim-pw");
    let r = h.device_register(StatusAuth::DevToken(DevToken::from_entropy(FACTORY_SECRET)));
    assert!(r.reply.is_ok());

    // Bind without any button press: denied.
    let r = h.bind_as(USER_NODE, victim);
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::OwnershipProofFailed
        }
    );

    // Button pressed; bind from the same public IP: accepted.
    let mut status = StatusPayload::heartbeat(
        StatusAuth::DevToken(DevToken::from_entropy(FACTORY_SECRET)),
        dev_id(),
    );
    status.button_pressed = true;
    h.send(DEVICE_NODE, Message::Status(status.clone()));
    let r = h.bind_as(USER_NODE, victim);
    assert!(r.reply.is_ok(), "{}", r.reply);

    // Attacker binds right after another button press, but from a
    // different IP: denied (the cloud compares source addresses).
    let mut h = Harness::new(vendors::philips_hue());
    let _victim = h.login(USER_NODE, "victim", "victim-pw");
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    h.device_register(StatusAuth::DevToken(DevToken::from_entropy(FACTORY_SECRET)));
    h.send(DEVICE_NODE, Message::Status(status));
    let r = h.bind_as(ATTACKER_NODE, attacker);
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::OwnershipProofFailed
        }
    );
}

#[test]
fn hue_button_window_expires() {
    let mut h = Harness::new(vendors::philips_hue());
    let victim = h.login(USER_NODE, "victim", "victim-pw");
    let mut status = StatusPayload::heartbeat(
        StatusAuth::DevToken(DevToken::from_entropy(FACTORY_SECRET)),
        dev_id(),
    );
    status.button_pressed = true;
    h.send(DEVICE_NODE, Message::Status(status));
    // Let more than the 30 s window pass.
    h.now += 31_000;
    let r = h.bind_as(USER_NODE, victim);
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::OwnershipProofFailed
        }
    );
}

#[test]
fn capability_bind_roundtrip() {
    let mut h = Harness::new(vendors::capability_reference());
    let victim = h.login(USER_NODE, "victim", "victim-pw");
    // App requests a capability.
    let bind_token = match h
        .send(USER_NODE, Message::RequestBindToken { user_token: victim })
        .reply
    {
        Response::BindTokenIssued { bind_token } => bind_token,
        other => panic!("{other}"),
    };
    // Device registers (DevToken design).
    let auth = h.status_auth(Some(victim));
    let r = h.device_register(auth);
    assert!(r.reply.is_ok());
    // Device submits the capability (received over the LAN).
    let r = h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::Capability { bind_token }),
    );
    assert!(r.reply.is_ok(), "{}", r.reply);
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
    // The user is informed via push.
    assert!(r
        .pushes
        .iter()
        .any(|(n, p)| *n == USER_NODE && matches!(p, Response::Bound { .. })));
}

#[test]
fn capability_cannot_be_replayed_or_submitted_by_non_device() {
    let mut h = Harness::new(vendors::capability_reference());
    let victim = h.login(USER_NODE, "victim", "victim-pw");
    let bind_token = match h
        .send(USER_NODE, Message::RequestBindToken { user_token: victim })
        .reply
    {
        Response::BindTokenIssued { bind_token } => bind_token,
        other => panic!("{other}"),
    };
    // Submitted from a node with no device session: rejected.
    let r = h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::Capability { bind_token }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceAuthFailed
        }
    );
    // Legit flow consumes the token; replay fails.
    let auth = h.status_auth(Some(victim));
    h.device_register(auth);
    let r = h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::Capability { bind_token }),
    );
    assert!(r.reply.is_ok());
    let r = h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::Capability { bind_token }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::InvalidBindToken
        }
    );
}

// ---------------------------------------------------------------------------
// Unbinding branches.
// ---------------------------------------------------------------------------

#[test]
fn unbind_ownership_check_blocks_foreign_tokens_when_present() {
    let mut h = Harness::new(vendors::lightstory()); // has the check
    setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.send(
        ATTACKER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
}

#[test]
fn missing_ownership_check_allows_foreign_unbind() {
    let mut h = Harness::new(vendors::belkin()); // lacks the check (A3-2)
    setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.send(
        ATTACKER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert_eq!(r.reply, Response::Unbound);
    assert_eq!(h.cloud.bound_user(&dev_id()), None);
    // The victim hears about it.
    assert!(r
        .pushes
        .iter()
        .any(|(n, p)| *n == USER_NODE && *p == Response::BindingRevoked));
}

#[test]
fn dev_id_only_unbind_accepted_only_where_supported() {
    // TP-LINK accepts it (A3-1)...
    let mut h = Harness::new(vendors::tp_link());
    h.device_register(StatusAuth::DevId(dev_id()));
    let r = h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("victim"),
            user_pw: UserPw::new("victim-pw"),
        }),
    );
    assert!(r.reply.is_ok());
    let r = h.send(
        ATTACKER_NODE,
        Message::Unbind(UnbindPayload::DevIdOnly { dev_id: dev_id() }),
    );
    assert_eq!(r.reply, Response::Unbound);

    // ...Belkin does not.
    let mut h = Harness::new(vendors::belkin());
    setup_bound(&mut h);
    let r = h.send(
        ATTACKER_NODE,
        Message::Unbind(UnbindPayload::DevIdOnly { dev_id: dev_id() }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::UnsupportedOperation
        }
    );
}

#[test]
fn konke_has_no_unbind_at_all() {
    let mut h = Harness::new(vendors::konke());
    let (victim, _, _) = setup_bound(&mut h);
    let r = h.send(
        USER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: victim,
        }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::UnsupportedOperation
        }
    );
}

#[test]
fn unbind_unbound_device_is_not_bound() {
    let mut h = Harness::new(vendors::belkin());
    let victim = h.login(USER_NODE, "victim", "victim-pw");
    let r = h.send(
        USER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: victim,
        }),
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::NotBound
        }
    );
}

// ---------------------------------------------------------------------------
// Control-path defenses.
// ---------------------------------------------------------------------------

#[test]
fn control_requires_being_the_bound_user() {
    let mut h = Harness::new(vendors::d_link());
    setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.send(
        ATTACKER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: attacker,
            session: None,
            action: ControlAction::TurnOn,
        },
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );
}

#[test]
fn control_requires_online_device() {
    let mut h = Harness::new(vendors::d_link());
    let (victim, _, _) = setup_bound(&mut h);
    // Heartbeats stop; the session expires.
    h.now += 120_000;
    let now = h.now;
    h.cloud.expire(now);
    assert_eq!(h.cloud.shadow_state(&dev_id()), ShadowState::Bound);
    let r = h.send(
        USER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: victim,
            session: None,
            action: ControlAction::TurnOn,
        },
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::DeviceOffline
        }
    );
}

#[test]
fn post_binding_session_blocks_control_after_hijack() {
    // KONKE: attacker replaces the binding, but cannot deliver the fresh
    // session token to the device, so control is refused.
    let mut h = Harness::new(vendors::konke());
    let (_victim, _auth, _session) = setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.bind_as(ATTACKER_NODE, attacker);
    let hijack_session = match r.reply {
        Response::Bound { session } => session,
        other => panic!("replacement bind failed: {other}"),
    };
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("attacker")));
    // The device still presents the *old* session in its heartbeats — the
    // attacker cannot reach it over the LAN to update it.
    let r = h.send(
        ATTACKER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: attacker,
            session: hijack_session,
            action: ControlAction::TurnOn,
        },
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::BadSession
        }
    );
}

#[test]
fn dev_token_linkage_blocks_control_after_rebind() {
    // Belkin: attacker unbinds (A3-2) and re-binds, but the device session
    // is keyed to the victim's DevToken — no relay for the attacker.
    let mut h = Harness::new(vendors::belkin());
    setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.send(
        ATTACKER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert_eq!(r.reply, Response::Unbound);
    let r = h.bind_as(ATTACKER_NODE, attacker);
    assert!(r.reply.is_ok(), "rebind by attacker: {}", r.reply);
    let r = h.send(
        ATTACKER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: attacker,
            session: None,
            action: ControlAction::TurnOn,
        },
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::BadSession
        }
    );
}

#[test]
fn dev_id_design_relays_control_to_hijacker() {
    // E-Link: replacement binding yields real control (A4-1).
    let mut h = Harness::new(vendors::e_link());
    setup_bound(&mut h);
    let attacker = h.login(ATTACKER_NODE, "attacker", "attacker-pw");
    let r = h.bind_as(ATTACKER_NODE, attacker);
    assert!(r.reply.is_ok());
    let r = h.send(
        ATTACKER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: attacker,
            session: None,
            action: ControlAction::TurnOn,
        },
    );
    assert!(r.reply.is_ok(), "hijacker controls the device: {}", r.reply);
    assert!(
        r.pushes.iter().any(|(n, _)| *n == DEVICE_NODE),
        "command reached the device"
    );
}

// ---------------------------------------------------------------------------
// Session displacement / reset semantics.
// ---------------------------------------------------------------------------

#[test]
fn forged_status_displaces_real_device_when_not_concurrent() {
    let mut h = Harness::new(vendors::e_link());
    setup_bound(&mut h);
    assert_eq!(h.cloud.device_nodes(&dev_id()), vec![DEVICE_NODE]);
    h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    assert_eq!(h.cloud.device_nodes(&dev_id()), vec![ATTACKER_NODE]);
}

#[test]
fn concurrent_design_keeps_both_sessions() {
    let mut h = Harness::new(vendors::d_link());
    setup_bound(&mut h);
    h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    let nodes = h.cloud.device_nodes(&dev_id());
    assert!(nodes.contains(&DEVICE_NODE) && nodes.contains(&ATTACKER_NODE));
}

#[test]
fn register_resets_binding_on_tp_link() {
    let mut h = Harness::new(vendors::tp_link());
    h.device_register(StatusAuth::DevId(dev_id()));
    h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("victim"),
            user_pw: UserPw::new("victim-pw"),
        }),
    );
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
    // A forged *registration* (not heartbeat) resets the binding: A3-4.
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    assert!(r.reply.is_ok());
    assert_eq!(h.cloud.bound_user(&dev_id()), None);
    assert_eq!(h.cloud.shadow_state(&dev_id()), ShadowState::Online);
}

#[test]
fn heartbeat_does_not_reset_binding_even_on_tp_link() {
    let mut h = Harness::new(vendors::tp_link());
    h.device_register(StatusAuth::DevId(dev_id()));
    h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("victim"),
            user_pw: UserPw::new("victim-pw"),
        }),
    );
    h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        )),
    );
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
}

#[test]
fn audit_log_records_decisions() {
    let mut h = Harness::new(vendors::d_link());
    setup_bound(&mut h);
    h.bind_as(ATTACKER_NODE, UserToken::from_entropy(1)); // denied
    assert!(h.cloud.audit().len() >= 3);
    assert!(h.cloud.audit().denials() >= 1);
}

// ---------------------------------------------------------------------------
// Rate limiting (anti-enumeration defense; not deployed by any studied
// vendor, which is what makes EXP-ID's sweeps viable).
// ---------------------------------------------------------------------------

#[test]
fn rate_limit_throttles_a_probing_source() {
    let mut config = rb_cloud::CloudConfig::new(vendors::d_link());
    config.rate_limit = Some(rb_cloud::RateLimit {
        window: 1_000,
        max: 5,
    });
    let mut cloud = CloudService::new(config);
    cloud.manufacture(dev_id(), 0, None);
    let mut rng = SimRng::new(1);
    // Six probes in one window: the sixth is refused.
    for i in 0..6u64 {
        let r = cloud.handle_message(
            ATTACKER_NODE,
            Tick(10 + i),
            &Message::QueryShadow { dev_id: dev_id() },
            &mut rng,
        );
        if i < 5 {
            assert!(r.reply.is_ok(), "probe {i}: {}", r.reply);
        } else {
            assert_eq!(
                r.reply,
                Response::Denied {
                    reason: DenyReason::RateLimited
                }
            );
        }
    }
    // A different source is unaffected.
    let r = cloud.handle_message(
        USER_NODE,
        Tick(20),
        &Message::QueryShadow { dev_id: dev_id() },
        &mut rng,
    );
    assert!(r.reply.is_ok());
    // And the window resets.
    let r = cloud.handle_message(
        ATTACKER_NODE,
        Tick(2_000),
        &Message::QueryShadow { dev_id: dev_id() },
        &mut rng,
    );
    assert!(r.reply.is_ok());
}
