//! Automation-rules tests, including the paper's §V-B cascade: "when an air
//! conditioning system is associated with a temperature sensor, fake data
//! of the sensor may turn on or turn off the air conditioning system."

use rb_cloud::{CloudConfig, CloudService};
use rb_core::vendors;
use rb_netsim::{NodeId, SimRng, Tick};
use rb_wire::ids::DevId;
use rb_wire::messages::{
    AutomationRule, BindPayload, ControlAction, DenyReason, DeviceAttributes, Message, Response,
    StatusAuth, StatusPayload,
};
use rb_wire::telemetry::{RuleTrigger, TelemetryFrame};
use rb_wire::tokens::{UserId, UserPw, UserToken};

const USER_NODE: NodeId = NodeId(1);
const SENSOR_NODE: NodeId = NodeId(2);
const AC_NODE: NodeId = NodeId(3);
const ATTACKER_NODE: NodeId = NodeId(4);

fn sensor_id() -> DevId {
    DevId::Digits {
        value: 111_111,
        width: 6,
    }
}

fn ac_id() -> DevId {
    DevId::Digits {
        value: 222_222,
        width: 6,
    }
}

struct H {
    cloud: CloudService,
    rng: SimRng,
    now: Tick,
}

impl H {
    /// D-LINK-style DevId cloud with a sensor and an AC bound to one user.
    fn new() -> (Self, UserToken) {
        let mut cloud = CloudService::new(CloudConfig::new(vendors::d_link()));
        cloud.provision_account(UserId::new("resident"), UserPw::new("pw"));
        cloud.manufacture(sensor_id(), 0, None);
        cloud.manufacture(ac_id(), 0, None);
        let mut h = H {
            cloud,
            rng: SimRng::new(9),
            now: Tick(0),
        };
        let token = h.login();
        for (node, dev) in [(SENSOR_NODE, sensor_id()), (AC_NODE, ac_id())] {
            let r = h.send(
                node,
                Message::Status(StatusPayload::register(
                    StatusAuth::DevId(dev.clone()),
                    dev.clone(),
                    DeviceAttributes::default(),
                )),
            );
            assert!(r.reply.is_ok());
            let r = h.send(
                USER_NODE,
                Message::Bind(BindPayload::AclApp {
                    dev_id: dev,
                    user_token: token,
                }),
            );
            assert!(r.reply.is_ok());
        }
        (h, token)
    }

    fn login(&mut self) -> UserToken {
        match self
            .send(
                USER_NODE,
                Message::Login {
                    user_id: UserId::new("resident"),
                    user_pw: UserPw::new("pw"),
                },
            )
            .reply
        {
            Response::LoginOk { user_token } => user_token,
            other => panic!("{other}"),
        }
    }

    fn send(&mut self, from: NodeId, msg: Message) -> rb_cloud::Outcome {
        self.now += 10;
        let now = self.now;
        self.cloud.handle_message(from, now, &msg, &mut self.rng)
    }

    fn ac_rule(&mut self, token: UserToken) -> rb_cloud::Outcome {
        self.send(
            USER_NODE,
            Message::SetRule {
                user_token: token,
                rule: AutomationRule {
                    trigger_dev: sensor_id(),
                    trigger: RuleTrigger::TemperatureAbove(28_000),
                    action_dev: ac_id(),
                    action: ControlAction::TurnOn,
                },
            },
        )
    }

    fn sensor_reports(&mut self, from: NodeId, milli_c: i32) -> rb_cloud::Outcome {
        let mut hb = StatusPayload::heartbeat(StatusAuth::DevId(sensor_id()), sensor_id());
        hb.telemetry = vec![TelemetryFrame::TemperatureMilliC(milli_c)];
        self.send(from, Message::Status(hb))
    }
}

#[test]
fn legitimate_cascade_fires_the_ac() {
    let (mut h, token) = H::new();
    let r = h.ac_rule(token);
    assert_eq!(r.reply, Response::RuleSet { count: 1 });
    assert_eq!(h.cloud.rule_count(&UserId::new("resident")), 1);

    // A hot reading from the real sensor turns the AC on.
    let r = h.sensor_reports(SENSOR_NODE, 31_000);
    assert!(r.reply.is_ok());
    let fired = r.pushes.iter().any(|(n, p)| {
        *n == AC_NODE
            && matches!(
                p,
                Response::ControlPush {
                    action: ControlAction::TurnOn,
                    ..
                }
            )
    });
    assert!(fired, "{:?}", r.pushes);

    // A mild reading does not.
    let r = h.sensor_reports(SENSOR_NODE, 22_000);
    let fired = r.pushes.iter().any(|(n, _)| *n == AC_NODE);
    assert!(!fired);
}

#[test]
fn injected_telemetry_triggers_the_cascade_a1_style() {
    // The §V-B attack: the attacker forges the *sensor's* telemetry and the
    // cloud dutifully turns the victim's AC on.
    let (mut h, token) = H::new();
    h.ac_rule(token);
    // Attacker opens a forged sensor session (DevId design, concurrent
    // sessions on D-LINK).
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(sensor_id()),
            sensor_id(),
            DeviceAttributes::default(),
        )),
    );
    assert!(r.reply.is_ok());
    let r = h.sensor_reports(ATTACKER_NODE, 45_000);
    assert!(r.reply.is_ok());
    let fired = r.pushes.iter().any(|(n, p)| {
        *n == AC_NODE
            && matches!(
                p,
                Response::ControlPush {
                    action: ControlAction::TurnOn,
                    ..
                }
            )
    });
    assert!(fired, "fake heat turned on the real AC: {:?}", r.pushes);
}

#[test]
fn rules_require_owning_both_endpoints() {
    let (mut h, _token) = H::new();
    h.cloud
        .provision_account(UserId::new("stranger"), UserPw::new("s"));
    let stranger = match h
        .send(
            ATTACKER_NODE,
            Message::Login {
                user_id: UserId::new("stranger"),
                user_pw: UserPw::new("s"),
            },
        )
        .reply
    {
        Response::LoginOk { user_token } => user_token,
        other => panic!("{other}"),
    };
    let r = h.send(
        ATTACKER_NODE,
        Message::SetRule {
            user_token: stranger,
            rule: AutomationRule {
                trigger_dev: sensor_id(),
                trigger: RuleTrigger::AlarmTriggered,
                action_dev: ac_id(),
                action: ControlAction::TurnOff,
            },
        },
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );
}

#[test]
fn rules_stop_firing_after_the_action_device_changes_hands() {
    let (mut h, token) = H::new();
    h.ac_rule(token);
    // The AC is unbound (resold).
    let r = h.send(
        USER_NODE,
        Message::Unbind(rb_wire::messages::UnbindPayload::DevIdUserToken {
            dev_id: ac_id(),
            user_token: token,
        }),
    );
    assert!(r.reply.is_ok());
    let r = h.sensor_reports(SENSOR_NODE, 40_000);
    assert!(
        !r.pushes.iter().any(|(n, _)| *n == AC_NODE),
        "stale rule must not fire"
    );
}

#[test]
fn rule_storage_is_capped() {
    let (mut h, token) = H::new();
    for i in 0..CloudService::MAX_RULES_PER_USER {
        let r = h.send(
            USER_NODE,
            Message::SetRule {
                user_token: token,
                rule: AutomationRule {
                    trigger_dev: sensor_id(),
                    trigger: RuleTrigger::TemperatureAbove(i as i32),
                    action_dev: ac_id(),
                    action: ControlAction::TurnOn,
                },
            },
        );
        assert!(r.reply.is_ok(), "rule {i}");
    }
    let r = h.ac_rule(token);
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::RateLimited
        }
    );
}

#[test]
fn unknown_devices_in_rules_are_rejected() {
    let (mut h, token) = H::new();
    let r = h.send(
        USER_NODE,
        Message::SetRule {
            user_token: token,
            rule: AutomationRule {
                trigger_dev: DevId::Uuid(0xBAD),
                trigger: RuleTrigger::AlarmTriggered,
                action_dev: ac_id(),
                action: ControlAction::TurnOff,
            },
        },
    );
    assert_eq!(
        r.reply,
        Response::Denied {
            reason: DenyReason::UnknownDevice
        }
    );
}
