//! Device-sharing (many-to-one binding) tests — the extension of the
//! paper's footnote 2, with its own authorization surface: only the owner
//! grants, guests control but cannot administer, and every binding change
//! evicts the guest list.

use rb_cloud::{CloudConfig, CloudService};
use rb_core::vendors;
use rb_netsim::{NodeId, SimRng, Tick};
use rb_wire::ids::{DevId, MacAddr};
use rb_wire::messages::{
    BindPayload, ControlAction, DenyReason, DeviceAttributes, Message, Response, StatusAuth,
    StatusPayload, UnbindPayload,
};
use rb_wire::tokens::{UserId, UserPw, UserToken};

const OWNER_NODE: NodeId = NodeId(1);
const DEVICE_NODE: NodeId = NodeId(2);
const GUEST_NODE: NodeId = NodeId(3);
const ATTACKER_NODE: NodeId = NodeId(4);

fn dev_id() -> DevId {
    DevId::Mac(MacAddr::new([9, 9, 9, 9, 9, 9]))
}

struct H {
    cloud: CloudService,
    rng: SimRng,
    now: Tick,
}

impl H {
    fn new() -> Self {
        // D-LINK design: DevId auth keeps the control path simple.
        let mut cloud = CloudService::new(CloudConfig::new(vendors::d_link()));
        cloud.provision_account(UserId::new("owner"), UserPw::new("o"));
        cloud.provision_account(UserId::new("guest"), UserPw::new("g"));
        cloud.provision_account(UserId::new("mallory"), UserPw::new("m"));
        cloud.manufacture(dev_id(), 0, None);
        H {
            cloud,
            rng: SimRng::new(5),
            now: Tick(0),
        }
    }

    fn send(&mut self, from: NodeId, msg: Message) -> Response {
        self.now += 10;
        let now = self.now;
        self.cloud
            .handle_message(from, now, &msg, &mut self.rng)
            .reply
    }

    fn login(&mut self, from: NodeId, user: &str, pw: &str) -> UserToken {
        match self.send(
            from,
            Message::Login {
                user_id: UserId::new(user),
                user_pw: UserPw::new(pw),
            },
        ) {
            Response::LoginOk { user_token } => user_token,
            other => panic!("{other}"),
        }
    }

    /// Owner online + bound.
    fn bound(&mut self) -> UserToken {
        let owner = self.login(OWNER_NODE, "owner", "o");
        let r = self.send(
            DEVICE_NODE,
            Message::Status(StatusPayload::register(
                StatusAuth::DevId(dev_id()),
                dev_id(),
                DeviceAttributes::default(),
            )),
        );
        assert!(r.is_ok());
        let r = self.send(
            OWNER_NODE,
            Message::Bind(BindPayload::AclApp {
                dev_id: dev_id(),
                user_token: owner,
            }),
        );
        assert!(r.is_ok());
        owner
    }

    fn share(&mut self, token: UserToken, grantee: &str) -> Response {
        self.send(
            OWNER_NODE,
            Message::Share {
                dev_id: dev_id(),
                user_token: token,
                grantee: UserId::new(grantee),
            },
        )
    }
}

#[test]
fn owner_shares_and_guest_controls() {
    let mut h = H::new();
    let owner = h.bound();
    let guest = h.login(GUEST_NODE, "guest", "g");

    // Before sharing, the guest is a stranger.
    let r = h.send(
        GUEST_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: guest,
            session: None,
            action: ControlAction::TurnOn,
        },
    );
    assert_eq!(
        r,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );

    // Owner grants; guest can now control.
    let r = h.share(owner, "guest");
    assert!(matches!(r, Response::ShareOk { guests: 1, .. }), "{r}");
    let r = h.send(
        GUEST_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: guest,
            session: None,
            action: ControlAction::TurnOn,
        },
    );
    assert!(r.is_ok(), "{r}");
    assert_eq!(h.cloud.guests(&dev_id()), vec![UserId::new("guest")]);
}

#[test]
fn only_the_owner_may_grant_or_revoke() {
    let mut h = H::new();
    let owner = h.bound();
    let mallory = h.login(ATTACKER_NODE, "mallory", "m");
    // Mallory tries to share the victim's device with herself.
    let r = h.send(
        ATTACKER_NODE,
        Message::Share {
            dev_id: dev_id(),
            user_token: mallory,
            grantee: UserId::new("mallory"),
        },
    );
    assert_eq!(
        r,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );
    // And a guest cannot re-share.
    h.share(owner, "guest");
    let guest = h.login(GUEST_NODE, "guest", "g");
    let r = h.send(
        GUEST_NODE,
        Message::Share {
            dev_id: dev_id(),
            user_token: guest,
            grantee: UserId::new("mallory"),
        },
    );
    assert_eq!(
        r,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );
    assert_eq!(h.cloud.guests(&dev_id()).len(), 1);
}

#[test]
fn unknown_grantee_is_rejected() {
    let mut h = H::new();
    let owner = h.bound();
    let r = h.share(owner, "ghost@nowhere");
    assert_eq!(
        r,
        Response::Denied {
            reason: DenyReason::UnknownUser
        }
    );
}

#[test]
fn unshare_revokes_control() {
    let mut h = H::new();
    let owner = h.bound();
    h.share(owner, "guest");
    let guest = h.login(GUEST_NODE, "guest", "g");
    let r = h.send(
        OWNER_NODE,
        Message::Unshare {
            dev_id: dev_id(),
            user_token: owner,
            grantee: UserId::new("guest"),
        },
    );
    assert!(matches!(r, Response::ShareOk { guests: 0, .. }));
    let r = h.send(
        GUEST_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: guest,
            session: None,
            action: ControlAction::TurnOff,
        },
    );
    assert_eq!(
        r,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );
}

#[test]
fn guests_cannot_unbind() {
    let mut h = H::new();
    let owner = h.bound();
    h.share(owner, "guest");
    let guest = h.login(GUEST_NODE, "guest", "g");
    let r = h.send(
        GUEST_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: guest,
        }),
    );
    assert_eq!(
        r,
        Response::Denied {
            reason: DenyReason::NotBoundUser
        }
    );
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("owner")));
}

#[test]
fn unbind_evicts_all_guests() {
    let mut h = H::new();
    let owner = h.bound();
    h.share(owner, "guest");
    h.share(owner, "mallory"); // the owner may share with anyone
    assert_eq!(h.cloud.guests(&dev_id()).len(), 2);
    let r = h.send(
        OWNER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: owner,
        }),
    );
    assert_eq!(r, Response::Unbound);
    assert!(
        h.cloud.guests(&dev_id()).is_empty(),
        "guests do not survive unbinding"
    );
}

#[test]
fn sharing_is_idempotent_and_self_grant_is_noop() {
    let mut h = H::new();
    let owner = h.bound();
    h.share(owner, "guest");
    let r = h.share(owner, "guest");
    assert!(matches!(r, Response::ShareOk { guests: 1, .. }), "{r}");
    let r = h.share(owner, "owner");
    assert!(
        matches!(r, Response::ShareOk { guests: 1, .. }),
        "owner self-grant is a no-op: {r}"
    );
}

#[test]
fn hijacker_replacement_evicts_guests_too() {
    // On a replace-semantics design, an A4-1 hijack also severs every
    // guest — the amplified blast radius of device sharing.
    let mut cloud = CloudService::new(CloudConfig::new(vendors::e_link()));
    let mut rng = SimRng::new(6);
    cloud.provision_account(UserId::new("owner"), UserPw::new("o"));
    cloud.provision_account(UserId::new("guest"), UserPw::new("g"));
    cloud.provision_account(UserId::new("mallory"), UserPw::new("m"));
    cloud.manufacture(dev_id(), 0, None);
    let mut send = |cloud: &mut CloudService, from: NodeId, msg: Message, t: u64| {
        cloud.handle_message(from, Tick(t), &msg, &mut rng).reply
    };
    let owner = match send(
        &mut cloud,
        OWNER_NODE,
        Message::Login {
            user_id: UserId::new("owner"),
            user_pw: UserPw::new("o"),
        },
        1,
    ) {
        Response::LoginOk { user_token } => user_token,
        other => panic!("{other}"),
    };
    send(
        &mut cloud,
        DEVICE_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        )),
        2,
    );
    send(
        &mut cloud,
        OWNER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: owner,
        }),
        3,
    );
    send(
        &mut cloud,
        OWNER_NODE,
        Message::Share {
            dev_id: dev_id(),
            user_token: owner,
            grantee: UserId::new("guest"),
        },
        4,
    );
    assert_eq!(cloud.guests(&dev_id()).len(), 1);
    // Mallory hijacks via replacing bind (A4-1).
    let mallory = match send(
        &mut cloud,
        ATTACKER_NODE,
        Message::Login {
            user_id: UserId::new("mallory"),
            user_pw: UserPw::new("m"),
        },
        5,
    ) {
        Response::LoginOk { user_token } => user_token,
        other => panic!("{other}"),
    };
    let r = send(
        &mut cloud,
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: mallory,
        }),
        6,
    );
    assert!(r.is_ok());
    assert_eq!(cloud.bound_user(&dev_id()), Some(UserId::new("mallory")));
    assert!(
        cloud.guests(&dev_id()).is_empty(),
        "guests evicted by the hijack"
    );
}
