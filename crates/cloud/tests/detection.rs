//! Detection tests: each attack signature raises its alert, and the
//! legitimate life cycle raises none (no false positives on the happy
//! path).

use rb_cloud::{CloudConfig, CloudService, SecurityAlert};
use rb_core::vendors;
use rb_netsim::{NodeId, SimRng, Tick};
use rb_wire::ids::DevId;
use rb_wire::messages::{
    BindPayload, DeviceAttributes, Message, Response, StatusAuth, StatusPayload, UnbindPayload,
};
use rb_wire::tokens::{UserId, UserPw, UserToken};

const USER_NODE: NodeId = NodeId(1);
const DEVICE_NODE: NodeId = NodeId(2);
const ATTACKER_NODE: NodeId = NodeId(3);

fn dev_id() -> DevId {
    DevId::Digits {
        value: 424_242,
        width: 6,
    }
}

struct H {
    cloud: CloudService,
    rng: SimRng,
    now: Tick,
}

impl H {
    fn new(design: rb_core::design::VendorDesign) -> Self {
        let mut cloud = CloudService::new(CloudConfig::new(design));
        cloud.provision_account(UserId::new("victim"), UserPw::new("v"));
        cloud.provision_account(UserId::new("attacker"), UserPw::new("a"));
        cloud.manufacture(dev_id(), 0, None);
        // Victim home shares IP 100; attacker sits at 200.
        cloud.set_public_ip(USER_NODE, 100);
        cloud.set_public_ip(DEVICE_NODE, 100);
        cloud.set_public_ip(ATTACKER_NODE, 200);
        H {
            cloud,
            rng: SimRng::new(77),
            now: Tick(0),
        }
    }

    fn send(&mut self, from: NodeId, msg: Message) -> Response {
        self.now += 10;
        let now = self.now;
        self.cloud
            .handle_message(from, now, &msg, &mut self.rng)
            .reply
    }

    fn login(&mut self, from: NodeId, user: &str, pw: &str) -> UserToken {
        match self.send(
            from,
            Message::Login {
                user_id: UserId::new(user),
                user_pw: UserPw::new(pw),
            },
        ) {
            Response::LoginOk { user_token } => user_token,
            other => panic!("{other}"),
        }
    }

    /// Legit setup on a DevId design: device registers, victim binds.
    fn setup(&mut self) -> UserToken {
        let victim = self.login(USER_NODE, "victim", "v");
        let r = self.send(
            DEVICE_NODE,
            Message::Status(StatusPayload::register(
                StatusAuth::DevId(dev_id()),
                dev_id(),
                DeviceAttributes::default(),
            )),
        );
        assert!(r.is_ok());
        let r = self.send(
            USER_NODE,
            Message::Bind(BindPayload::AclApp {
                dev_id: dev_id(),
                user_token: victim,
            }),
        );
        assert!(r.is_ok());
        victim
    }
}

#[test]
fn happy_path_raises_no_alerts() {
    let mut h = H::new(vendors::d_link());
    let victim = h.setup();
    // Heartbeats, control, owner unbind, re-bind: all clean.
    let hb = StatusPayload::heartbeat(StatusAuth::DevId(dev_id()), dev_id());
    h.send(DEVICE_NODE, Message::Status(hb));
    h.send(
        USER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: victim,
        }),
    );
    h.send(
        USER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: victim,
        }),
    );
    assert!(
        h.cloud.monitor().alerts().is_empty(),
        "{:?}",
        h.cloud.monitor().alerts()
    );
}

#[test]
fn foreign_unbind_is_flagged() {
    // An OZWI-style DevId design missing the unbind-ownership check.
    let mut design = vendors::ozwi();
    design.checks.verify_unbind_is_bound_user = false;
    let mut h = H::new(design);
    let _ = h.setup();
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    let r = h.send(
        ATTACKER_NODE,
        Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert_eq!(r, Response::Unbound);
    assert_eq!(h.cloud.monitor().count("foreign-unbind"), 1);
}

#[test]
fn bare_unbind_from_foreign_ip_is_flagged_but_device_reset_is_not() {
    let mut h = H::new(vendors::tp_link());
    let victim = h.login(USER_NODE, "victim", "v");
    h.send(
        DEVICE_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    // TP-LINK binds by device message, carrying the user's credentials.
    let _ = victim;
    h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("victim"),
            user_pw: UserPw::new("v"),
        }),
    );
    // The real device resets: bare unbind from the household IP — clean.
    let r = h.send(
        DEVICE_NODE,
        Message::Unbind(UnbindPayload::DevIdOnly { dev_id: dev_id() }),
    );
    assert_eq!(r, Response::Unbound);
    assert_eq!(h.cloud.monitor().count("bare-unbind"), 0);
    // Rebind, then the attacker does the same from the WAN.
    h.send(
        DEVICE_NODE,
        Message::Bind(BindPayload::AclDevice {
            dev_id: dev_id(),
            user_id: UserId::new("victim"),
            user_pw: UserPw::new("v"),
        }),
    );
    let r = h.send(
        ATTACKER_NODE,
        Message::Unbind(UnbindPayload::DevIdOnly { dev_id: dev_id() }),
    );
    assert_eq!(r, Response::Unbound);
    assert_eq!(h.cloud.monitor().count("bare-unbind"), 1);
}

#[test]
fn binding_replacement_and_remote_bind_are_flagged() {
    let mut h = H::new(vendors::e_link());
    let _ = h.setup();
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    let r = h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert!(r.is_ok(), "E-Link replaces bindings");
    assert_eq!(h.cloud.monitor().count("binding-replaced"), 1);
    assert_eq!(
        h.cloud.monitor().count("remote-only-bind"),
        1,
        "bind IP ≠ device IP"
    );
    match &h.cloud.monitor().alerts()[0] {
        SecurityAlert::BindingReplaced {
            victim, new_holder, ..
        } => {
            assert_eq!(victim, &UserId::new("victim"));
            assert_eq!(new_holder, &UserId::new("attacker"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn forged_status_session_move_is_flagged() {
    let mut h = H::new(vendors::d_link());
    let _ = h.setup();
    // The attacker opens a forged device session from IP 200.
    let r = h.send(
        ATTACKER_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    assert!(r.is_ok());
    assert_eq!(h.cloud.monitor().count("session-moved"), 1);
}

#[test]
fn id_sweep_triggers_enumeration_alert() {
    let mut h = H::new(vendors::ozwi());
    // The attacker walks the 6-digit space; most probes hit unknown IDs.
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    for i in 0..10u32 {
        let probe = DevId::Digits { value: i, width: 6 };
        let _ = h.send(
            ATTACKER_NODE,
            Message::Bind(BindPayload::AclApp {
                dev_id: probe,
                user_token: attacker,
            }),
        );
    }
    assert_eq!(h.cloud.monitor().count("enumeration"), 1);
    // The victim's single-device traffic never trips it.
    assert!(!h.cloud.monitor().alerts().iter().any(
        |a| matches!(a, SecurityAlert::EnumerationSuspected { source, .. } if *source == USER_NODE)
    ));
}

#[test]
fn contested_binding_flags_the_a2_victim_experience() {
    // The attacker occupies first; the victim's app retries binding and is
    // denied repeatedly — the monitor flags the dispute.
    let mut h = H::new(vendors::d_link());
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    let r = h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert!(r.is_ok(), "occupation: {r}");
    let victim = h.login(USER_NODE, "victim", "v");
    for _ in 0..3 {
        let r = h.send(
            USER_NODE,
            Message::Bind(BindPayload::AclApp {
                dev_id: dev_id(),
                user_token: victim,
            }),
        );
        assert!(!r.is_ok());
    }
    assert_eq!(h.cloud.monitor().count("contested-binding"), 1);
}

// -- Active defense ----------------------------------------------------------

#[test]
fn quarantine_revokes_a_hijacked_binding_and_blocks_rebinds() {
    let mut h = H::new(vendors::e_link());
    let _ = h.setup();
    h.cloud.set_defense(rb_cloud::DefensePolicy::hardened());
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    // The hijack still *succeeds* as a request — but the binding-replaced
    // alert it raises is reacted to before the reply leaves, revoking the
    // non-co-located binding on the spot.
    let r = h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert!(r.is_ok(), "the hijack bind itself is accepted: {r}");
    assert!(
        !h.cloud.shadow_state(&dev_id()).is_bound(),
        "quarantine revoked the hijacker's binding in the same outcome"
    );
    assert_eq!(
        h.cloud
            .telemetry()
            .counter("cloud_mitigations_total{action=\"quarantine\"}"),
        1
    );
    // While quarantined, the attacker cannot re-bind from the WAN…
    let r = h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert_eq!(
        r,
        Response::Denied {
            reason: rb_wire::messages::DenyReason::RateLimited
        }
    );
    // …but the victim, co-located with the device, re-binds immediately.
    let victim = h.login(USER_NODE, "victim", "v");
    let r = h.send(
        USER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: victim,
        }),
    );
    assert!(r.is_ok(), "co-located victim rebind during quarantine: {r}");
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("victim")));
}

#[test]
fn token_rotation_turns_a_displaced_session_into_a_detected_replay() {
    // KONKE issues post-binding session tokens and tolerates re-binds.
    let mut h = H::new(vendors::konke());
    h.cloud.set_defense(rb_cloud::DefensePolicy {
        rotate_tokens: true,
        bind_limit: None,
        quarantine_ticks: 0,
    });
    // KONKE auth is DevToken: the victim fetches one, the device registers
    // with it, the victim binds.
    let victim = h.login(USER_NODE, "victim", "v");
    let dev_token = match h.send(USER_NODE, Message::RequestDevToken { user_token: victim }) {
        Response::DevTokenIssued { dev_token } => dev_token,
        other => panic!("{other}"),
    };
    let r = h.send(
        DEVICE_NODE,
        Message::Status(StatusPayload::register(
            StatusAuth::DevToken(dev_token),
            dev_id(),
            DeviceAttributes::default(),
        )),
    );
    assert!(r.is_ok(), "{r}");
    let r = h.send(
        USER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: victim,
        }),
    );
    assert!(r.is_ok(), "{r}");
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    let stolen = match h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    ) {
        Response::Bound { session } => session.expect("KONKE issues sessions"),
        other => panic!("{other}"),
    };
    // The displacement alert triggered a rotation: the token the hijacker
    // just received is already retired.
    assert_eq!(
        h.cloud
            .telemetry()
            .counter("cloud_mitigations_total{action=\"rotate-token\"}"),
        1
    );
    let r = h.send(
        ATTACKER_NODE,
        Message::Control {
            dev_id: dev_id(),
            user_token: attacker,
            session: Some(stolen),
            action: rb_wire::messages::ControlAction::TurnOn,
        },
    );
    assert!(!r.is_ok(), "rotated-away session must not control: {r}");
    assert_eq!(
        h.cloud.monitor().count("stale-token-replay"),
        1,
        "presenting the retired token from a foreign IP is a replay"
    );
}

#[test]
fn bind_rate_limiter_prices_out_bind_floods() {
    let mut h = H::new(vendors::ozwi());
    h.cloud.set_defense(rb_cloud::DefensePolicy {
        rotate_tokens: false,
        bind_limit: Some(rb_cloud::RateLimit {
            window: 10_000,
            max: 3,
        }),
        quarantine_ticks: 0,
    });
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    let mut denied = 0;
    for i in 0..8u32 {
        let probe = DevId::Digits { value: i, width: 6 };
        let r = h.send(
            ATTACKER_NODE,
            Message::Bind(BindPayload::AclApp {
                dev_id: probe,
                user_token: attacker,
            }),
        );
        if r == (Response::Denied {
            reason: rb_wire::messages::DenyReason::RateLimited,
        }) {
            denied += 1;
        }
    }
    assert_eq!(denied, 5, "probes beyond the window max are denied");
    assert_eq!(
        h.cloud
            .telemetry()
            .counter("cloud_mitigations_total{action=\"rate-limit-bind\"}"),
        5
    );
}

#[test]
fn disabled_policy_never_intervenes() {
    // Same hijack as the quarantine test, default (disabled) policy: the
    // monitor sees everything, the service changes nothing.
    let mut h = H::new(vendors::e_link());
    let _ = h.setup();
    let attacker = h.login(ATTACKER_NODE, "attacker", "a");
    let r = h.send(
        ATTACKER_NODE,
        Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: attacker,
        }),
    );
    assert!(r.is_ok());
    assert_eq!(h.cloud.monitor().count("binding-replaced"), 1);
    assert_eq!(h.cloud.bound_user(&dev_id()), Some(UserId::new("attacker")));
    assert_eq!(
        h.cloud
            .telemetry()
            .counter("cloud_mitigations_total{action=\"quarantine\"}"),
        0
    );
}
