//! Device sessions and shadow records.

use std::collections::HashMap;

use rb_core::shadow::{Shadow, ShadowState};
use rb_netsim::{NodeId, Tick};
use rb_wire::ids::DevId;
use rb_wire::telemetry::{ScheduleEntry, TelemetryFrame};
use rb_wire::tokens::{SessionToken, UserId};

/// A live, authenticated device connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSession {
    /// Node(s) currently speaking as this device. More than one only when
    /// the vendor tolerates concurrent sessions (D-LINK).
    pub nodes: Vec<NodeId>,
    /// For `DevToken` designs: the user whose token authenticated the
    /// session.
    pub auth_user: Option<UserId>,
    /// The session token the device last presented in a status message.
    pub presented_session: Option<SessionToken>,
    /// When the last status message arrived.
    pub last_seen: Tick,
}

/// Everything the cloud stores per device.
#[derive(Debug, Clone, Default)]
pub struct ShadowRecord {
    /// The state machine instance.
    pub shadow: Shadow<UserId>,
    /// User-configured schedule (the private data A1 steals).
    pub schedule: Vec<ScheduleEntry>,
    /// Most recent telemetry (relayed to the bound user).
    pub last_telemetry: Vec<TelemetryFrame>,
    /// Session token minted at binding time (post-binding authorization).
    pub binding_session: Option<SessionToken>,
    /// When the device last reported a physical button press (Hue-style
    /// ownership proof).
    pub button_at: Option<Tick>,
    /// Public IP (NAT identity) the button press arrived from.
    pub button_ip: Option<u32>,
    /// Accounts the bound owner has shared the device with (many-to-one
    /// binding, paper footnote 2). Cleared whenever the binding changes.
    pub guests: Vec<UserId>,
    /// Public IP the current binding was created from (for the monitor's
    /// co-location heuristic).
    pub binding_ip: Option<u32>,
    /// Whether the monitor already flagged this binding as remote-only.
    pub remote_bind_flagged: bool,
}

/// The cloud's per-device state: sessions and shadow records.
///
/// A reverse index maps each live node to the device(s) it currently
/// speaks for, so resolving "which device is this connection?" — the
/// capability-bind ownership check — is O(1) instead of a scan over every
/// record the cloud has ever seen.
#[derive(Debug, Default)]
pub struct DeviceState {
    sessions: HashMap<DevId, DeviceSession>,
    records: HashMap<DevId, ShadowRecord>,
    /// node → devices whose session contains it, in authentication order
    /// (most recent last). Usually one entry; more only when a node
    /// impersonates several devices concurrently.
    node_index: HashMap<NodeId, Vec<DevId>>,
}

impl DeviceState {
    /// Empty state.
    pub fn new() -> Self {
        DeviceState::default()
    }

    fn index_add(&mut self, node: NodeId, dev_id: &DevId) {
        let devs = self.node_index.entry(node).or_default();
        if !devs.contains(dev_id) {
            devs.push(dev_id.clone());
        }
    }

    fn index_remove(&mut self, node: NodeId, dev_id: &DevId) {
        if let Some(devs) = self.node_index.get_mut(&node) {
            devs.retain(|d| d != dev_id);
            if devs.is_empty() {
                self.node_index.remove(&node);
            }
        }
    }

    /// The device a node's session speaks for (the most recently
    /// authenticated one when a node impersonates several).
    pub fn device_of_node(&self, node: NodeId) -> Option<&DevId> {
        self.node_index.get(&node).and_then(|devs| devs.last())
    }

    /// The shadow record for a device, created on first touch.
    pub fn record_mut(&mut self, dev_id: &DevId) -> &mut ShadowRecord {
        self.records.entry(dev_id.clone()).or_default()
    }

    /// Read-only access to a record.
    pub fn record(&self, dev_id: &DevId) -> Option<&ShadowRecord> {
        self.records.get(dev_id)
    }

    /// Mutable access to a record *without* creating it — for maintenance
    /// paths (defense mitigations) that must not materialize shadows for
    /// devices the cloud never heard from.
    pub fn record_mut_existing(&mut self, dev_id: &DevId) -> Option<&mut ShadowRecord> {
        self.records.get_mut(dev_id)
    }

    /// The session for a device, if any.
    pub fn session(&self, dev_id: &DevId) -> Option<&DeviceSession> {
        self.sessions.get(dev_id)
    }

    /// Mutable session access.
    pub fn session_mut(&mut self, dev_id: &DevId) -> Option<&mut DeviceSession> {
        self.sessions.get_mut(dev_id)
    }

    /// Records an authenticated status source. Returns the displaced nodes
    /// (empty when none, or when concurrency is tolerated).
    pub fn touch_session(
        &mut self,
        dev_id: &DevId,
        node: NodeId,
        auth_user: Option<UserId>,
        presented_session: Option<SessionToken>,
        now: Tick,
        concurrent_allowed: bool,
    ) -> Vec<NodeId> {
        let displaced = match self.sessions.get_mut(dev_id) {
            Some(session) => {
                session.last_seen = now;
                if let Some(s) = presented_session {
                    session.presented_session = Some(s);
                }
                if session.nodes.contains(&node) {
                    if auth_user.is_some() {
                        session.auth_user = auth_user;
                    }
                    return Vec::new();
                }
                if concurrent_allowed {
                    session.nodes.push(node);
                    Vec::new()
                } else {
                    let displaced = std::mem::replace(&mut session.nodes, vec![node]);
                    if auth_user.is_some() {
                        session.auth_user = auth_user;
                    }
                    displaced
                }
            }
            None => {
                self.sessions.insert(
                    dev_id.clone(),
                    DeviceSession {
                        nodes: vec![node],
                        auth_user,
                        presented_session,
                        last_seen: now,
                    },
                );
                Vec::new()
            }
        };
        self.index_add(node, dev_id);
        for old in &displaced {
            self.index_remove(*old, dev_id);
        }
        displaced
    }

    /// Expires sessions whose last status is older than `timeout`,
    /// transitioning their shadows offline. Returns the affected device
    /// IDs.
    pub fn expire_sessions(&mut self, now: Tick, timeout: u64) -> Vec<DevId> {
        let mut expired = Vec::new();
        let mut dropped_nodes = Vec::new();
        self.sessions.retain(|dev_id, session| {
            if now - session.last_seen > timeout {
                expired.push(dev_id.clone());
                for node in &session.nodes {
                    dropped_nodes.push((*node, dev_id.clone()));
                }
                false
            } else {
                true
            }
        });
        for (node, dev_id) in dropped_nodes {
            self.index_remove(node, &dev_id);
        }
        for dev_id in &expired {
            if let Some(rec) = self.records.get_mut(dev_id) {
                rec.shadow.force_offline();
            }
        }
        expired
    }

    /// Expires half-open shadows: records still marked `Online`/`Control`
    /// although the device has no live session (displaced or lost without
    /// an observed close), or whose last accepted status is older than
    /// `timeout`. Without this sweep a partition can strand a shadow in
    /// `Control` forever. Returns the affected device IDs.
    pub fn expire_half_open(&mut self, now: Tick, timeout: u64) -> Vec<DevId> {
        let mut expired = Vec::new();
        for (dev_id, rec) in self.records.iter_mut() {
            if !rec.shadow.state().is_online() {
                continue;
            }
            if !self.sessions.contains_key(dev_id) {
                rec.shadow.force_offline();
                expired.push(dev_id.clone());
            } else if rec.shadow.expire(now.as_u64(), timeout) {
                expired.push(dev_id.clone());
            }
        }
        expired
    }

    /// Drops a specific node from a device's session (e.g. observed
    /// disconnect). Removes the session entirely when no node remains,
    /// forcing the shadow offline.
    pub fn drop_node(&mut self, dev_id: &DevId, node: NodeId) {
        let mut emptied = false;
        let mut had = false;
        if let Some(session) = self.sessions.get_mut(dev_id) {
            had = session.nodes.contains(&node);
            session.nodes.retain(|n| *n != node);
            emptied = session.nodes.is_empty();
        }
        if had {
            self.index_remove(node, dev_id);
        }
        if emptied {
            self.sessions.remove(dev_id);
            if let Some(rec) = self.records.get_mut(dev_id) {
                rec.shadow.force_offline();
            }
        }
    }

    /// Current shadow state of a device (initial if never seen).
    pub fn shadow_state(&self, dev_id: &DevId) -> ShadowState {
        self.records
            .get(dev_id)
            .map(|r| r.shadow.state())
            .unwrap_or(ShadowState::Initial)
    }

    /// Iterates over all records.
    pub fn iter_records(&self) -> impl Iterator<Item = (&DevId, &ShadowRecord)> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_wire::ids::MacAddr;

    fn id() -> DevId {
        DevId::Mac(MacAddr::new([1, 1, 1, 1, 1, 1]))
    }

    #[test]
    fn touch_creates_then_refreshes() {
        let mut st = DeviceState::new();
        let displaced = st.touch_session(&id(), NodeId(1), None, None, Tick(5), false);
        assert!(displaced.is_empty());
        let displaced = st.touch_session(&id(), NodeId(1), None, None, Tick(9), false);
        assert!(displaced.is_empty());
        assert_eq!(st.session(&id()).unwrap().last_seen, Tick(9));
    }

    #[test]
    fn new_source_displaces_old_when_not_concurrent() {
        let mut st = DeviceState::new();
        st.touch_session(&id(), NodeId(1), None, None, Tick(1), false);
        let displaced = st.touch_session(&id(), NodeId(2), None, None, Tick(2), false);
        assert_eq!(displaced, vec![NodeId(1)]);
        assert_eq!(st.session(&id()).unwrap().nodes, vec![NodeId(2)]);
    }

    #[test]
    fn concurrent_mode_keeps_both_sources() {
        let mut st = DeviceState::new();
        st.touch_session(&id(), NodeId(1), None, None, Tick(1), true);
        let displaced = st.touch_session(&id(), NodeId(2), None, None, Tick(2), true);
        assert!(displaced.is_empty());
        assert_eq!(st.session(&id()).unwrap().nodes, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn expiry_forces_shadow_offline() {
        let mut st = DeviceState::new();
        st.record_mut(&id()).shadow.on_status(10);
        st.touch_session(&id(), NodeId(1), None, None, Tick(10), false);
        assert_eq!(st.shadow_state(&id()), ShadowState::Online);
        let expired = st.expire_sessions(Tick(100), 50);
        assert_eq!(expired, vec![id()]);
        assert_eq!(st.shadow_state(&id()), ShadowState::Initial);
        assert!(st.session(&id()).is_none());
    }

    #[test]
    fn half_open_shadow_without_session_is_forced_offline() {
        let mut st = DeviceState::new();
        // A shadow driven Online+Bound (Control) with no session — the
        // half-open state a partition can leave behind.
        st.record_mut(&id()).shadow.on_status(10);
        st.record_mut(&id()).shadow.on_bind(UserId::new("u"));
        assert_eq!(st.shadow_state(&id()), ShadowState::Control);
        let expired = st.expire_half_open(Tick(11), 1_000);
        assert_eq!(expired, vec![id()]);
        assert_eq!(
            st.shadow_state(&id()),
            ShadowState::Bound,
            "offline but still bound"
        );
    }

    #[test]
    fn half_open_sweep_spares_live_sessions() {
        let mut st = DeviceState::new();
        st.record_mut(&id()).shadow.on_status(10);
        st.touch_session(&id(), NodeId(1), None, None, Tick(10), false);
        assert!(st.expire_half_open(Tick(20), 1_000).is_empty());
        assert_eq!(st.shadow_state(&id()), ShadowState::Online);
        // …but a stale last-status is expired even with a session entry.
        assert_eq!(st.expire_half_open(Tick(5_000), 1_000), vec![id()]);
        assert_eq!(st.shadow_state(&id()), ShadowState::Initial);
    }

    #[test]
    fn drop_node_removes_session_when_last() {
        let mut st = DeviceState::new();
        st.record_mut(&id()).shadow.on_status(1);
        st.touch_session(&id(), NodeId(1), None, None, Tick(1), true);
        st.touch_session(&id(), NodeId(2), None, None, Tick(1), true);
        st.drop_node(&id(), NodeId(1));
        assert_eq!(st.session(&id()).unwrap().nodes, vec![NodeId(2)]);
        st.drop_node(&id(), NodeId(2));
        assert!(st.session(&id()).is_none());
        assert_eq!(st.shadow_state(&id()), ShadowState::Initial);
    }

    #[test]
    fn unknown_device_is_initial() {
        let st = DeviceState::new();
        assert_eq!(st.shadow_state(&id()), ShadowState::Initial);
        assert!(st.record(&id()).is_none());
    }

    #[test]
    fn presented_session_is_remembered() {
        let mut st = DeviceState::new();
        let s = SessionToken::from_entropy(9);
        st.touch_session(&id(), NodeId(1), None, Some(s), Tick(1), false);
        assert_eq!(st.session(&id()).unwrap().presented_session, Some(s));
        // A later status without a session keeps the old one.
        st.touch_session(&id(), NodeId(1), None, None, Tick(2), false);
        assert_eq!(st.session(&id()).unwrap().presented_session, Some(s));
    }
}
