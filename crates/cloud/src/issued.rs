//! Issued `DevToken`s and `BindToken` capabilities.

use rb_netsim::SimRng;
use rb_wire::messages::DenyReason;
use rb_wire::tokens::{BindToken, DevToken, UserId};

use crate::sharded::ShardedMap;

/// Tracks which user requested each issued `DevToken` — the linkage that
/// keys a device's cloud session to its legitimate owner and defeats
/// hijack-then-control on `DevToken` designs.
///
/// Issued tokens are stored in a [`ShardedMap`] keyed by token prefix: a
/// long-lived cloud accumulates one token per provisioning, so the ledger
/// grows with the population and benefits from sharded rehashing just like
/// the device registry.
#[derive(Debug, Default)]
pub struct DevTokenLedger {
    issued: ShardedMap<DevToken, UserId>,
}

impl DevTokenLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        DevTokenLedger::default()
    }

    /// Mints a token for `issuer`.
    pub fn issue(&mut self, issuer: UserId, rng: &mut SimRng) -> DevToken {
        let token = DevToken::from_entropy(rng.entropy128());
        self.issued.insert(token, issuer);
        token
    }

    /// Resolves a presented token to its issuing user.
    ///
    /// # Errors
    ///
    /// [`DenyReason::DeviceAuthFailed`] for tokens never issued.
    pub fn verify(&self, token: &DevToken) -> Result<&UserId, DenyReason> {
        self.issued.get(token).ok_or(DenyReason::DeviceAuthFailed)
    }

    /// Number of live tokens.
    pub fn len(&self) -> usize {
        self.issued.len()
    }

    /// Whether no tokens have been issued.
    pub fn is_empty(&self) -> bool {
        self.issued.is_empty()
    }
}

/// Tracks `BindToken` capabilities: issued to a user, consumed exactly once
/// when the device submits them back. Sharded by token prefix like
/// [`DevTokenLedger`].
#[derive(Debug, Default)]
pub struct BindTokenLedger {
    issued: ShardedMap<BindToken, (UserId, bool)>,
}

impl BindTokenLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        BindTokenLedger::default()
    }

    /// Mints a capability for `issuer`.
    pub fn issue(&mut self, issuer: UserId, rng: &mut SimRng) -> BindToken {
        let token = BindToken::from_entropy(rng.entropy128());
        self.issued.insert(token, (issuer, false));
        token
    }

    /// Consumes a capability, returning the user it authorizes.
    ///
    /// # Errors
    ///
    /// [`DenyReason::InvalidBindToken`] for unknown or already-consumed
    /// tokens (single use prevents replay).
    pub fn consume(&mut self, token: &BindToken) -> Result<UserId, DenyReason> {
        match self.issued.get_mut(token) {
            Some((user, consumed @ false)) => {
                *consumed = true;
                Ok(user.clone())
            }
            _ => Err(DenyReason::InvalidBindToken),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dev_tokens_resolve_to_issuer() {
        let mut ledger = DevTokenLedger::new();
        let mut rng = SimRng::new(1);
        assert!(ledger.is_empty());
        let t = ledger.issue(UserId::new("alice"), &mut rng);
        assert_eq!(ledger.verify(&t).unwrap(), &UserId::new("alice"));
        assert_eq!(ledger.len(), 1);
        assert!(ledger.verify(&DevToken::from_entropy(99)).is_err());
    }

    #[test]
    fn bind_tokens_are_single_use() {
        let mut ledger = BindTokenLedger::new();
        let mut rng = SimRng::new(1);
        let t = ledger.issue(UserId::new("alice"), &mut rng);
        assert_eq!(ledger.consume(&t).unwrap(), UserId::new("alice"));
        assert_eq!(
            ledger.consume(&t).unwrap_err(),
            DenyReason::InvalidBindToken
        );
        assert_eq!(
            ledger.consume(&BindToken::from_entropy(5)).unwrap_err(),
            DenyReason::InvalidBindToken
        );
    }

    #[test]
    fn tokens_are_unpredictable_across_issues() {
        let mut ledger = DevTokenLedger::new();
        let mut rng = SimRng::new(1);
        let a = ledger.issue(UserId::new("u"), &mut rng);
        let b = ledger.issue(UserId::new("u"), &mut rng);
        assert_ne!(a, b);
    }
}
