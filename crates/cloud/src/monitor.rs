//! Streaming runtime security monitoring and active defense.
//!
//! The paper's attacks succeed *silently*: nothing in the studied clouds
//! notices a foreign unbind, a replaced binding, or an ID-space sweep. This
//! module is the defensive counterpart — an **online** monitor inside the
//! cloud, fed by the service handlers on every request and shadow
//! transition as the world runs (no post-hoc trace scans). It keeps
//! per-source / per-device sliding-window state, raises typed
//! [`SecurityAlert`]s onto a tick-stamped alert log, measures detection
//! latency in simulation ticks, and publishes every alert onto the
//! [`rb_telemetry`] streaming bus for outside subscribers (`rbsim
//! monitor`, the defense bench).
//!
//! Detection alone is the passive half. The active half is a per-vendor
//! [`DefensePolicy`]: the service drains newly raised alerts after every
//! request and responds with binding-token rotation, bind rate-limiting,
//! or quarantine of suspect devices — each response leaving a FAULT-style
//! `defense …` mark in the causal trace so `rb-forensics` can classify
//! mitigated outcomes. With the default (disabled) policy the monitor is
//! purely observational and the service behaves byte-identically to a
//! world without it.
//!
//! Everything in here is deterministic: state is a pure function of the
//! observation sequence, and the rendered alert stream / state summary are
//! byte-stable across runs and thread counts.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

use crate::service::RateLimit;
use rb_netsim::{NodeId, Telemetry, Tick};
use rb_wire::ids::DevId;
use rb_wire::tokens::{SessionToken, UserId};

/// A security-relevant anomaly observed by the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecurityAlert {
    /// An accepted `Unbind:(DevId,UserToken)` whose requester was not the
    /// bound user (the A3-2 signature).
    ForeignUnbind {
        /// The affected device.
        dev_id: DevId,
        /// The user whose binding was revoked.
        victim: UserId,
        /// The requesting user.
        requester: UserId,
    },
    /// An accepted bare `Unbind:DevId` (the A3-1 signature — inherently
    /// unattributable).
    BareUnbind {
        /// The affected device.
        dev_id: DevId,
        /// Public IP the request came from.
        from_ip: u32,
    },
    /// An accepted bind displaced an existing binding of a different user
    /// (the A3-3/A4-1 signature).
    BindingReplaced {
        /// The affected device.
        dev_id: DevId,
        /// The displaced user.
        victim: UserId,
        /// The new holder.
        new_holder: UserId,
    },
    /// A device session moved to a different public IP (the A1/A3-4/A4
    /// status-forgery signature; also fires on legitimate household moves,
    /// which is why it is an alert and not a block).
    SessionMoved {
        /// The affected device.
        dev_id: DevId,
        /// Previous public IP.
        old_ip: u32,
        /// New public IP.
        new_ip: u32,
    },
    /// One source touched many distinct device IDs (the enumeration /
    /// scalable-DoS signature of §V-C), either in total or as a burst
    /// inside the sliding window.
    EnumerationSuspected {
        /// The probing source.
        source: NodeId,
        /// Distinct device IDs touched.
        distinct_ids: usize,
    },
    /// Someone keeps being refused a binding another account holds — the
    /// victim-experience signature of a pre-emptive occupation (A2) on
    /// designs whose device never comes online while the DoS holds.
    ContestedBinding {
        /// The disputed device.
        dev_id: DevId,
        /// The current holder.
        holder: UserId,
        /// The repeatedly refused challenger.
        challenger: UserId,
        /// Denials observed.
        denials: u32,
    },
    /// A binding was created for a device the requester's source IP has
    /// never been co-located with (the pre-emptive A2 signature: the real
    /// owner's app binds from the same NAT as the device sooner or later;
    /// the attacker never does).
    RemoteOnlyBind {
        /// The affected device.
        dev_id: DevId,
        /// The binder.
        holder: UserId,
        /// Public IP of the bind request.
        from_ip: u32,
    },
    /// A status-family request from an IP never co-located with the device
    /// dropped its binding — a shadow transition the legitimate household
    /// cannot have caused (the register-reset A3-4 signature seen online).
    ImpossibleTransition {
        /// The affected device.
        dev_id: DevId,
        /// Public IP the resetting request came from.
        from_ip: u32,
        /// The device's last co-located public IP.
        known_ip: u32,
    },
    /// A retired binding-session token was presented again from an IP that
    /// is not the device's own — replay of a stale credential after an
    /// unbind, reset, or defensive rotation.
    StaleTokenReplay {
        /// The affected device.
        dev_id: DevId,
        /// Public IP the replay came from.
        from_ip: u32,
    },
}

impl SecurityAlert {
    /// Short classifier for tables.
    pub fn kind(&self) -> &'static str {
        match self {
            SecurityAlert::ForeignUnbind { .. } => "foreign-unbind",
            SecurityAlert::BareUnbind { .. } => "bare-unbind",
            SecurityAlert::BindingReplaced { .. } => "binding-replaced",
            SecurityAlert::SessionMoved { .. } => "session-moved",
            SecurityAlert::EnumerationSuspected { .. } => "enumeration",
            SecurityAlert::ContestedBinding { .. } => "contested-binding",
            SecurityAlert::RemoteOnlyBind { .. } => "remote-only-bind",
            SecurityAlert::ImpossibleTransition { .. } => "impossible-transition",
            SecurityAlert::StaleTokenReplay { .. } => "stale-token-replay",
        }
    }

    /// One deterministic line describing the alert: `kind key=value …`.
    /// This is the byte-stable body published onto the streaming bus and
    /// rendered into the alert stream.
    pub fn describe(&self) -> String {
        match self {
            SecurityAlert::ForeignUnbind {
                dev_id,
                victim,
                requester,
            } => format!("foreign-unbind dev={dev_id} victim={victim} requester={requester}"),
            SecurityAlert::BareUnbind { dev_id, from_ip } => {
                format!("bare-unbind dev={dev_id} from_ip={from_ip}")
            }
            SecurityAlert::BindingReplaced {
                dev_id,
                victim,
                new_holder,
            } => format!("binding-replaced dev={dev_id} victim={victim} new_holder={new_holder}"),
            SecurityAlert::SessionMoved {
                dev_id,
                old_ip,
                new_ip,
            } => format!("session-moved dev={dev_id} old_ip={old_ip} new_ip={new_ip}"),
            SecurityAlert::EnumerationSuspected {
                source,
                distinct_ids,
            } => format!("enumeration source={source} distinct_ids={distinct_ids}"),
            SecurityAlert::ContestedBinding {
                dev_id,
                holder,
                challenger,
                denials,
            } => format!(
                "contested-binding dev={dev_id} holder={holder} challenger={challenger} denials={denials}"
            ),
            SecurityAlert::RemoteOnlyBind {
                dev_id,
                holder,
                from_ip,
            } => format!("remote-only-bind dev={dev_id} holder={holder} from_ip={from_ip}"),
            SecurityAlert::ImpossibleTransition {
                dev_id,
                from_ip,
                known_ip,
            } => format!("impossible-transition dev={dev_id} from_ip={from_ip} known_ip={known_ip}"),
            SecurityAlert::StaleTokenReplay { dev_id, from_ip } => {
                format!("stale-token-replay dev={dev_id} from_ip={from_ip}")
            }
        }
    }

    /// The device the alert concerns, when it concerns exactly one.
    pub fn dev_id(&self) -> Option<&DevId> {
        match self {
            SecurityAlert::ForeignUnbind { dev_id, .. }
            | SecurityAlert::BareUnbind { dev_id, .. }
            | SecurityAlert::BindingReplaced { dev_id, .. }
            | SecurityAlert::SessionMoved { dev_id, .. }
            | SecurityAlert::ContestedBinding { dev_id, .. }
            | SecurityAlert::RemoteOnlyBind { dev_id, .. }
            | SecurityAlert::ImpossibleTransition { dev_id, .. }
            | SecurityAlert::StaleTokenReplay { dev_id, .. } => Some(dev_id),
            SecurityAlert::EnumerationSuspected { .. } => None,
        }
    }
}

/// Per-vendor active-response knobs. The default policy is fully disabled:
/// the monitor observes and alerts but the service never intervenes, so
/// Table III outcomes and every pinned golden are unchanged unless a world
/// opts in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefensePolicy {
    /// Rotate the binding-session token when a takeover-shaped alert
    /// (binding-replaced, session-moved, stale-token-replay) names a bound
    /// device, invalidating any stolen session.
    pub rotate_tokens: bool,
    /// Sliding-window rate limit applied to `Bind` requests per source
    /// node (on top of any vendor-wide [`RateLimit`]); throttles bind
    /// races and re-bind storms.
    pub bind_limit: Option<RateLimit>,
    /// Quarantine window in ticks. When an occupation-shaped alert
    /// (contested-binding, remote-only-bind, impossible-transition,
    /// bare-unbind, foreign-unbind, binding-replaced) names a device, a
    /// remotely held binding is revoked and non-co-located binds are
    /// denied until the window expires. `0` disables quarantine.
    pub quarantine_ticks: u64,
}

impl DefensePolicy {
    /// The fully disabled policy (same as `Default`).
    pub fn disabled() -> Self {
        DefensePolicy::default()
    }

    /// Every response enabled with the reference knobs used by the defense
    /// experiments: rotation on, 6 binds per 10 000-tick window per
    /// source, 30 000-tick quarantine.
    pub fn hardened() -> Self {
        DefensePolicy {
            rotate_tokens: true,
            bind_limit: Some(RateLimit {
                window: 10_000,
                max: 6,
            }),
            quarantine_ticks: 30_000,
        }
    }

    /// Whether any response is switched on.
    pub fn is_enabled(&self) -> bool {
        self.rotate_tokens || self.bind_limit.is_some() || self.quarantine_ticks > 0
    }
}

/// The streaming monitor: fed observations by the service handlers as the
/// world runs, keeps bounded per-source sliding-window statistics, and
/// accumulates a tick-stamped alert log.
#[derive(Debug)]
pub struct Monitor {
    /// Actionable alert queue (drained by [`Monitor::take_alerts`]).
    alerts: Vec<SecurityAlert>,
    /// The cumulative tick-stamped alert log, in raise order. Never
    /// drained; this is the byte-stable alert stream.
    log: Vec<(Tick, SecurityAlert)>,
    /// Position in `log` up to which defenses have already reacted.
    defense_cursor: usize,
    /// Distinct device IDs touched per source.
    touched: HashMap<NodeId, HashSet<DevId>>,
    /// Ticks at which each source first touched a *new* device ID, in
    /// observation order (the enumeration sliding window).
    first_touch: HashMap<NodeId, Vec<u64>>,
    /// Sources already flagged for enumeration (flag once).
    flagged: HashSet<NodeId>,
    /// Device public IPs observed from device sessions.
    device_ips: HashMap<DevId, u32>,
    /// AlreadyBound denials per (device, challenger).
    contested: HashMap<(DevId, UserId), u32>,
    /// Tick of the first denial per contested pair (latency evidence).
    contested_first: HashMap<(DevId, UserId), Tick>,
    /// Contested pairs already flagged.
    contested_flagged: HashSet<(DevId, UserId)>,
    /// Retired binding-session tokens and their retirement tick.
    retired: HashMap<(DevId, SessionToken), Tick>,
    /// Replayed retired tokens already flagged (flag once per token).
    replay_flagged: HashSet<(DevId, SessionToken)>,
    /// Quarantined devices and the tick their quarantine expires.
    quarantined: HashMap<DevId, Tick>,
    /// Threshold of distinct IDs per source before flagging.
    pub enumeration_threshold: usize,
    /// Distinct *new* IDs inside [`Monitor::enumeration_window`] before
    /// flagging (the burst detector; same flag-once as the total).
    pub enumeration_rate_threshold: usize,
    /// Sliding-window length in ticks for the enumeration burst detector.
    pub enumeration_window: u64,
    /// AlreadyBound denials per (device, challenger) before flagging.
    pub contested_threshold: u32,
    /// Metrics sink: every raised alert also bumps
    /// `cloud_alerts_total{kind="…"}`, feeds the
    /// `monitor_detection_latency_ticks{kind="…"}` histogram, records the
    /// `cloud_alerts` rate series, and publishes onto the streaming bus.
    telemetry: Telemetry,
}

impl Monitor {
    /// A monitor with the default thresholds (8 distinct IDs in total or
    /// per 10 000-tick window, 3 denials).
    pub fn new() -> Self {
        Monitor {
            alerts: Vec::new(),
            log: Vec::new(),
            defense_cursor: 0,
            touched: HashMap::new(),
            first_touch: HashMap::new(),
            flagged: HashSet::new(),
            device_ips: HashMap::new(),
            contested: HashMap::new(),
            contested_first: HashMap::new(),
            contested_flagged: HashSet::new(),
            retired: HashMap::new(),
            replay_flagged: HashSet::new(),
            quarantined: HashMap::new(),
            enumeration_threshold: 8,
            enumeration_rate_threshold: 8,
            enumeration_window: 10_000,
            contested_threshold: 3,
            telemetry: Telemetry::new(),
        }
    }

    /// Points the monitor at a shared telemetry registry (normally the
    /// cloud service forwards its own handle here).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// All alerts raised so far and not yet taken.
    pub fn alerts(&self) -> &[SecurityAlert] {
        &self.alerts
    }

    /// The cumulative tick-stamped alert log (never drained).
    pub fn alert_log(&self) -> &[(Tick, SecurityAlert)] {
        &self.log
    }

    /// Alerts of one kind over the whole run (counted on the log, so
    /// [`Monitor::take_alerts`] does not reset it).
    pub fn count(&self, kind: &str) -> usize {
        self.log.iter().filter(|(_, a)| a.kind() == kind).count()
    }

    /// Drains the actionable alert queue.
    pub fn take_alerts(&mut self) -> Vec<SecurityAlert> {
        std::mem::take(&mut self.alerts)
    }

    /// The byte-stable rendering of the alert stream: one
    /// `t=<tick> <kind> <detail>` line per alert, in raise order. The
    /// thread-count determinism gates diff this exact string.
    pub fn render_alert_stream(&self) -> String {
        let mut out = String::new();
        for (at, alert) in &self.log {
            let _ = writeln!(out, "t={} {}", at.as_u64(), alert.describe());
        }
        out
    }

    /// A deterministic summary of the monitor's internal state: alert
    /// totals per kind plus the sizes of every tracking table, rendered in
    /// sorted order. Byte-identical across runs and thread counts.
    pub fn render_state(&self) -> String {
        let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (_, alert) in &self.log {
            *kinds.entry(alert.kind()).or_default() += 1;
        }
        let mut out = String::from("monitor-state\n");
        for (kind, n) in kinds {
            let _ = writeln!(out, "  alerts {kind}={n}");
        }
        let _ = writeln!(out, "  sources_tracked={}", self.touched.len());
        let _ = writeln!(out, "  sources_flagged={}", self.flagged.len());
        let _ = writeln!(out, "  device_ips={}", self.device_ips.len());
        let _ = writeln!(out, "  contested_pairs={}", self.contested.len());
        let _ = writeln!(out, "  retired_tokens={}", self.retired.len());
        let mut quarantined: Vec<String> = self
            .quarantined
            .iter()
            .map(|(dev, until)| format!("{dev}:{}", until.as_u64()))
            .collect();
        quarantined.sort_unstable();
        let _ = writeln!(out, "  quarantined=[{}]", quarantined.join(", "));
        out
    }

    /// Raises `alert` at `now` with detection evidence dating back to
    /// `evidence_at`: bumps the per-kind counter, feeds the detection
    /// latency histogram, records the `cloud_alerts` rate series, and
    /// publishes the alert onto the streaming bus.
    pub(crate) fn raise_with_evidence(
        &mut self,
        now: Tick,
        evidence_at: Tick,
        alert: SecurityAlert,
    ) {
        let kind = alert.kind();
        if self.telemetry.is_enabled() {
            self.telemetry
                .incr(&format!("cloud_alerts_total{{kind=\"{kind}\"}}"));
            self.telemetry.observe(
                &format!("monitor_detection_latency_ticks{{kind=\"{kind}\"}}"),
                now.as_u64().saturating_sub(evidence_at.as_u64()),
            );
            self.telemetry.rate_event("cloud_alerts", now.as_u64());
            self.telemetry
                .publish(now.as_u64(), "alert", &alert.describe());
        }
        self.log.push((now, alert.clone()));
        self.alerts.push(alert);
    }

    /// Raises an alert whose evidence is the raising observation itself
    /// (zero detection latency).
    pub(crate) fn raise(&mut self, now: Tick, alert: SecurityAlert) {
        self.raise_with_evidence(now, now, alert);
    }

    /// Records that `source` addressed `dev_id`; raises the enumeration
    /// alert when the per-source distinct-ID count crosses the absolute
    /// threshold *or* the count of new IDs inside the sliding window
    /// crosses the rate threshold.
    pub(crate) fn observe_target(&mut self, source: NodeId, dev_id: &DevId, now: Tick) {
        let set = self.touched.entry(source).or_default();
        if !set.insert(dev_id.clone()) {
            return;
        }
        let ticks = self.first_touch.entry(source).or_default();
        ticks.push(now.as_u64());
        let window_start = now.as_u64().saturating_sub(self.enumeration_window);
        let in_window = ticks.partition_point(|&t| t <= window_start);
        let windowed = ticks.len() - in_window;
        let total = self.touched.get(&source).map_or(0, HashSet::len);
        let hit_total = total >= self.enumeration_threshold;
        let hit_window = windowed >= self.enumeration_rate_threshold;
        if (hit_total || hit_window) && self.flagged.insert(source) {
            let ticks = self.first_touch.get(&source).cloned().unwrap_or_default();
            let evidence = if hit_window {
                ticks.get(in_window).copied().unwrap_or(now.as_u64())
            } else {
                ticks.first().copied().unwrap_or(now.as_u64())
            };
            self.raise_with_evidence(
                now,
                Tick(evidence),
                SecurityAlert::EnumerationSuspected {
                    source,
                    distinct_ids: total,
                },
            );
        }
    }

    /// Records the public IP a device session spoke from; raises
    /// [`SecurityAlert::SessionMoved`] on change.
    pub(crate) fn observe_device_ip(&mut self, dev_id: &DevId, ip: u32, now: Tick) {
        match self.device_ips.insert(dev_id.clone(), ip) {
            Some(old_ip) if old_ip != ip => {
                self.raise(
                    now,
                    SecurityAlert::SessionMoved {
                        dev_id: dev_id.clone(),
                        old_ip,
                        new_ip: ip,
                    },
                );
            }
            _ => {}
        }
    }

    /// The last public IP a device session spoke from.
    pub(crate) fn device_ip(&self, dev_id: &DevId) -> Option<u32> {
        self.device_ips.get(dev_id).copied()
    }

    /// Records an `AlreadyBound` denial of `challenger` for a device held
    /// by `holder`; flags the pair once the threshold is crossed. Latency
    /// is measured from the pair's first denial.
    pub(crate) fn observe_bind_denial(
        &mut self,
        dev_id: &DevId,
        holder: &UserId,
        challenger: &UserId,
        now: Tick,
    ) {
        let key = (dev_id.clone(), challenger.clone());
        self.contested_first.entry(key.clone()).or_insert(now);
        let n = self.contested.entry(key.clone()).or_default();
        *n += 1;
        let denials = *n;
        if denials >= self.contested_threshold && self.contested_flagged.insert(key.clone()) {
            let evidence = self.contested_first.get(&key).copied().unwrap_or(now);
            self.raise_with_evidence(
                now,
                evidence,
                SecurityAlert::ContestedBinding {
                    dev_id: dev_id.clone(),
                    holder: holder.clone(),
                    challenger: challenger.clone(),
                    denials,
                },
            );
        }
    }

    /// A status-family request from `from_ip` dropped the device's
    /// binding; raises [`SecurityAlert::ImpossibleTransition`] when the
    /// device is known to live at a different public IP.
    pub(crate) fn observe_binding_drop(&mut self, dev_id: &DevId, from_ip: u32, now: Tick) {
        if let Some(known_ip) = self.device_ip(dev_id) {
            if known_ip != from_ip {
                self.raise(
                    now,
                    SecurityAlert::ImpossibleTransition {
                        dev_id: dev_id.clone(),
                        from_ip,
                        known_ip,
                    },
                );
            }
        }
    }

    /// Marks a binding-session token as retired (unbind, reset, or
    /// defensive rotation). A later presentation of the token from a
    /// non-device IP is a stale-token replay.
    pub(crate) fn retire_token(&mut self, dev_id: &DevId, token: SessionToken, now: Tick) {
        self.retired.entry((dev_id.clone(), token)).or_insert(now);
    }

    /// Observes a presented binding-session token; raises
    /// [`SecurityAlert::StaleTokenReplay`] (once per token) when the token
    /// was retired and the presenter is not at the device's own IP.
    /// Latency is measured from the retirement tick.
    pub(crate) fn observe_presented_token(
        &mut self,
        dev_id: &DevId,
        token: SessionToken,
        from_ip: u32,
        now: Tick,
    ) {
        let key = (dev_id.clone(), token);
        let Some(&retired_at) = self.retired.get(&key) else {
            return;
        };
        if self.device_ip(dev_id) == Some(from_ip) {
            return;
        }
        if self.replay_flagged.insert(key) {
            self.raise_with_evidence(
                now,
                retired_at,
                SecurityAlert::StaleTokenReplay {
                    dev_id: dev_id.clone(),
                    from_ip,
                },
            );
        }
    }

    /// Places `dev_id` under quarantine until `until`.
    pub(crate) fn quarantine(&mut self, dev_id: &DevId, until: Tick) {
        let slot = self.quarantined.entry(dev_id.clone()).or_insert(until);
        if *slot < until {
            *slot = until;
        }
    }

    /// Whether `dev_id` is under quarantine at `now`.
    pub(crate) fn is_quarantined(&self, dev_id: &DevId, now: Tick) -> bool {
        self.quarantined
            .get(dev_id)
            .is_some_and(|&until| now < until)
    }

    /// The alerts raised since the last defense reaction, advancing the
    /// defense cursor past them. The service calls this after every
    /// handled request to drive the active responses.
    pub(crate) fn drain_defense_alerts(&mut self) -> Vec<(Tick, SecurityAlert)> {
        let fresh = self.log[self.defense_cursor..].to_vec();
        self.defense_cursor = self.log.len();
        fresh
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_wire::ids::{DevId, MacAddr};

    fn id(n: u8) -> DevId {
        DevId::Mac(MacAddr::new([n, 0, 0, 0, 0, 0]))
    }

    #[test]
    fn enumeration_flags_once_at_threshold() {
        let mut m = Monitor::new();
        m.enumeration_threshold = 3;
        for i in 0..5 {
            m.observe_target(NodeId(9), &id(i), Tick(1));
        }
        assert_eq!(m.count("enumeration"), 1, "{:?}", m.alerts());
        // A second source has its own counter.
        m.observe_target(NodeId(8), &id(0), Tick(2));
        assert_eq!(m.count("enumeration"), 1);
    }

    #[test]
    fn enumeration_burst_flags_inside_the_window() {
        let mut m = Monitor::new();
        // Absolute threshold far away; the burst detector must fire alone.
        m.enumeration_threshold = 100;
        m.enumeration_rate_threshold = 3;
        m.enumeration_window = 1_000;
        // Two touches long ago, outside the eventual window.
        m.observe_target(NodeId(9), &id(1), Tick(10));
        m.observe_target(NodeId(9), &id(2), Tick(20));
        assert_eq!(m.count("enumeration"), 0);
        // Three fresh IDs inside one window: flag.
        m.observe_target(NodeId(9), &id(3), Tick(5_000));
        m.observe_target(NodeId(9), &id(4), Tick(5_100));
        assert_eq!(m.count("enumeration"), 0, "two in window is below 3");
        m.observe_target(NodeId(9), &id(5), Tick(5_200));
        assert_eq!(m.count("enumeration"), 1);
        // Re-touching known IDs never re-flags.
        m.observe_target(NodeId(9), &id(6), Tick(5_300));
        assert_eq!(m.count("enumeration"), 1);
    }

    #[test]
    fn enumeration_latency_measures_from_the_window_start() {
        let tele = Telemetry::new();
        let mut m = Monitor::new();
        m.set_telemetry(tele.clone());
        m.enumeration_threshold = 100;
        m.enumeration_rate_threshold = 3;
        m.enumeration_window = 1_000;
        m.observe_target(NodeId(9), &id(1), Tick(5_000));
        m.observe_target(NodeId(9), &id(2), Tick(5_100));
        m.observe_target(NodeId(9), &id(3), Tick(5_250));
        let snap = tele.snapshot();
        let hist = snap
            .histogram("monitor_detection_latency_ticks{kind=\"enumeration\"}")
            .expect("latency histogram");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 250, "evidence = first touch in the window");
    }

    #[test]
    fn session_move_detected_only_on_change() {
        let mut m = Monitor::new();
        m.observe_device_ip(&id(1), 100, Tick(1));
        m.observe_device_ip(&id(1), 100, Tick(2));
        assert_eq!(m.count("session-moved"), 0);
        m.observe_device_ip(&id(1), 200, Tick(3));
        assert_eq!(m.count("session-moved"), 1);
        assert_eq!(m.device_ip(&id(1)), Some(200));
    }

    #[test]
    fn impossible_transition_requires_a_foreign_ip() {
        let mut m = Monitor::new();
        // Unknown device IP: no basis for impossibility.
        m.observe_binding_drop(&id(1), 9_999, Tick(5));
        assert_eq!(m.count("impossible-transition"), 0);
        m.observe_device_ip(&id(1), 1_000, Tick(6));
        // Same IP as the device (the benign household reset): silent.
        m.observe_binding_drop(&id(1), 1_000, Tick(7));
        assert_eq!(m.count("impossible-transition"), 0);
        // Foreign IP: alert.
        m.observe_binding_drop(&id(1), 9_999, Tick(8));
        assert_eq!(m.count("impossible-transition"), 1);
    }

    #[test]
    fn stale_token_replay_flags_foreign_presentations_once() {
        let mut m = Monitor::new();
        let token = SessionToken::from_entropy(42);
        m.observe_device_ip(&id(1), 1_000, Tick(1));
        // Live token: nothing to flag.
        m.observe_presented_token(&id(1), token, 9_999, Tick(2));
        assert_eq!(m.count("stale-token-replay"), 0);
        m.retire_token(&id(1), token, Tick(10));
        // The honest device still heartbeating its stale token from its
        // own IP is desync, not an attack.
        m.observe_presented_token(&id(1), token, 1_000, Tick(20));
        assert_eq!(m.count("stale-token-replay"), 0);
        // A foreign replay flags, exactly once.
        m.observe_presented_token(&id(1), token, 9_999, Tick(30));
        m.observe_presented_token(&id(1), token, 9_999, Tick(40));
        assert_eq!(m.count("stale-token-replay"), 1);
    }

    #[test]
    fn stale_token_latency_measures_from_retirement() {
        let tele = Telemetry::new();
        let mut m = Monitor::new();
        m.set_telemetry(tele.clone());
        let token = SessionToken::from_entropy(7);
        m.retire_token(&id(1), token, Tick(100));
        m.observe_presented_token(&id(1), token, 9_999, Tick(350));
        let snap = tele.snapshot();
        let hist = snap
            .histogram("monitor_detection_latency_ticks{kind=\"stale-token-replay\"}")
            .expect("latency histogram");
        assert_eq!((hist.count(), hist.sum()), (1, 250));
    }

    #[test]
    fn take_alerts_drains_the_queue_not_the_log() {
        let mut m = Monitor::new();
        m.raise(
            Tick(3),
            SecurityAlert::BareUnbind {
                dev_id: id(1),
                from_ip: 5,
            },
        );
        assert_eq!(m.take_alerts().len(), 1);
        assert!(m.alerts().is_empty());
        assert_eq!(m.alert_log().len(), 1, "the log is cumulative");
        assert_eq!(m.count("bare-unbind"), 1);
    }

    #[test]
    fn alert_kinds_are_pinned() {
        // Experiment tables and the telemetry counter labels key on these
        // exact strings; changing one silently breaks both.
        let u = |s: &str| UserId::new(s);
        let cases: Vec<(SecurityAlert, &str)> = vec![
            (
                SecurityAlert::ForeignUnbind {
                    dev_id: id(1),
                    victim: u("v"),
                    requester: u("a"),
                },
                "foreign-unbind",
            ),
            (
                SecurityAlert::BareUnbind {
                    dev_id: id(1),
                    from_ip: 9,
                },
                "bare-unbind",
            ),
            (
                SecurityAlert::BindingReplaced {
                    dev_id: id(1),
                    victim: u("v"),
                    new_holder: u("a"),
                },
                "binding-replaced",
            ),
            (
                SecurityAlert::SessionMoved {
                    dev_id: id(1),
                    old_ip: 1,
                    new_ip: 2,
                },
                "session-moved",
            ),
            (
                SecurityAlert::EnumerationSuspected {
                    source: NodeId(3),
                    distinct_ids: 8,
                },
                "enumeration",
            ),
            (
                SecurityAlert::ContestedBinding {
                    dev_id: id(1),
                    holder: u("h"),
                    challenger: u("c"),
                    denials: 3,
                },
                "contested-binding",
            ),
            (
                SecurityAlert::RemoteOnlyBind {
                    dev_id: id(1),
                    holder: u("a"),
                    from_ip: 7,
                },
                "remote-only-bind",
            ),
            (
                SecurityAlert::ImpossibleTransition {
                    dev_id: id(1),
                    from_ip: 9,
                    known_ip: 1,
                },
                "impossible-transition",
            ),
            (
                SecurityAlert::StaleTokenReplay {
                    dev_id: id(1),
                    from_ip: 9,
                },
                "stale-token-replay",
            ),
        ];
        for (alert, kind) in cases {
            assert_eq!(alert.kind(), kind);
            assert!(
                alert.describe().starts_with(kind),
                "describe() leads with the kind: {}",
                alert.describe()
            );
        }
    }

    #[test]
    fn contested_binding_flags_once_at_threshold_per_challenger() {
        let mut m = Monitor::new();
        m.contested_threshold = 3;
        let holder = UserId::new("owner");
        let mallory = UserId::new("mallory");
        for _ in 0..2 {
            m.observe_bind_denial(&id(1), &holder, &mallory, Tick(10));
        }
        assert_eq!(m.count("contested-binding"), 0, "below threshold");
        for _ in 0..3 {
            m.observe_bind_denial(&id(1), &holder, &mallory, Tick(20));
        }
        assert_eq!(m.count("contested-binding"), 1, "flagged exactly once");
        // A different challenger on the same device gets its own counter.
        let eve = UserId::new("eve");
        for _ in 0..3 {
            m.observe_bind_denial(&id(1), &holder, &eve, Tick(30));
        }
        assert_eq!(m.count("contested-binding"), 2);
    }

    #[test]
    fn contested_latency_measures_from_the_first_denial() {
        let tele = Telemetry::new();
        let mut m = Monitor::new();
        m.set_telemetry(tele.clone());
        m.contested_threshold = 3;
        let holder = UserId::new("owner");
        let mallory = UserId::new("mallory");
        m.observe_bind_denial(&id(1), &holder, &mallory, Tick(100));
        m.observe_bind_denial(&id(1), &holder, &mallory, Tick(200));
        m.observe_bind_denial(&id(1), &holder, &mallory, Tick(450));
        let snap = tele.snapshot();
        let hist = snap
            .histogram("monitor_detection_latency_ticks{kind=\"contested-binding\"}")
            .expect("latency histogram");
        assert_eq!((hist.count(), hist.sum()), (1, 350));
    }

    #[test]
    fn raise_emits_telemetry_counters_per_kind() {
        let tele = Telemetry::new();
        let mut m = Monitor::new();
        m.set_telemetry(tele.clone());
        m.raise(
            Tick(1),
            SecurityAlert::BareUnbind {
                dev_id: id(1),
                from_ip: 5,
            },
        );
        m.raise(
            Tick(2),
            SecurityAlert::BareUnbind {
                dev_id: id(2),
                from_ip: 5,
            },
        );
        m.raise(
            Tick(3),
            SecurityAlert::ForeignUnbind {
                dev_id: id(1),
                victim: UserId::new("v"),
                requester: UserId::new("a"),
            },
        );
        assert_eq!(tele.counter("cloud_alerts_total{kind=\"bare-unbind\"}"), 2);
        assert_eq!(
            tele.counter("cloud_alerts_total{kind=\"foreign-unbind\"}"),
            1
        );
        // Draining alerts does not reset the counters: the registry is the
        // cumulative record, the alert list is the actionable queue.
        let drained = m.take_alerts();
        assert_eq!(drained.len(), 3);
        assert_eq!(tele.counter("cloud_alerts_total{kind=\"bare-unbind\"}"), 2);
        // Every raise also lands on the streaming bus and the rate series.
        let (_, events) = tele.events_since(0);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].topic, "alert");
        assert!(events[0].body.starts_with("bare-unbind"));
        assert_eq!(tele.rate("cloud_alerts", 10), 3);
    }

    #[test]
    fn threshold_alerts_reach_telemetry_too() {
        let tele = Telemetry::new();
        let mut m = Monitor::new();
        m.set_telemetry(tele.clone());
        m.enumeration_threshold = 2;
        m.observe_target(NodeId(9), &id(1), Tick(1));
        m.observe_target(NodeId(9), &id(2), Tick(1));
        assert_eq!(tele.counter("cloud_alerts_total{kind=\"enumeration\"}"), 1);
        m.observe_device_ip(&id(1), 100, Tick(2));
        m.observe_device_ip(&id(1), 200, Tick(3));
        assert_eq!(
            tele.counter("cloud_alerts_total{kind=\"session-moved\"}"),
            1
        );
    }

    #[test]
    fn alert_stream_and_state_render_deterministically() {
        let run = || {
            let mut m = Monitor::new();
            m.observe_device_ip(&id(1), 100, Tick(5));
            m.observe_device_ip(&id(1), 9_999, Tick(40));
            m.quarantine(&id(1), Tick(500));
            m.quarantine(&id(2), Tick(300));
            (m.render_alert_stream(), m.render_state())
        };
        let (stream, state) = run();
        assert_eq!((stream.clone(), state.clone()), run());
        assert!(
            stream.contains("t=40 session-moved dev="),
            "stream lines are tick-stamped: {stream}"
        );
        assert!(state.contains("alerts session-moved=1"), "{state}");
        assert!(state.contains("quarantined=["), "{state}");
    }

    #[test]
    fn quarantine_expires_and_extends() {
        let mut m = Monitor::new();
        m.quarantine(&id(1), Tick(100));
        assert!(m.is_quarantined(&id(1), Tick(50)));
        assert!(!m.is_quarantined(&id(1), Tick(100)), "until is exclusive");
        assert!(!m.is_quarantined(&id(2), Tick(50)));
        // Extension keeps the later deadline; shrinking is ignored.
        m.quarantine(&id(1), Tick(200));
        m.quarantine(&id(1), Tick(150));
        assert!(m.is_quarantined(&id(1), Tick(199)));
    }

    #[test]
    fn defense_drain_sees_each_alert_once() {
        let mut m = Monitor::new();
        m.raise(
            Tick(1),
            SecurityAlert::BareUnbind {
                dev_id: id(1),
                from_ip: 5,
            },
        );
        let first = m.drain_defense_alerts();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].0, Tick(1));
        assert!(m.drain_defense_alerts().is_empty());
        m.raise(
            Tick(9),
            SecurityAlert::BareUnbind {
                dev_id: id(2),
                from_ip: 5,
            },
        );
        assert_eq!(m.drain_defense_alerts().len(), 1);
        // The log itself is untouched by draining.
        assert_eq!(m.alert_log().len(), 2);
    }

    #[test]
    fn hardened_policy_is_enabled_and_default_is_not() {
        assert!(!DefensePolicy::default().is_enabled());
        assert!(!DefensePolicy::disabled().is_enabled());
        let hard = DefensePolicy::hardened();
        assert!(hard.is_enabled());
        assert!(hard.rotate_tokens);
        assert!(hard.bind_limit.is_some());
        assert!(hard.quarantine_ticks > 0);
    }
}
