//! Runtime security monitoring.
//!
//! The paper's attacks succeed *silently*: nothing in the studied clouds
//! notices a foreign unbind, a replaced binding, or an ID-space sweep. This
//! module is the defensive counterpart — a passive monitor inside the cloud
//! that raises [`SecurityAlert`]s on exactly the signatures the attack
//! engine produces, so the detection experiment can measure which Table III
//! attacks each design *could have noticed* without any protocol change.

use std::collections::{HashMap, HashSet};

use rb_netsim::{NodeId, Telemetry, Tick};
use rb_wire::ids::DevId;
use rb_wire::tokens::UserId;

/// A security-relevant anomaly observed by the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecurityAlert {
    /// An accepted `Unbind:(DevId,UserToken)` whose requester was not the
    /// bound user (the A3-2 signature).
    ForeignUnbind {
        /// The affected device.
        dev_id: DevId,
        /// The user whose binding was revoked.
        victim: UserId,
        /// The requesting user.
        requester: UserId,
    },
    /// An accepted bare `Unbind:DevId` (the A3-1 signature — inherently
    /// unattributable).
    BareUnbind {
        /// The affected device.
        dev_id: DevId,
        /// Public IP the request came from.
        from_ip: u32,
    },
    /// An accepted bind displaced an existing binding of a different user
    /// (the A3-3/A4-1 signature).
    BindingReplaced {
        /// The affected device.
        dev_id: DevId,
        /// The displaced user.
        victim: UserId,
        /// The new holder.
        new_holder: UserId,
    },
    /// A device session moved to a different public IP (the A1/A3-4/A4
    /// status-forgery signature; also fires on legitimate household moves,
    /// which is why it is an alert and not a block).
    SessionMoved {
        /// The affected device.
        dev_id: DevId,
        /// Previous public IP.
        old_ip: u32,
        /// New public IP.
        new_ip: u32,
    },
    /// One source touched many distinct device IDs (the enumeration /
    /// scalable-DoS signature of §V-C).
    EnumerationSuspected {
        /// The probing source.
        source: NodeId,
        /// Distinct device IDs touched.
        distinct_ids: usize,
    },
    /// Someone keeps being refused a binding another account holds — the
    /// victim-experience signature of a pre-emptive occupation (A2) on
    /// designs whose device never comes online while the DoS holds.
    ContestedBinding {
        /// The disputed device.
        dev_id: DevId,
        /// The current holder.
        holder: UserId,
        /// The repeatedly refused challenger.
        challenger: UserId,
        /// Denials observed.
        denials: u32,
    },
    /// A binding was created for a device the requester's source IP has
    /// never been co-located with (the pre-emptive A2 signature: the real
    /// owner's app binds from the same NAT as the device sooner or later;
    /// the attacker never does).
    RemoteOnlyBind {
        /// The affected device.
        dev_id: DevId,
        /// The binder.
        holder: UserId,
        /// Public IP of the bind request.
        from_ip: u32,
    },
}

impl SecurityAlert {
    /// Short classifier for tables.
    pub fn kind(&self) -> &'static str {
        match self {
            SecurityAlert::ForeignUnbind { .. } => "foreign-unbind",
            SecurityAlert::BareUnbind { .. } => "bare-unbind",
            SecurityAlert::BindingReplaced { .. } => "binding-replaced",
            SecurityAlert::SessionMoved { .. } => "session-moved",
            SecurityAlert::EnumerationSuspected { .. } => "enumeration",
            SecurityAlert::ContestedBinding { .. } => "contested-binding",
            SecurityAlert::RemoteOnlyBind { .. } => "remote-only-bind",
        }
    }
}

/// The passive monitor: fed observations by the service handlers, keeps
/// bounded per-source statistics, and accumulates alerts.
#[derive(Debug)]
pub struct Monitor {
    /// Raised alerts, in order.
    alerts: Vec<SecurityAlert>,
    /// Distinct device IDs touched per source.
    touched: HashMap<NodeId, HashSet<DevId>>,
    /// Sources already flagged for enumeration (flag once).
    flagged: HashSet<NodeId>,
    /// Device public IPs observed from device sessions.
    device_ips: HashMap<DevId, u32>,
    /// AlreadyBound denials per (device, challenger).
    contested: HashMap<(DevId, UserId), u32>,
    /// Contested pairs already flagged.
    contested_flagged: HashSet<(DevId, UserId)>,
    /// Threshold of distinct IDs per source before flagging.
    pub enumeration_threshold: usize,
    /// AlreadyBound denials per (device, challenger) before flagging.
    pub contested_threshold: u32,
    /// Metrics sink: every raised alert also bumps
    /// `cloud_alerts_total{kind="…"}`.
    telemetry: Telemetry,
}

impl Monitor {
    /// A monitor with the default enumeration threshold (8 distinct IDs).
    pub fn new() -> Self {
        Monitor {
            alerts: Vec::new(),
            touched: HashMap::new(),
            flagged: HashSet::new(),
            device_ips: HashMap::new(),
            contested: HashMap::new(),
            contested_flagged: HashSet::new(),
            enumeration_threshold: 8,
            contested_threshold: 3,
            telemetry: Telemetry::new(),
        }
    }

    /// Points the monitor at a shared telemetry registry (normally the
    /// cloud service forwards its own handle here).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[SecurityAlert] {
        &self.alerts
    }

    /// Alerts of one kind.
    pub fn count(&self, kind: &str) -> usize {
        self.alerts.iter().filter(|a| a.kind() == kind).count()
    }

    /// Drains the alert list.
    pub fn take_alerts(&mut self) -> Vec<SecurityAlert> {
        std::mem::take(&mut self.alerts)
    }

    pub(crate) fn raise(&mut self, alert: SecurityAlert) {
        self.telemetry
            .incr(&format!("cloud_alerts_total{{kind=\"{}\"}}", alert.kind()));
        self.alerts.push(alert);
    }

    /// Records that `source` addressed `dev_id`; raises the enumeration
    /// alert when the per-source distinct-ID count crosses the threshold.
    pub(crate) fn observe_target(&mut self, source: NodeId, dev_id: &DevId, _now: Tick) {
        let set = self.touched.entry(source).or_default();
        set.insert(dev_id.clone());
        if set.len() >= self.enumeration_threshold && self.flagged.insert(source) {
            let distinct_ids = self.touched.get(&source).map_or(0, |s| s.len());
            self.raise(SecurityAlert::EnumerationSuspected {
                source,
                distinct_ids,
            });
        }
    }

    /// Records the public IP a device session spoke from; raises
    /// [`SecurityAlert::SessionMoved`] on change.
    pub(crate) fn observe_device_ip(&mut self, dev_id: &DevId, ip: u32) {
        match self.device_ips.insert(dev_id.clone(), ip) {
            Some(old_ip) if old_ip != ip => {
                self.raise(SecurityAlert::SessionMoved {
                    dev_id: dev_id.clone(),
                    old_ip,
                    new_ip: ip,
                });
            }
            _ => {}
        }
    }

    /// The last public IP a device session spoke from.
    pub(crate) fn device_ip(&self, dev_id: &DevId) -> Option<u32> {
        self.device_ips.get(dev_id).copied()
    }

    /// Records an `AlreadyBound` denial of `challenger` for a device held
    /// by `holder`; flags the pair once the threshold is crossed.
    pub(crate) fn observe_bind_denial(
        &mut self,
        dev_id: &DevId,
        holder: &UserId,
        challenger: &UserId,
    ) {
        let key = (dev_id.clone(), challenger.clone());
        let n = self.contested.entry(key.clone()).or_default();
        *n += 1;
        let denials = *n;
        if denials >= self.contested_threshold && self.contested_flagged.insert(key) {
            self.raise(SecurityAlert::ContestedBinding {
                dev_id: dev_id.clone(),
                holder: holder.clone(),
                challenger: challenger.clone(),
                denials,
            });
        }
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_wire::ids::{DevId, MacAddr};

    fn id(n: u8) -> DevId {
        DevId::Mac(MacAddr::new([n, 0, 0, 0, 0, 0]))
    }

    #[test]
    fn enumeration_flags_once_at_threshold() {
        let mut m = Monitor::new();
        m.enumeration_threshold = 3;
        for i in 0..5 {
            m.observe_target(NodeId(9), &id(i), Tick(1));
        }
        assert_eq!(m.count("enumeration"), 1, "{:?}", m.alerts());
        // A second source has its own counter.
        m.observe_target(NodeId(8), &id(0), Tick(2));
        assert_eq!(m.count("enumeration"), 1);
    }

    #[test]
    fn session_move_detected_only_on_change() {
        let mut m = Monitor::new();
        m.observe_device_ip(&id(1), 100);
        m.observe_device_ip(&id(1), 100);
        assert_eq!(m.count("session-moved"), 0);
        m.observe_device_ip(&id(1), 200);
        assert_eq!(m.count("session-moved"), 1);
        assert_eq!(m.device_ip(&id(1)), Some(200));
    }

    #[test]
    fn take_alerts_drains() {
        let mut m = Monitor::new();
        m.raise(SecurityAlert::BareUnbind {
            dev_id: id(1),
            from_ip: 5,
        });
        assert_eq!(m.take_alerts().len(), 1);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn alert_kinds_are_pinned() {
        // Experiment tables and the telemetry counter labels key on these
        // exact strings; changing one silently breaks both.
        let u = |s: &str| UserId::new(s);
        let cases: Vec<(SecurityAlert, &str)> = vec![
            (
                SecurityAlert::ForeignUnbind {
                    dev_id: id(1),
                    victim: u("v"),
                    requester: u("a"),
                },
                "foreign-unbind",
            ),
            (
                SecurityAlert::BareUnbind {
                    dev_id: id(1),
                    from_ip: 9,
                },
                "bare-unbind",
            ),
            (
                SecurityAlert::BindingReplaced {
                    dev_id: id(1),
                    victim: u("v"),
                    new_holder: u("a"),
                },
                "binding-replaced",
            ),
            (
                SecurityAlert::SessionMoved {
                    dev_id: id(1),
                    old_ip: 1,
                    new_ip: 2,
                },
                "session-moved",
            ),
            (
                SecurityAlert::EnumerationSuspected {
                    source: NodeId(3),
                    distinct_ids: 8,
                },
                "enumeration",
            ),
            (
                SecurityAlert::ContestedBinding {
                    dev_id: id(1),
                    holder: u("h"),
                    challenger: u("c"),
                    denials: 3,
                },
                "contested-binding",
            ),
            (
                SecurityAlert::RemoteOnlyBind {
                    dev_id: id(1),
                    holder: u("a"),
                    from_ip: 7,
                },
                "remote-only-bind",
            ),
        ];
        for (alert, kind) in cases {
            assert_eq!(alert.kind(), kind);
        }
    }

    #[test]
    fn contested_binding_flags_once_at_threshold_per_challenger() {
        let mut m = Monitor::new();
        m.contested_threshold = 3;
        let holder = UserId::new("owner");
        let mallory = UserId::new("mallory");
        for _ in 0..2 {
            m.observe_bind_denial(&id(1), &holder, &mallory);
        }
        assert_eq!(m.count("contested-binding"), 0, "below threshold");
        for _ in 0..3 {
            m.observe_bind_denial(&id(1), &holder, &mallory);
        }
        assert_eq!(m.count("contested-binding"), 1, "flagged exactly once");
        // A different challenger on the same device gets its own counter.
        let eve = UserId::new("eve");
        for _ in 0..3 {
            m.observe_bind_denial(&id(1), &holder, &eve);
        }
        assert_eq!(m.count("contested-binding"), 2);
    }

    #[test]
    fn raise_emits_telemetry_counters_per_kind() {
        let tele = Telemetry::new();
        let mut m = Monitor::new();
        m.set_telemetry(tele.clone());
        m.raise(SecurityAlert::BareUnbind {
            dev_id: id(1),
            from_ip: 5,
        });
        m.raise(SecurityAlert::BareUnbind {
            dev_id: id(2),
            from_ip: 5,
        });
        m.raise(SecurityAlert::ForeignUnbind {
            dev_id: id(1),
            victim: UserId::new("v"),
            requester: UserId::new("a"),
        });
        assert_eq!(tele.counter("cloud_alerts_total{kind=\"bare-unbind\"}"), 2);
        assert_eq!(
            tele.counter("cloud_alerts_total{kind=\"foreign-unbind\"}"),
            1
        );
        // Draining alerts does not reset the counters: the registry is the
        // cumulative record, the alert list is the actionable queue.
        let drained = m.take_alerts();
        assert_eq!(drained.len(), 3);
        assert_eq!(tele.counter("cloud_alerts_total{kind=\"bare-unbind\"}"), 2);
    }

    #[test]
    fn threshold_alerts_reach_telemetry_too() {
        let tele = Telemetry::new();
        let mut m = Monitor::new();
        m.set_telemetry(tele.clone());
        m.enumeration_threshold = 2;
        m.observe_target(NodeId(9), &id(1), Tick(1));
        m.observe_target(NodeId(9), &id(2), Tick(1));
        assert_eq!(tele.counter("cloud_alerts_total{kind=\"enumeration\"}"), 1);
        m.observe_device_ip(&id(1), 100);
        m.observe_device_ip(&id(1), 200);
        assert_eq!(
            tele.counter("cloud_alerts_total{kind=\"session-moved\"}"),
            1
        );
    }
}
