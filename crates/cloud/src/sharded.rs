//! Prefix-sharded hash maps for the cloud's hot lookup tables.
//!
//! A vendor-scale cloud holds millions of device records and issued
//! tokens. A single flat `HashMap` serves point lookups fine, but rehash
//! pauses grow with the whole table and every operation contends on one
//! allocation. [`ShardedMap`] splits the key space into [`SHARDS`] fixed
//! shards by a cheap key prefix (device-id first byte, token low byte), so
//! each shard stays small, rehashes independently, and — in the fleet
//! engine's per-cell worlds — warms caches with only the slice of the
//! population a cell actually touches.
//!
//! Sharding is an internal layout choice: lookups stay O(1), and nothing
//! about the *result* of any operation depends on which shard a key lands
//! in, so determinism of the simulation is untouched. Iteration walks
//! shards in fixed index order; within a shard the order is as arbitrary
//! as a `HashMap`'s, exactly as before.

use std::collections::HashMap;
use std::hash::Hash;

use rb_wire::ids::DevId;
use rb_wire::tokens::{BindToken, DevToken};

/// Number of shards. A power of two so the prefix folds with a mask.
pub const SHARDS: usize = 16;

/// A key that can name its shard with a one-byte prefix.
///
/// The prefix only spreads load — correctness never depends on its
/// distribution, so a cheap byte (MAC first octet, token low byte) is
/// enough.
pub trait ShardKey: Hash + Eq {
    /// A byte derived from the key; the shard is `prefix % SHARDS`.
    fn shard_prefix(&self) -> u8;
}

impl ShardKey for DevId {
    fn shard_prefix(&self) -> u8 {
        match self {
            // Low-order bytes vary across a fleet (OUI bytes do not).
            DevId::Mac(mac) => mac.octets()[5],
            DevId::Serial { vendor, seq } => (*vendor as u8) ^ (*seq as u8),
            DevId::Digits { value, .. } => *value as u8,
            DevId::Uuid(v) => *v as u8,
        }
    }
}

impl ShardKey for DevToken {
    fn shard_prefix(&self) -> u8 {
        self.to_u128() as u8
    }
}

impl ShardKey for BindToken {
    fn shard_prefix(&self) -> u8 {
        self.to_u128() as u8
    }
}

/// A hash map split into [`SHARDS`] independent shards by key prefix.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<HashMap<K, V>>,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| HashMap::new()).collect(),
        }
    }
}

impl<K: ShardKey, V> ShardedMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        ShardedMap::default()
    }

    fn shard(&self, key: &K) -> usize {
        key.shard_prefix() as usize % SHARDS
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let s = self.shard(&key);
        self.shards[s].insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[self.shard(key)].get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let s = self.shard(key);
        self.shards[s].get_mut(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[self.shard(key)].contains_key(key)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let s = self.shard(key);
        self.shards[s].remove(key)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Iterates all entries, shard by shard in fixed shard order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.shards.iter().flat_map(HashMap::iter)
    }

    /// Iterates all keys, shard by shard in fixed shard order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.shards.iter().flat_map(HashMap::keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_wire::ids::MacAddr;

    fn id(n: u8) -> DevId {
        DevId::Mac(MacAddr::new([2, 0, 0, 0, 0, n]))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: ShardedMap<DevId, u32> = ShardedMap::new();
        assert!(m.is_empty());
        for n in 0..64 {
            assert!(m.insert(id(n), u32::from(n)).is_none());
        }
        assert_eq!(m.len(), 64);
        for n in 0..64 {
            assert_eq!(m.get(&id(n)), Some(&u32::from(n)));
            assert!(m.contains_key(&id(n)));
        }
        assert_eq!(m.insert(id(3), 99), Some(3));
        *m.get_mut(&id(4)).expect("present") += 1;
        assert_eq!(m.get(&id(4)), Some(&5));
        assert_eq!(m.remove(&id(5)), Some(5));
        assert!(!m.contains_key(&id(5)));
        assert_eq!(m.len(), 63);
    }

    #[test]
    fn keys_spread_over_multiple_shards() {
        let mut m: ShardedMap<DevId, ()> = ShardedMap::new();
        for n in 0..u8::MAX {
            m.insert(id(n), ());
        }
        // Consecutive MAC low bytes must not all pile into one shard.
        let occupied: std::collections::HashSet<usize> = m
            .keys()
            .map(|k| k.shard_prefix() as usize % SHARDS)
            .collect();
        assert_eq!(occupied.len(), SHARDS);
        assert_eq!(m.iter().count(), usize::from(u8::MAX));
    }

    #[test]
    fn token_prefixes_cover_shards() {
        let mut seen = std::collections::HashSet::new();
        for e in 0..256u128 {
            seen.insert(DevToken::from_entropy(e).shard_prefix() as usize % SHARDS);
            seen.insert(BindToken::from_entropy(e << 1).shard_prefix() as usize % SHARDS);
        }
        assert_eq!(seen.len(), SHARDS);
    }
}
