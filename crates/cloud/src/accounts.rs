//! User accounts and `UserToken` issuance.

use std::collections::HashMap;

use rb_netsim::{NodeId, SimRng};
use rb_wire::messages::DenyReason;
use rb_wire::tokens::{UserId, UserPw, UserToken};

/// The account store: registered users, their passwords, and the tokens
/// issued to logged-in sessions.
#[derive(Debug, Default)]
pub struct AccountStore {
    passwords: HashMap<UserId, UserPw>,
    tokens: HashMap<UserToken, UserId>,
    /// Last node each user logged in from — where pushes are delivered.
    nodes: HashMap<UserId, NodeId>,
}

impl AccountStore {
    /// An empty store.
    pub fn new() -> Self {
        AccountStore::default()
    }

    /// Registers an account (vendor-side sign-up; not part of the attacked
    /// surface).
    pub fn register(&mut self, user_id: UserId, user_pw: UserPw) {
        self.passwords.insert(user_id, user_pw);
    }

    /// Whether an account exists.
    pub fn exists(&self, user_id: &UserId) -> bool {
        self.passwords.contains_key(user_id)
    }

    /// Password login from `node`; issues a fresh [`UserToken`].
    ///
    /// # Errors
    ///
    /// [`DenyReason::BadCredentials`] on unknown user or wrong password.
    pub fn login(
        &mut self,
        user_id: &UserId,
        user_pw: &UserPw,
        node: NodeId,
        rng: &mut SimRng,
    ) -> Result<UserToken, DenyReason> {
        match self.passwords.get(user_id) {
            Some(stored) if stored.verify(user_pw) => {
                let token = UserToken::from_entropy(rng.entropy128());
                self.tokens.insert(token, user_id.clone());
                self.nodes.insert(user_id.clone(), node);
                Ok(token)
            }
            _ => Err(DenyReason::BadCredentials),
        }
    }

    /// Verifies a password without minting a token (device-initiated ACL
    /// binding carries raw credentials).
    ///
    /// # Errors
    ///
    /// [`DenyReason::BadCredentials`] on unknown user or wrong password.
    pub fn verify_password(&self, user_id: &UserId, user_pw: &UserPw) -> Result<(), DenyReason> {
        match self.passwords.get(user_id) {
            Some(stored) if stored.verify(user_pw) => Ok(()),
            _ => Err(DenyReason::BadCredentials),
        }
    }

    /// Resolves a token to its user.
    ///
    /// # Errors
    ///
    /// [`DenyReason::InvalidUserToken`] if the token was never issued (or
    /// was revoked).
    pub fn verify_token(&self, token: &UserToken) -> Result<&UserId, DenyReason> {
        self.tokens.get(token).ok_or(DenyReason::InvalidUserToken)
    }

    /// Revokes every token of a user (logout / password change).
    pub fn revoke_tokens_of(&mut self, user_id: &UserId) {
        self.tokens.retain(|_, u| u != user_id);
    }

    /// The node a user last logged in from.
    pub fn node_of(&self, user_id: &UserId) -> Option<NodeId> {
        self.nodes.get(user_id).copied()
    }

    /// Number of live tokens (diagnostics).
    pub fn live_tokens(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn login_issues_distinct_tokens() {
        let mut store = AccountStore::new();
        let mut rng = rng();
        store.register(UserId::new("alice"), UserPw::new("pw"));
        let t1 = store
            .login(
                &UserId::new("alice"),
                &UserPw::new("pw"),
                NodeId(1),
                &mut rng,
            )
            .unwrap();
        let t2 = store
            .login(
                &UserId::new("alice"),
                &UserPw::new("pw"),
                NodeId(1),
                &mut rng,
            )
            .unwrap();
        assert_ne!(t1, t2);
        assert_eq!(store.verify_token(&t1).unwrap(), &UserId::new("alice"));
        assert_eq!(store.verify_token(&t2).unwrap(), &UserId::new("alice"));
        assert_eq!(store.live_tokens(), 2);
    }

    #[test]
    fn wrong_password_and_unknown_user_fail_identically() {
        let mut store = AccountStore::new();
        let mut rng = rng();
        store.register(UserId::new("alice"), UserPw::new("pw"));
        let bad_pw = store.login(
            &UserId::new("alice"),
            &UserPw::new("x"),
            NodeId(1),
            &mut rng,
        );
        let no_user = store.login(&UserId::new("bob"), &UserPw::new("pw"), NodeId(1), &mut rng);
        assert_eq!(bad_pw.unwrap_err(), DenyReason::BadCredentials);
        assert_eq!(no_user.unwrap_err(), DenyReason::BadCredentials);
    }

    #[test]
    fn forged_token_is_rejected() {
        let store = AccountStore::new();
        assert_eq!(
            store.verify_token(&UserToken::from_entropy(1)).unwrap_err(),
            DenyReason::InvalidUserToken
        );
    }

    #[test]
    fn revocation_invalidates_all_tokens() {
        let mut store = AccountStore::new();
        let mut rng = rng();
        store.register(UserId::new("alice"), UserPw::new("pw"));
        let t = store
            .login(
                &UserId::new("alice"),
                &UserPw::new("pw"),
                NodeId(1),
                &mut rng,
            )
            .unwrap();
        store.revoke_tokens_of(&UserId::new("alice"));
        assert!(store.verify_token(&t).is_err());
    }

    #[test]
    fn node_tracking_follows_last_login() {
        let mut store = AccountStore::new();
        let mut rng = rng();
        store.register(UserId::new("alice"), UserPw::new("pw"));
        store
            .login(
                &UserId::new("alice"),
                &UserPw::new("pw"),
                NodeId(3),
                &mut rng,
            )
            .unwrap();
        assert_eq!(store.node_of(&UserId::new("alice")), Some(NodeId(3)));
        store
            .login(
                &UserId::new("alice"),
                &UserPw::new("pw"),
                NodeId(9),
                &mut rng,
            )
            .unwrap();
        assert_eq!(store.node_of(&UserId::new("alice")), Some(NodeId(9)));
        assert_eq!(store.node_of(&UserId::new("bob")), None);
    }

    #[test]
    fn verify_password_does_not_mint() {
        let mut store = AccountStore::new();
        store.register(UserId::new("alice"), UserPw::new("pw"));
        assert!(store
            .verify_password(&UserId::new("alice"), &UserPw::new("pw"))
            .is_ok());
        assert!(store
            .verify_password(&UserId::new("alice"), &UserPw::new("no"))
            .is_err());
        assert_eq!(store.live_tokens(), 0);
    }
}
