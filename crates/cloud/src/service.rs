//! The cloud service: message handlers parameterized by a vendor design.
//!
//! Every accept/deny branch here corresponds to a design element of
//! [`VendorDesign`]; the static analyzer in `rb-core` reasons about those
//! elements symbolically, and this module *executes* them, so the Table III
//! experiment can cross-check prediction against execution.

use std::collections::HashMap;

use rb_core::design::{BindScheme, CloudChecks, DeviceAuthScheme, UnbindSupport, VendorDesign};
use rb_core::shadow::ShadowState;
use rb_netsim::{Actor, Ctx, Dest, NodeId, Profiler, SimRng, Telemetry, Tick};
use rb_wire::codec::CodecKind;
use rb_wire::envelope::Envelope;
use rb_wire::ids::DevId;
use rb_wire::messages::{
    AutomationRule, BindPayload, ControlAction, DenyReason, Message, Response, StatusAuth,
    StatusKind, StatusPayload, UnbindPayload,
};
use rb_wire::tokens::{SessionToken, UserId, UserPw, UserToken};

use crate::accounts::AccountStore;
use crate::audit::{AuditEntry, AuditLog};
use crate::issued::{BindTokenLedger, DevTokenLedger};
use crate::monitor::{DefensePolicy, Monitor, SecurityAlert};
use crate::registry::{DeviceRecord, DeviceRegistry};
use crate::state::DeviceState;

/// Per-source request rate limiting — the defense that prices remote ID
/// enumeration out of the §I "within an hour" regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Window length in ticks.
    pub window: u64,
    /// Maximum requests per source node per window.
    pub max: u32,
}

/// The `Copy` control-flow knobs of a [`VendorDesign`], snapshotted per
/// request. Handlers used to clone the whole design (including its heap
/// `String` vendor name) on every message; this copies four plain enums
/// and bit-structs instead while keeping the `design.checks.…` call sites
/// unchanged.
#[derive(Debug, Clone, Copy)]
struct DesignKnobs {
    checks: CloudChecks,
    bind: BindScheme,
    auth: DeviceAuthScheme,
    unbind: UnbindSupport,
}

/// Cloud configuration.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// The vendor design that parameterizes every handler.
    pub design: VendorDesign,
    /// Ticks without a status message before a device is considered
    /// offline.
    pub heartbeat_timeout: u64,
    /// Window (ticks) within which a reported button press counts as a
    /// local-presence proof (Philips Hue: 30 seconds).
    pub button_window: u64,
    /// Audit-log capacity.
    pub audit_cap: usize,
    /// Optional per-source rate limit (off by default — none of the studied
    /// vendors deployed one, which is what makes enumeration viable).
    pub rate_limit: Option<RateLimit>,
    /// Active-response policy driven by the streaming monitor's alerts.
    /// Disabled by default: the monitor observes but the service never
    /// intervenes, keeping default-world behavior byte-identical.
    pub defense: DefensePolicy,
}

impl CloudConfig {
    /// A configuration with realistic defaults (30 s heartbeat timeout,
    /// 30 s button window at 1 tick = 1 ms).
    pub fn new(design: VendorDesign) -> Self {
        CloudConfig {
            design,
            heartbeat_timeout: 30_000,
            button_window: 30_000,
            audit_cap: 65_536,
            rate_limit: None,
            defense: DefensePolicy::disabled(),
        }
    }
}

/// The result of handling one request: the direct reply plus any pushes to
/// other parties.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Reply to the requester.
    pub reply: Response,
    /// Unsolicited pushes `(recipient, response)`.
    pub pushes: Vec<(NodeId, Response)>,
}

impl Outcome {
    fn deny(reason: DenyReason) -> Self {
        Outcome {
            reply: Response::Denied { reason },
            pushes: Vec::new(),
        }
    }

    fn reply(reply: Response) -> Self {
        Outcome {
            reply,
            pushes: Vec::new(),
        }
    }
}

const TIMER_EXPIRE: u64 = 1;

/// The simulated IoT cloud.
///
/// See the [crate docs](crate) for the component map. Drive it through the
/// network simulator (it implements [`Actor`]) or call
/// [`CloudService::handle_message`] directly in protocol tests.
pub struct CloudService {
    config: CloudConfig,
    accounts: AccountStore,
    registry: DeviceRegistry,
    dev_tokens: DevTokenLedger,
    bind_tokens: BindTokenLedger,
    state: DeviceState,
    audit: AuditLog,
    nat: HashMap<NodeId, u32>,
    rules: HashMap<rb_wire::tokens::UserId, Vec<AutomationRule>>,
    rate: HashMap<NodeId, (Tick, u32)>,
    /// Per-source `Bind` windows for the defense policy's bind limiter.
    bind_rate: HashMap<NodeId, (Tick, u32)>,
    monitor: Monitor,
    telemetry: Telemetry,
    /// Phase profiler: disabled by default (one branch per request); a
    /// recording handle tallies the codec round-trip and dispatch under
    /// the simulation's open `sim.deliver` phase.
    profiler: Profiler,
    /// Wire format spoken on the simulated network (classic by default).
    codec: CodecKind,
    forensics: bool,
    forensic_marks: Vec<String>,
}

impl CloudService {
    /// Creates a cloud for one vendor design.
    pub fn new(config: CloudConfig) -> Self {
        let audit = AuditLog::new(config.audit_cap);
        CloudService {
            config,
            accounts: AccountStore::new(),
            registry: DeviceRegistry::new(),
            dev_tokens: DevTokenLedger::new(),
            bind_tokens: BindTokenLedger::new(),
            state: DeviceState::new(),
            audit,
            nat: HashMap::new(),
            rules: HashMap::new(),
            rate: HashMap::new(),
            bind_rate: HashMap::new(),
            monitor: Monitor::new(),
            telemetry: Telemetry::new(),
            profiler: Profiler::disabled(),
            codec: CodecKind::default(),
            forensics: false,
            forensic_marks: Vec::new(),
        }
    }

    /// Enables forensic marks: causally-attributed statements ("rpc …",
    /// "shadow …", "bind …") emitted into the simulation trace alongside
    /// the packet that caused them, consumed by `rb-forensics` to
    /// reconstruct attacks. Off by default so untraced runs pay nothing.
    pub fn set_forensics(&mut self, enabled: bool) {
        self.forensics = enabled;
    }

    /// Records a shadow transition into the unified registry — the
    /// `cloud_shadow_transitions_total{from,to}` counter plus the
    /// binding-lifecycle histograms — and, when forensics is on, a
    /// `shadow dev=… from=… to=…` mark tied to the causing message.
    fn track_transition(
        &mut self,
        dev_id: &DevId,
        before: ShadowState,
        after: ShadowState,
        now: Tick,
    ) {
        if before == after {
            return;
        }
        if !self.telemetry.is_enabled() {
            if self.forensics {
                self.forensic_marks
                    .push(format!("shadow dev={dev_id} from={before} to={after}"));
            }
            return;
        }
        self.telemetry.with(|r| {
            r.counter_add(
                &format!("cloud_shadow_transitions_total{{from=\"{before}\",to=\"{after}\"}}"),
                1,
            );
            let dev = dev_id.to_string();
            let now = now.as_u64();
            match (before.is_online(), after.is_online()) {
                (false, true) => r.lifecycle_online(&dev, now),
                (true, false) => r.lifecycle_offline(&dev),
                _ => {}
            }
            match (before.is_bound(), after.is_bound()) {
                (false, true) => r.lifecycle_bound(&dev, now),
                (true, false) => r.lifecycle_unbound(&dev, now),
                _ => {}
            }
        });
        if self.forensics {
            self.forensic_marks
                .push(format!("shadow dev={dev_id} from={before} to={after}"));
        }
    }

    /// Points the cloud (and its monitor) at a shared telemetry registry.
    /// The world builder calls this with the simulation's handle so every
    /// layer records into one place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.monitor.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Installs a phase profiler (usually the simulation's handle, so the
    /// cloud's `cloud.decode` / `cloud.dispatch` / `cloud.encode` tallies
    /// nest under the open `sim.deliver` phase).
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Selects the wire format this cloud encodes and decodes. All parties
    /// in a world must agree; `WorldBuilder::with_codec` threads one choice
    /// through every agent.
    pub fn set_codec(&mut self, codec: CodecKind) {
        self.codec = codec;
    }

    /// The telemetry handle this cloud records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The design this cloud implements.
    pub fn design(&self) -> &VendorDesign {
        &self.config.design
    }

    /// Per-request snapshot of the design's `Copy` knobs (no allocation).
    fn knobs(&self) -> DesignKnobs {
        let d = &self.config.design;
        DesignKnobs {
            checks: d.checks,
            bind: d.bind,
            auth: d.auth,
            unbind: d.unbind,
        }
    }

    /// Vendor-side account signup.
    pub fn provision_account(&mut self, user_id: UserId, user_pw: UserPw) {
        self.accounts.register(user_id, user_pw);
    }

    /// Manufactures a device: registers its ID, factory secret, and
    /// (optionally) a signing key.
    pub fn manufacture(&mut self, dev_id: DevId, factory_secret: u128, key: Option<(u64, u128)>) {
        self.registry.add(
            dev_id,
            DeviceRecord {
                factory_secret,
                key,
            },
        );
    }

    /// Declares the public IP (NAT identity) a node's traffic arrives from.
    /// Nodes sharing a home router share an IP; used by the Hue-style
    /// source-IP comparison.
    pub fn set_public_ip(&mut self, node: NodeId, ip: u32) {
        self.nat.insert(node, ip);
    }

    fn public_ip(&self, node: NodeId) -> u32 {
        // Unmapped nodes get a unique synthetic address.
        self.nat.get(&node).copied().unwrap_or(0xffff_0000 | node.0)
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The passive security monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Mutable access to the monitor (drain alerts, tune thresholds).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// Installs an active-response policy. The default policy is disabled;
    /// installing an enabled one makes the service react to fresh monitor
    /// alerts after every handled request.
    pub fn set_defense(&mut self, policy: DefensePolicy) {
        self.config.defense = policy;
    }

    /// The active-response policy in force.
    pub fn defense(&self) -> &DefensePolicy {
        &self.config.defense
    }

    /// Diagnostic access to a device's shadow state.
    pub fn shadow_state(&self, dev_id: &DevId) -> ShadowState {
        self.state.shadow_state(dev_id)
    }

    /// Diagnostic access to the bound user of a device.
    pub fn bound_user(&self, dev_id: &DevId) -> Option<UserId> {
        self.state
            .record(dev_id)
            .and_then(|r| r.shadow.bound_user().cloned())
    }

    /// Diagnostic access to the nodes currently speaking as a device.
    pub fn device_nodes(&self, dev_id: &DevId) -> Vec<NodeId> {
        self.state
            .session(dev_id)
            .map(|s| s.nodes.clone())
            .unwrap_or_default()
    }

    /// Handles one request, returning the reply and pushes. This is the
    /// transport-independent core; the [`Actor`] impl wraps it.
    pub fn handle_message(
        &mut self,
        from: NodeId,
        now: Tick,
        msg: &Message,
        rng: &mut SimRng,
    ) -> Outcome {
        let mut outcome = if self.rate_limited(from, now) {
            Outcome::deny(DenyReason::RateLimited)
        } else {
            self.dispatch(from, now, msg, rng)
        };
        // Active responses run on the request path, right after the
        // handler: whatever alerts this request raised are reacted to
        // before the reply leaves, and any defensive revocation push rides
        // the same outcome.
        if self.config.defense.is_enabled() {
            let pushes = self.apply_defenses(now, rng);
            outcome.pushes.extend(pushes);
        }
        let rendered = outcome.reply.to_string();
        // The audit log and the metrics registry observe the same
        // request/outcome stream: the log keeps bounded per-request
        // records, the registry keeps unbounded per-kind counters. The
        // key formatting is skipped entirely when recording is off.
        if self.telemetry.is_enabled() {
            self.telemetry.with(|r| {
                let kind = msg.kind_str();
                r.counter_add(&format!("cloud_requests_total{{kind=\"{kind}\"}}"), 1);
                if rendered.starts_with("Denied") {
                    r.counter_add(&format!("cloud_denials_total{{kind=\"{kind}\"}}"), 1);
                }
            });
        }
        if self.forensics {
            let dev = msg
                .dev_id()
                .map_or_else(|| "-".to_string(), ToString::to_string);
            self.forensic_marks.push(format!(
                "rpc {} dev={dev} outcome={rendered}",
                msg.primitive_str()
            ));
        }
        self.audit.push(AuditEntry {
            at: now,
            from,
            request: msg.kind_str(),
            outcome: rendered,
        });
        outcome
    }

    /// Drains the forensic marks accumulated since the last drain (empty
    /// unless [`CloudService::set_forensics`] enabled them).
    pub fn take_forensic_marks(&mut self) -> Vec<String> {
        std::mem::take(&mut self.forensic_marks)
    }

    /// Whether this request from `from` exceeds the configured rate limit
    /// (and counts it against the window).
    fn rate_limited(&mut self, from: NodeId, now: Tick) -> bool {
        let Some(limit) = self.config.rate_limit else {
            return false;
        };
        let entry = self.rate.entry(from).or_insert((now, 0));
        if now - entry.0 >= limit.window {
            *entry = (now, 0);
        }
        entry.1 += 1;
        entry.1 > limit.max
    }

    // -- Active defense ------------------------------------------------------

    /// Whether this `Bind` request from `from` exceeds the defense policy's
    /// bind limiter (and counts it against the window).
    fn defense_bind_limited(&mut self, from: NodeId, now: Tick) -> bool {
        let Some(limit) = self.config.defense.bind_limit else {
            return false;
        };
        let entry = self.bind_rate.entry(from).or_insert((now, 0));
        if now - entry.0 >= limit.window {
            *entry = (now, 0);
        }
        entry.1 += 1;
        entry.1 > limit.max
    }

    /// Records one mitigation: the `cloud_mitigations_total{action="…"}`
    /// counter, the `cloud_mitigations` rate series, a `defense` event on
    /// the streaming bus, and (under forensics) a FAULT-style
    /// `defense action=… … trigger=…` mark tied to the causing request.
    fn record_mitigation(&mut self, now: Tick, action: &str, detail: &str, trigger: &str) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .incr(&format!("cloud_mitigations_total{{action=\"{action}\"}}"));
            self.telemetry.rate_event("cloud_mitigations", now.as_u64());
            self.telemetry.publish(
                now.as_u64(),
                "defense",
                &format!("{action} {detail} trigger={trigger}"),
            );
        }
        if self.forensics {
            self.forensic_marks.push(format!(
                "defense action={action} {detail} trigger={trigger}"
            ));
        }
    }

    /// Reacts to the alerts raised since the last reaction, per the
    /// configured [`DefensePolicy`]. Returns pushes (defensive revocation
    /// notices) to append to the current outcome.
    fn apply_defenses(&mut self, now: Tick, rng: &mut SimRng) -> Vec<(NodeId, Response)> {
        let policy = self.config.defense.clone();
        let mut pushes = Vec::new();
        for (_, alert) in self.monitor.drain_defense_alerts() {
            let kind = alert.kind();
            let Some(dev_id) = alert.dev_id().cloned() else {
                continue;
            };
            if policy.rotate_tokens
                && matches!(
                    kind,
                    "binding-replaced" | "session-moved" | "stale-token-replay"
                )
            {
                self.rotate_binding_token(&dev_id, now, rng, kind);
            }
            if policy.quarantine_ticks > 0
                && matches!(
                    kind,
                    "contested-binding"
                        | "remote-only-bind"
                        | "impossible-transition"
                        | "bare-unbind"
                        | "foreign-unbind"
                        | "binding-replaced"
                )
            {
                pushes.extend(self.quarantine_device(&dev_id, now, policy.quarantine_ticks, kind));
            }
        }
        pushes
    }

    /// Rotates a bound device's binding-session token, retiring the old
    /// token so any stolen copy becomes replay-detectable and useless for
    /// session-gated control.
    fn rotate_binding_token(&mut self, dev_id: &DevId, now: Tick, rng: &mut SimRng, trigger: &str) {
        let fresh = SessionToken::from_entropy(rng.entropy128());
        let Some(record) = self.state.record_mut_existing(dev_id) else {
            return;
        };
        if !record.shadow.state().is_bound() {
            return;
        }
        let Some(old) = record.binding_session.replace(fresh) else {
            record.binding_session = None;
            return;
        };
        self.monitor.retire_token(dev_id, old, now);
        self.record_mitigation(now, "rotate-token", &format!("dev={dev_id}"), trigger);
    }

    /// Quarantines a suspect device: non-co-located binds are denied until
    /// the window expires, and a binding not provably co-located with the
    /// device is revoked on the spot. Returns the revocation push, if any.
    fn quarantine_device(
        &mut self,
        dev_id: &DevId,
        now: Tick,
        ticks: u64,
        trigger: &str,
    ) -> Vec<(NodeId, Response)> {
        if self.monitor.is_quarantined(dev_id, now) {
            return Vec::new();
        }
        self.monitor.quarantine(dev_id, now + ticks);
        let dev_ip = self.monitor.device_ip(dev_id);
        let mut pushes = Vec::new();
        let mut detail = format!("dev={dev_id}");
        if let Some(record) = self.state.record_mut_existing(dev_id) {
            let colocated = matches!((record.binding_ip, dev_ip), (Some(b), Some(d)) if b == d);
            if record.shadow.state().is_bound() && (record.remote_bind_flagged || !colocated) {
                let before = record.shadow.state();
                let revoked = record.shadow.on_unbind();
                let after = record.shadow.state();
                let old = record.binding_session.take();
                record.guests.clear();
                self.track_transition(dev_id, before, after, now);
                if let Some(tok) = old {
                    self.monitor.retire_token(dev_id, tok, now);
                }
                if let Some(user) = revoked {
                    detail = format!("dev={dev_id} revoked={user}");
                    if let Some(node) = self.accounts.node_of(&user) {
                        pushes.push((node, Response::BindingRevoked));
                    }
                }
            }
        }
        self.record_mitigation(now, "quarantine", &detail, trigger);
        pushes
    }

    /// Expires stale device sessions (heartbeat timeout) and half-open
    /// shadows left `Online`/`Control` without a live session. Normally
    /// driven by the actor timer; exposed for direct-drive tests.
    pub fn expire(&mut self, now: Tick) -> Vec<DevId> {
        let mut expired = self
            .state
            .expire_sessions(now, self.config.heartbeat_timeout);
        expired.extend(
            self.state
                .expire_half_open(now, self.config.heartbeat_timeout),
        );
        for dev_id in &expired {
            // Expiry always moves an online shadow offline; the post-state
            // tells us whether it was Online→Initial or Control→Bound.
            let after = self.state.shadow_state(dev_id);
            let before = ShadowState::from_flags(true, after.is_bound());
            self.track_transition(dev_id, before, after, now);
        }
        if !expired.is_empty() {
            self.telemetry
                .counter_add("cloud_sessions_expired_total", expired.len() as u64);
        }
        expired
    }

    fn dispatch(&mut self, from: NodeId, now: Tick, msg: &Message, rng: &mut SimRng) -> Outcome {
        match msg {
            Message::Login { user_id, user_pw } => {
                match self.accounts.login(user_id, user_pw, from, rng) {
                    Ok(user_token) => Outcome::reply(Response::LoginOk { user_token }),
                    Err(reason) => Outcome::deny(reason),
                }
            }
            Message::RequestDevToken { user_token } => {
                let user = match self.accounts.verify_token(user_token) {
                    Ok(u) => u.clone(),
                    Err(reason) => return Outcome::deny(reason),
                };
                let dev_token = self.dev_tokens.issue(user, rng);
                Outcome::reply(Response::DevTokenIssued { dev_token })
            }
            Message::RequestBindToken { user_token } => {
                let user = match self.accounts.verify_token(user_token) {
                    Ok(u) => u.clone(),
                    Err(reason) => return Outcome::deny(reason),
                };
                let bind_token = self.bind_tokens.issue(user, rng);
                Outcome::reply(Response::BindTokenIssued { bind_token })
            }
            Message::Status(payload) => self.handle_status(from, now, payload),
            Message::Bind(payload) => self.handle_bind(from, now, payload, rng),
            Message::Unbind(payload) => self.handle_unbind(from, now, payload),
            Message::Control {
                dev_id,
                user_token,
                session,
                action,
            } => self.handle_control(from, now, dev_id, user_token, *session, action),
            Message::Share {
                dev_id,
                user_token,
                grantee,
            } => self.handle_share(dev_id, user_token, grantee, true),
            Message::SetRule { user_token, rule } => self.handle_set_rule(user_token, rule),
            Message::Unshare {
                dev_id,
                user_token,
                grantee,
            } => self.handle_share(dev_id, user_token, grantee, false),
            Message::QueryShadow { dev_id } => {
                let state = self.state.shadow_state(dev_id);
                Outcome::reply(Response::ShadowState {
                    online: state.is_online(),
                    bound: state.is_bound(),
                })
            }
        }
    }

    // -- Status ------------------------------------------------------------

    fn authenticate_status(&self, payload: &StatusPayload) -> Result<Option<UserId>, DenyReason> {
        match self.config.design.auth {
            DeviceAuthScheme::DevToken => match &payload.auth {
                StatusAuth::DevToken(token) => Ok(Some(self.dev_tokens.verify(token)?.clone())),
                _ => Err(DenyReason::DeviceAuthFailed),
            },
            DeviceAuthScheme::DevId => match &payload.auth {
                StatusAuth::DevId(id) if *id == payload.dev_id => Ok(None),
                _ => Err(DenyReason::DeviceAuthFailed),
            },
            DeviceAuthScheme::PublicKey => match &payload.auth {
                StatusAuth::PublicKey { key_id, signature } => {
                    if self
                        .registry
                        .verify_signature(*key_id, &payload.dev_id, *signature)
                    {
                        Ok(None)
                    } else {
                        Err(DenyReason::DeviceAuthFailed)
                    }
                }
                _ => Err(DenyReason::DeviceAuthFailed),
            },
            // The vendor channel we could not inspect: modeled as a
            // per-device factory secret only the real firmware holds.
            DeviceAuthScheme::Opaque => match &payload.auth {
                StatusAuth::DevToken(token)
                    if Some(token.to_u128()) == self.registry.factory_secret(&payload.dev_id) =>
                {
                    Ok(None)
                }
                _ => Err(DenyReason::DeviceAuthFailed),
            },
        }
    }

    fn handle_status(&mut self, from: NodeId, now: Tick, payload: &StatusPayload) -> Outcome {
        self.monitor.observe_target(from, &payload.dev_id, now);
        if !self.registry.knows(&payload.dev_id) {
            return Outcome::deny(DenyReason::UnknownDevice);
        }
        let auth_user = match self.authenticate_status(payload) {
            Ok(u) => u,
            Err(reason) => return Outcome::deny(reason),
        };
        // Heartbeats are only valid within an established device session;
        // a new source must register first (TCP-connection semantics).
        if payload.kind == StatusKind::Heartbeat {
            let member = self
                .state
                .session(&payload.dev_id)
                .map(|s| s.nodes.contains(&from))
                .unwrap_or(false);
            if !member {
                return Outcome::deny(DenyReason::DeviceAuthFailed);
            }
        }

        let mut pushes = Vec::new();
        let design = self.knobs();

        // TP-LINK semantics: a fresh registration implies a factory reset,
        // revoking any existing binding (attack surface A3-4).
        if design.checks.register_resets_binding
            && payload.kind == StatusKind::Register
            && self.state.shadow_state(&payload.dev_id).is_bound()
        {
            // A bound shadow dropping on a Register from an address the
            // device has never lived at is the impossible-transition
            // signature (A3-4); the monitor's IP guard keeps genuine
            // factory resets (same NAT) silent.
            let reset_ip = self.public_ip(from);
            self.monitor
                .observe_binding_drop(&payload.dev_id, reset_ip, now);
            let record = self.state.record_mut(&payload.dev_id);
            let before = record.shadow.state();
            let revoked = record.shadow.on_unbind();
            let after = record.shadow.state();
            let old_session = record.binding_session.take();
            record.guests.clear();
            if let Some(tok) = old_session {
                self.monitor.retire_token(&payload.dev_id, tok, now);
            }
            self.track_transition(&payload.dev_id, before, after, now);
            if let Some(user) = revoked {
                if let Some(node) = self.accounts.node_of(&user) {
                    pushes.push((node, Response::BindingRevoked));
                }
            }
        }

        let _displaced = self.state.touch_session(
            &payload.dev_id,
            from,
            auth_user.clone(),
            payload.session,
            now,
            design.checks.concurrent_device_sessions,
        );

        let from_ip = self.public_ip(from);
        // Replay check runs against the *pre-update* device IP: an attacker
        // forging a device session with a stolen-but-retired token must not
        // first overwrite the co-location evidence that convicts it.
        if let Some(tok) = payload.session {
            self.monitor
                .observe_presented_token(&payload.dev_id, tok, from_ip, now);
        }
        self.monitor
            .observe_device_ip(&payload.dev_id, from_ip, now);
        // Retroactive co-location check: a binding created before the
        // device ever connected is flagged once the device's real IP shows
        // up somewhere else (the pre-emptive A2 occupation signature).
        {
            let record = self.state.record_mut(&payload.dev_id);
            if !record.remote_bind_flagged {
                if let (Some(holder), Some(bind_ip)) =
                    (record.shadow.bound_user().cloned(), record.binding_ip)
                {
                    if bind_ip != from_ip {
                        record.remote_bind_flagged = true;
                        self.monitor.raise(
                            now,
                            SecurityAlert::RemoteOnlyBind {
                                dev_id: payload.dev_id.clone(),
                                holder,
                                from_ip: bind_ip,
                            },
                        );
                    }
                }
            }
        }
        let record = self.state.record_mut(&payload.dev_id);
        let before = record.shadow.state();
        record.shadow.on_status(now.as_u64());
        let after = record.shadow.state();
        self.track_transition(&payload.dev_id, before, after, now);
        let record = self.state.record_mut(&payload.dev_id);
        if payload.button_pressed {
            record.button_at = Some(now);
            record.button_ip = Some(from_ip);
        }
        let bound_user = record.shadow.bound_user().cloned();
        let binding_session = record.binding_session;
        if !payload.telemetry.is_empty() {
            record.last_telemetry = payload.telemetry.clone();
            if let Some(user) = &bound_user {
                if let Some(node) = self.accounts.node_of(user) {
                    pushes.push((
                        node,
                        Response::TelemetryPush {
                            dev_id: payload.dev_id.clone(),
                            telemetry: payload.telemetry.clone(),
                        },
                    ));
                }
            }
        }

        // Automation rules (IFTTT-style): telemetry from a bound device may
        // trigger actions on the owner's other devices — the cascade that
        // makes A1 injection consequential (§V-B).
        if !payload.telemetry.is_empty() {
            if let Some(owner) = &bound_user {
                pushes.extend(self.fire_rules(owner.clone(), &payload.dev_id, &payload.telemetry));
            }
        }

        // Only a session authenticated as the bound user may learn the
        // binding session token from the cloud; everyone else receives it
        // through the local channel.
        let session_echo = match (&auth_user, &bound_user) {
            (Some(a), Some(b)) if a == b => binding_session,
            _ => None,
        };
        Outcome {
            reply: Response::StatusAccepted {
                session: session_echo,
            },
            pushes,
        }
    }

    // -- Bind ----------------------------------------------------------------

    fn handle_bind(
        &mut self,
        from: NodeId,
        now: Tick,
        payload: &BindPayload,
        rng: &mut SimRng,
    ) -> Outcome {
        let design = self.knobs();
        // Resolve the requesting user and target device per the design's
        // accepted bind shape.
        let (dev_id, user) = match (design.bind, payload) {
            (BindScheme::AclApp, BindPayload::AclApp { dev_id, user_token }) => {
                match self.accounts.verify_token(user_token) {
                    Ok(u) => (dev_id.clone(), u.clone()),
                    Err(reason) => return Outcome::deny(reason),
                }
            }
            (
                BindScheme::AclDevice,
                BindPayload::AclDevice {
                    dev_id,
                    user_id,
                    user_pw,
                },
            ) => {
                if let Err(reason) = self.accounts.verify_password(user_id, user_pw) {
                    return Outcome::deny(reason);
                }
                (dev_id.clone(), user_id.clone())
            }
            (BindScheme::Capability, BindPayload::Capability { bind_token }) => {
                // The capability must be submitted by an authenticated
                // device session — that round trip through the device is
                // the ownership proof.
                let Some(dev_id) = self.device_of_node(from) else {
                    return Outcome::deny(DenyReason::DeviceAuthFailed);
                };
                match self.bind_tokens.consume(bind_token) {
                    Ok(u) => (dev_id, u),
                    Err(reason) => return Outcome::deny(reason),
                }
            }
            _ => return Outcome::deny(DenyReason::UnsupportedOperation),
        };

        self.monitor.observe_target(from, &dev_id, now);
        // Defense interventions on the bind path. Both are no-ops under the
        // disabled policy (no limit configured, nothing ever quarantined).
        // The limiter runs before the existence check so ID-space sweeps
        // (which mostly hit unknown IDs) are priced out too.
        if self.defense_bind_limited(from, now) {
            self.record_mitigation(now, "rate-limit-bind", &format!("from={from}"), "bind-rate");
            return Outcome::deny(DenyReason::RateLimited);
        }
        if !self.registry.knows(&dev_id) {
            return Outcome::deny(DenyReason::UnknownDevice);
        }
        if self.monitor.is_quarantined(&dev_id, now)
            && self.monitor.device_ip(&dev_id) != Some(self.public_ip(from))
        {
            // Only a requester co-located with the device may bind a
            // quarantined DevId; everyone else waits out the window.
            return Outcome::deny(DenyReason::RateLimited);
        }
        if design.checks.bind_requires_online_device
            && !self.state.shadow_state(&dev_id).is_online()
        {
            return Outcome::deny(DenyReason::DeviceOffline);
        }
        if design.checks.bind_requires_local_proof {
            let requester_ip = self.public_ip(from);
            let record = self.state.record_mut(&dev_id);
            let fresh_button = record
                .button_at
                .is_some_and(|at| now - at <= self.config.button_window);
            let same_ip = record.button_ip == Some(requester_ip);
            if !(fresh_button && same_ip) {
                return Outcome::deny(DenyReason::OwnershipProofFailed);
            }
        }
        let shadow_bound = self.state.shadow_state(&dev_id).is_bound();
        if design.checks.reject_bind_when_bound && shadow_bound {
            let holder = self
                .state
                .record(&dev_id)
                .and_then(|r| r.shadow.bound_user())
                .cloned();
            if holder.as_ref() != Some(&user) {
                if let Some(holder) = holder {
                    self.monitor
                        .observe_bind_denial(&dev_id, &holder, &user, now);
                }
                return Outcome::deny(DenyReason::AlreadyBound);
            }
        }

        // Accept: create (or replace) the binding.
        let session = if design.checks.post_binding_session {
            Some(SessionToken::from_entropy(rng.entropy128()))
        } else {
            None
        };
        let bind_ip = self.public_ip(from);
        let record = self.state.record_mut(&dev_id);
        let before = record.shadow.state();
        let displaced = record.shadow.on_bind(user.clone());
        let after = record.shadow.state();
        self.track_transition(&dev_id, before, after, now);
        if displaced.is_some() {
            self.telemetry.incr("cloud_bindings_replaced_total");
        }
        if self.forensics {
            let prev = displaced
                .as_ref()
                .map_or_else(|| "none".to_string(), ToString::to_string);
            self.forensic_marks
                .push(format!("bind dev={dev_id} user={user} displaced={prev}"));
        }
        let record = self.state.record_mut(&dev_id);
        let old_session = record.binding_session;
        record.binding_session = session;
        record.binding_ip = Some(bind_ip);
        record.remote_bind_flagged = false;
        if displaced.is_some() {
            record.guests.clear();
        }
        // The superseded binding token (if any) is retired: anyone still
        // presenting it from an address other than the device's own is a
        // replay.
        if let Some(old) = old_session {
            if Some(old) != session {
                self.monitor.retire_token(&dev_id, old, now);
            }
        }
        if let Some(prev) = &displaced {
            self.monitor.raise(
                now,
                SecurityAlert::BindingReplaced {
                    dev_id: dev_id.clone(),
                    victim: prev.clone(),
                    new_holder: user.clone(),
                },
            );
        }
        // A bind whose source IP has never been co-located with the device
        // is the pre-emptive-occupation signature. If the device has not
        // connected yet, the check re-runs when it does (handle_status).
        if let Some(dev_ip) = self.monitor.device_ip(&dev_id) {
            if dev_ip != bind_ip {
                self.monitor.raise(
                    now,
                    SecurityAlert::RemoteOnlyBind {
                        dev_id: dev_id.clone(),
                        holder: user.clone(),
                        from_ip: bind_ip,
                    },
                );
                self.state.record_mut(&dev_id).remote_bind_flagged = true;
            }
        }
        let mut pushes = Vec::new();
        if let Some(prev) = displaced {
            if let Some(node) = self.accounts.node_of(&prev) {
                pushes.push((node, Response::BindingRevoked));
            }
        }
        // In the capability flow the bind arrives from the *device*; the
        // user learns the outcome (and the session token) through a push.
        if design.bind == BindScheme::Capability {
            let binder = self
                .state
                .record(&dev_id)
                .and_then(|r| r.shadow.bound_user().cloned());
            if let Some(node) = binder.as_ref().and_then(|u| self.accounts.node_of(u)) {
                pushes.push((node, Response::Bound { session }));
            }
        }
        Outcome {
            reply: Response::Bound { session },
            pushes,
        }
    }

    fn device_of_node(&self, node: NodeId) -> Option<DevId> {
        // O(1) through the session reverse index; used to scan every shadow
        // record on each capability bind.
        self.state.device_of_node(node).cloned()
    }

    // -- Unbind ---------------------------------------------------------------

    fn handle_unbind(&mut self, from: NodeId, now: Tick, payload: &UnbindPayload) -> Outcome {
        let design = self.knobs();
        let dev_id = payload.dev_id().clone();
        self.monitor.observe_target(from, &dev_id, now);
        if !self.registry.knows(&dev_id) {
            return Outcome::deny(DenyReason::UnknownDevice);
        }
        let mut requester: Option<UserId> = None;
        match payload {
            UnbindPayload::DevIdUserToken { user_token, .. } => {
                if !design.unbind.dev_id_user_token {
                    return Outcome::deny(DenyReason::UnsupportedOperation);
                }
                let user = match self.accounts.verify_token(user_token) {
                    Ok(u) => u.clone(),
                    Err(reason) => return Outcome::deny(reason),
                };
                let bound = self
                    .state
                    .record(&dev_id)
                    .and_then(|r| r.shadow.bound_user());
                let Some(bound) = bound else {
                    return Outcome::deny(DenyReason::NotBound);
                };
                if design.checks.verify_unbind_is_bound_user && *bound != user {
                    return Outcome::deny(DenyReason::NotBoundUser);
                }
                requester = Some(user);
            }
            UnbindPayload::DevIdOnly { .. } => {
                if !design.unbind.dev_id_only {
                    return Outcome::deny(DenyReason::UnsupportedOperation);
                }
                if !self.state.shadow_state(&dev_id).is_bound() {
                    return Outcome::deny(DenyReason::NotBound);
                }
            }
        }
        let from_ip = self.public_ip(from);
        let record = self.state.record_mut(&dev_id);
        let before = record.shadow.state();
        let revoked = record.shadow.on_unbind();
        let after = record.shadow.state();
        let old_session = record.binding_session.take();
        record.guests.clear();
        if let Some(tok) = old_session {
            self.monitor.retire_token(&dev_id, tok, now);
        }
        self.track_transition(&dev_id, before, after, now);
        if self.forensics {
            let who = revoked
                .as_ref()
                .map_or_else(|| "none".to_string(), ToString::to_string);
            self.forensic_marks
                .push(format!("unbind dev={dev_id} revoked={who}"));
        }
        match (payload, &revoked, &requester) {
            // Legitimate resets come from the device's own NAT; a bare
            // unbind from anywhere else is the A3-1 signature.
            (UnbindPayload::DevIdOnly { .. }, _, _)
                if self.monitor.device_ip(&dev_id) != Some(from_ip) =>
            {
                self.monitor.raise(
                    now,
                    SecurityAlert::BareUnbind {
                        dev_id: dev_id.clone(),
                        from_ip,
                    },
                );
            }
            (UnbindPayload::DevIdUserToken { .. }, Some(victim), Some(req)) if victim != req => {
                self.monitor.raise(
                    now,
                    SecurityAlert::ForeignUnbind {
                        dev_id: dev_id.clone(),
                        victim: victim.clone(),
                        requester: req.clone(),
                    },
                );
            }
            _ => {}
        }
        let mut pushes = Vec::new();
        if let Some(user) = revoked {
            if let Some(node) = self.accounts.node_of(&user) {
                if node != from {
                    pushes.push((node, Response::BindingRevoked));
                }
            }
        }
        Outcome {
            reply: Response::Unbound,
            pushes,
        }
    }

    // -- Control ---------------------------------------------------------------

    fn handle_control(
        &mut self,
        from: NodeId,
        now: Tick,
        dev_id: &DevId,
        user_token: &UserToken,
        session: Option<SessionToken>,
        action: &ControlAction,
    ) -> Outcome {
        let design = self.knobs();
        self.monitor.observe_target(from, dev_id, now);
        // A retired binding token presented on the control path from an
        // address that is not the device's own is the stale-token-replay
        // signature (the paper's stolen-session A1 follow-up).
        if let Some(tok) = session {
            let from_ip = self.public_ip(from);
            self.monitor
                .observe_presented_token(dev_id, tok, from_ip, now);
        }
        let user = match self.accounts.verify_token(user_token) {
            Ok(u) => u.clone(),
            Err(reason) => return Outcome::deny(reason),
        };
        let Some(record) = self.state.record(dev_id) else {
            return Outcome::deny(DenyReason::UnknownDevice);
        };
        let Some(bound) = record.shadow.bound_user() else {
            return Outcome::deny(DenyReason::NotBound);
        };
        let is_owner = *bound == user;
        if !is_owner && !record.guests.contains(&user) {
            return Outcome::deny(DenyReason::NotBoundUser);
        }
        if !record.shadow.state().is_online() {
            return Outcome::deny(DenyReason::DeviceOffline);
        }
        let binding_session = record.binding_session;
        if design.checks.post_binding_session {
            // Both sides must hold the binding's session token: the user
            // presents it in the request, the device must have presented it
            // in a status message after receiving it over the local
            // channel. A hijacker can satisfy neither for the real device.
            let device_session = self.state.session(dev_id).and_then(|s| s.presented_session);
            if session != binding_session || device_session != binding_session {
                return Outcome::deny(DenyReason::BadSession);
            }
        }
        if design.auth == DeviceAuthScheme::DevToken {
            // The device's session is keyed to the user whose DevToken it
            // authenticated with; a binding by anyone else gets no relay.
            // Guests are covered by the owner's grant, so the comparison is
            // against the *owner*.
            let owner = self
                .state
                .record(dev_id)
                .and_then(|r| r.shadow.bound_user().cloned());
            let session_user = self.state.session(dev_id).and_then(|s| s.auth_user.clone());
            if session_user != owner {
                return Outcome::deny(DenyReason::BadSession);
            }
        }

        let device_nodes = self.device_nodes(dev_id);
        let mut pushes = Vec::new();
        let reply = match action {
            ControlAction::TurnOn | ControlAction::TurnOff | ControlAction::SetBrightness(_) => {
                for node in &device_nodes {
                    pushes.push((
                        *node,
                        Response::ControlPush {
                            action: action.clone(),
                            session: binding_session,
                        },
                    ));
                }
                Response::ControlOk {
                    schedule: Vec::new(),
                    telemetry: Vec::new(),
                }
            }
            ControlAction::SetSchedule(entry) => {
                let record = self.state.record_mut(dev_id);
                record.schedule.push(entry.clone());
                // The schedule is pushed to the device so it can run
                // offline — the channel a forged device session exfiltrates
                // (A1 stealing).
                for node in &device_nodes {
                    pushes.push((
                        *node,
                        Response::ControlPush {
                            action: action.clone(),
                            session: binding_session,
                        },
                    ));
                }
                Response::ControlOk {
                    schedule: Vec::new(),
                    telemetry: Vec::new(),
                }
            }
            ControlAction::QuerySchedule => Response::ControlOk {
                schedule: record.schedule.clone(),
                telemetry: Vec::new(),
            },
            ControlAction::QueryTelemetry => Response::ControlOk {
                schedule: Vec::new(),
                telemetry: record.last_telemetry.clone(),
            },
        };
        Outcome { reply, pushes }
    }
}

impl CloudService {
    /// Grants (`grant = true`) or revokes a device share. Only the bound
    /// owner may manage shares; grantees must be real accounts.
    fn handle_share(
        &mut self,
        dev_id: &DevId,
        user_token: &UserToken,
        grantee: &UserId,
        grant: bool,
    ) -> Outcome {
        let user = match self.accounts.verify_token(user_token) {
            Ok(u) => u.clone(),
            Err(reason) => return Outcome::deny(reason),
        };
        if !self.registry.knows(dev_id) {
            return Outcome::deny(DenyReason::UnknownDevice);
        }
        let Some(record) = self.state.record(dev_id) else {
            return Outcome::deny(DenyReason::NotBound);
        };
        let Some(bound) = record.shadow.bound_user() else {
            return Outcome::deny(DenyReason::NotBound);
        };
        if *bound != user {
            return Outcome::deny(DenyReason::NotBoundUser);
        }
        if grant && !self.accounts.exists(grantee) {
            return Outcome::deny(DenyReason::UnknownUser);
        }
        if grant && *grantee == user {
            // Owner already has full access; treat as a no-op grant.
            let Some(record) = self.state.record(dev_id) else {
                return Outcome::deny(DenyReason::NotBound);
            };
            return Outcome::reply(Response::ShareOk {
                session: record.binding_session,
                guests: record.guests.len() as u16,
            });
        }
        let record = self.state.record_mut(dev_id);
        if grant {
            if !record.guests.contains(grantee) {
                record.guests.push(grantee.clone());
            }
        } else {
            record.guests.retain(|g| g != grantee);
        }
        Outcome::reply(Response::ShareOk {
            session: record.binding_session,
            guests: record.guests.len() as u16,
        })
    }

    /// Diagnostic access to a device's guest list.
    pub fn guests(&self, dev_id: &DevId) -> Vec<UserId> {
        self.state
            .record(dev_id)
            .map(|r| r.guests.clone())
            .unwrap_or_default()
    }

    /// Maximum rules stored per account.
    pub const MAX_RULES_PER_USER: usize = 64;

    /// Stores an automation rule after checking the requester controls both
    /// endpoints (owner or guest).
    fn handle_set_rule(&mut self, user_token: &UserToken, rule: &AutomationRule) -> Outcome {
        let user = match self.accounts.verify_token(user_token) {
            Ok(u) => u.clone(),
            Err(reason) => return Outcome::deny(reason),
        };
        for dev in [&rule.trigger_dev, &rule.action_dev] {
            if !self.registry.knows(dev) {
                return Outcome::deny(DenyReason::UnknownDevice);
            }
            let authorized = self
                .state
                .record(dev)
                .is_some_and(|r| r.shadow.bound_user() == Some(&user) || r.guests.contains(&user));
            if !authorized {
                return Outcome::deny(DenyReason::NotBoundUser);
            }
        }
        let rules = self.rules.entry(user).or_default();
        if rules.len() >= Self::MAX_RULES_PER_USER {
            return Outcome::deny(DenyReason::RateLimited);
        }
        rules.push(rule.clone());
        Outcome::reply(Response::RuleSet {
            count: rules.len() as u16,
        })
    }

    /// Evaluates the owner's rules against fresh telemetry from
    /// `trigger_dev`; returns the control pushes for fired actions.
    fn fire_rules(
        &mut self,
        owner: UserId,
        trigger_dev: &DevId,
        telemetry: &[rb_wire::telemetry::TelemetryFrame],
    ) -> Vec<(NodeId, Response)> {
        let Some(rules) = self.rules.get(&owner) else {
            return Vec::new();
        };
        let fired: Vec<AutomationRule> = rules
            .iter()
            .filter(|r| {
                r.trigger_dev == *trigger_dev && telemetry.iter().any(|f| r.trigger.matches(f))
            })
            .cloned()
            .collect();
        let mut pushes = Vec::new();
        for rule in fired {
            // Re-check authorization at fire time: the action device must
            // still belong to the rule owner.
            let still_owned = self
                .state
                .record(&rule.action_dev)
                .is_some_and(|r| r.shadow.bound_user() == Some(&owner));
            if !still_owned {
                continue;
            }
            let session = self
                .state
                .record(&rule.action_dev)
                .and_then(|r| r.binding_session);
            for node in self.device_nodes(&rule.action_dev) {
                pushes.push((
                    node,
                    Response::ControlPush {
                        action: rule.action.clone(),
                        session,
                    },
                ));
            }
        }
        pushes
    }

    /// Diagnostic access to a user's rule count.
    pub fn rule_count(&self, user: &UserId) -> usize {
        self.rules.get(user).map(Vec::len).unwrap_or(0)
    }
}

impl Actor for CloudService {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.config.heartbeat_timeout / 2, TIMER_EXPIRE);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        let payload = bytes::Bytes::copy_from_slice(payload);
        self.on_packet_bytes(ctx, from, &payload);
    }

    fn on_packet_bytes(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &bytes::Bytes) {
        // One tally per wire-level decode attempt, garbage included: the
        // codec leg of the request round-trip.
        self.profiler.tally("cloud.decode", 0);
        let Ok(Envelope::Request { corr, msg }) = Envelope::decode_with(self.codec, payload) else {
            // Responses and garbage are ignored; a real cloud would log.
            return;
        };
        let now = ctx.now();
        // Split the borrow: effects buffer lives in ctx, rng is shared.
        let outcome = {
            let rng = ctx.rng();
            // Fork keeps determinism while avoiding aliasing ctx.
            let mut local = rng.fork();
            self.profiler.tally("cloud.dispatch", 0);
            self.handle_message(from, now, &msg, &mut local)
        };
        if self.forensics {
            for (node, rsp) in &outcome.pushes {
                self.forensic_marks
                    .push(format!("push {} to={node}", rsp.kind_str()));
            }
            // Marks are drained before the sends so a forensic reader sees
            // the cloud's statements about a request ahead of the replies
            // they explain; all carry the request packet's trace context.
            for text in self.take_forensic_marks() {
                ctx.mark(text);
            }
        }
        self.profiler.tally("cloud.encode", 0);
        ctx.send(
            Dest::Unicast(from),
            Envelope::Response {
                corr,
                rsp: outcome.reply,
            }
            .encode_with(self.codec)
            .to_vec(),
        );
        for (node, rsp) in outcome.pushes {
            self.profiler.tally("cloud.encode", 0);
            ctx.send(
                Dest::Unicast(node),
                Envelope::push(rsp).encode_with(self.codec).to_vec(),
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64) {
        if key == TIMER_EXPIRE {
            let now = ctx.now();
            self.expire(now);
            // Expiry marks root fresh traces: nothing on the wire caused
            // them, the passage of time did.
            for text in self.take_forensic_marks() {
                ctx.mark(text);
            }
            ctx.set_timer(self.config.heartbeat_timeout / 2, TIMER_EXPIRE);
        }
    }
}

impl std::fmt::Debug for CloudService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudService")
            .field("vendor", &self.config.design.vendor)
            .field("devices", &self.registry.len())
            .field("audit_entries", &self.audit.len())
            .finish()
    }
}
