//! # rb-cloud
//!
//! A multi-tenant simulated IoT cloud whose message handlers are
//! parameterized by a [`rb_core::design::VendorDesign`]. The same handler
//! code, under ten different policies, reproduces the ten vendor backends
//! of the paper's Table III — every accept/deny decision that the attacks
//! of Section V probe corresponds to one explicit branch here.
//!
//! Components:
//!
//! * [`accounts`] — user accounts, password login, `UserToken` issuance;
//! * [`registry`] — the manufacturer's device registry: known device IDs,
//!   per-device factory secrets (for vendors whose channel we could not
//!   inspect — the paper's "O"), and public keys for the AWS-style
//!   reference design;
//! * [`issued`] — issued `DevToken`s and `BindToken` capabilities;
//! * [`state`] — device sessions and shadow records (the live
//!   [`rb_core::shadow::Shadow`] plus schedules, telemetry, and binding
//!   session tokens);
//! * [`audit`] — an append-only audit log consumed by experiments;
//! * [`sharded`] — prefix-sharded hash maps backing the registry and the
//!   token ledgers at fleet scale;
//! * [`service`] — [`service::CloudService`]: the message handlers and the
//!   [`rb_netsim::Actor`] implementation.
//!
//! The service can be driven two ways: through the network simulator (the
//! scenario crate does this), or directly via
//! [`service::CloudService::handle_message`] for protocol-level unit tests.

pub mod accounts;
pub mod audit;
pub mod issued;
pub mod monitor;
pub mod registry;
pub mod service;
pub mod sharded;
pub mod state;

pub use monitor::{DefensePolicy, Monitor, SecurityAlert};
pub use service::{CloudConfig, CloudService, Outcome, RateLimit};
