//! Append-only audit log of cloud decisions.

use rb_netsim::{NodeId, Tick};
use std::fmt;

/// One audited decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// When.
    pub at: Tick,
    /// Requesting node.
    pub from: NodeId,
    /// Request kind (`Message::kind_str`).
    pub request: &'static str,
    /// Response kind (`Response::kind_str`), with the deny reason spelled
    /// out for denials.
    pub outcome: String,
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} -> {}",
            self.at, self.from, self.request, self.outcome
        )
    }
}

/// Bounded audit log (drops oldest entries beyond the cap).
#[derive(Debug)]
pub struct AuditLog {
    entries: std::collections::VecDeque<AuditEntry>,
    cap: usize,
}

impl AuditLog {
    /// A log bounded at `cap` entries.
    pub fn new(cap: usize) -> Self {
        AuditLog {
            entries: std::collections::VecDeque::new(),
            cap,
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&mut self, entry: AuditEntry) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of denials among retained entries.
    pub fn denials(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.outcome.starts_with("Denied"))
            .count()
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, outcome: &str) -> AuditEntry {
        AuditEntry {
            at: Tick(at),
            from: NodeId(1),
            request: "Bind",
            outcome: outcome.to_owned(),
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut log = AuditLog::new(10);
        assert!(log.is_empty());
        log.push(entry(1, "Bound"));
        log.push(entry(2, "Denied(device already bound)"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.denials(), 1);
        let first = log.entries().next().unwrap();
        assert_eq!(first.at, Tick(1));
        assert_eq!(first.to_string(), "t1 n1 Bind -> Bound");
    }

    #[test]
    fn cap_evicts_oldest() {
        let mut log = AuditLog::new(3);
        for i in 0..5 {
            log.push(entry(i, "Bound"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.entries().next().unwrap().at, Tick(2));
    }
}
