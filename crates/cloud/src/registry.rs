//! The manufacturer's device registry.
//!
//! IDs are provisioned at manufacture time; the registry also holds the
//! per-device *factory secret* used to model vendor channels the paper's
//! authors could not inspect ("O" cells), and the public keys of the
//! AWS-style reference design.

use std::collections::HashMap;

use rb_wire::ids::DevId;

use crate::sharded::ShardedMap;

/// Simulated public-key signature over a device ID; see
/// [`rb_wire::crypto::sign_dev_id`].
pub fn sign(secret: u128, dev_id: &DevId) -> u128 {
    rb_wire::crypto::sign_dev_id(secret, dev_id)
}

/// Per-device manufacturing record.
#[derive(Debug, Clone)]
pub struct DeviceRecord {
    /// The 128-bit factory secret burned in at manufacture (models the
    /// opaque vendor channel).
    pub factory_secret: u128,
    /// Key id + signing secret, when the design provisions a key pair.
    pub key: Option<(u64, u128)>,
}

/// The registry of devices the vendor has manufactured.
///
/// Device records live in a [`ShardedMap`] keyed by device-id prefix, so a
/// vendor-scale population (the fleet engine simulates thousands of homes
/// per cell) spreads across 16 independent tables instead of rehashing one
/// monolith. Key-id lookups stay a flat map — key ids are dense `u64`s.
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    devices: ShardedMap<DevId, DeviceRecord>,
    keys: HashMap<u64, u128>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Registers a manufactured device.
    pub fn add(&mut self, dev_id: DevId, record: DeviceRecord) {
        if let Some((key_id, secret)) = record.key {
            self.keys.insert(key_id, secret);
        }
        self.devices.insert(dev_id, record);
    }

    /// Whether the ID belongs to a manufactured device.
    pub fn knows(&self, dev_id: &DevId) -> bool {
        self.devices.contains_key(dev_id)
    }

    /// The factory secret of a device.
    pub fn factory_secret(&self, dev_id: &DevId) -> Option<u128> {
        self.devices.get(dev_id).map(|r| r.factory_secret)
    }

    /// Verifies a public-key signature for `key_id` over `dev_id`.
    pub fn verify_signature(&self, key_id: u64, dev_id: &DevId, signature: u128) -> bool {
        match self.keys.get(&key_id) {
            Some(secret) => sign(*secret, dev_id) == signature,
            None => false,
        }
    }

    /// Number of registered devices (summed across shards).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates over registered device IDs.
    pub fn iter_ids(&self) -> impl Iterator<Item = &DevId> {
        self.devices.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_wire::ids::MacAddr;

    fn id(n: u8) -> DevId {
        DevId::Mac(MacAddr::new([n, 0, 0, 0, 0, 1]))
    }

    #[test]
    fn add_and_lookup() {
        let mut reg = DeviceRegistry::new();
        assert!(reg.is_empty());
        reg.add(
            id(1),
            DeviceRecord {
                factory_secret: 42,
                key: None,
            },
        );
        assert!(reg.knows(&id(1)));
        assert!(!reg.knows(&id(2)));
        assert_eq!(reg.factory_secret(&id(1)), Some(42));
        assert_eq!(reg.factory_secret(&id(2)), None);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.iter_ids().count(), 1);
    }

    #[test]
    fn signature_verification() {
        let mut reg = DeviceRegistry::new();
        let secret = 0xdead_beef_cafe_babe_0123_4567_89ab_cdef;
        reg.add(
            id(1),
            DeviceRecord {
                factory_secret: 1,
                key: Some((7, secret)),
            },
        );
        let sig = sign(secret, &id(1));
        assert!(reg.verify_signature(7, &id(1), sig));
        // Wrong key id, wrong signature, wrong device all fail.
        assert!(!reg.verify_signature(8, &id(1), sig));
        assert!(!reg.verify_signature(7, &id(1), sig ^ 1));
        assert!(!reg.verify_signature(7, &id(2), sig));
    }

    #[test]
    fn signatures_differ_across_devices_and_keys() {
        assert_ne!(sign(1, &id(1)), sign(1, &id(2)));
        assert_ne!(sign(1, &id(1)), sign(2, &id(1)));
    }
}
