//! # rb-telemetry — deterministic observability for the binding stack
//!
//! A zero-`std::time` metrics and tracing layer: every timestamp is a raw
//! simulation tick (`u64`) supplied by the caller, every export walks
//! `BTreeMap`s in key order, and nothing here draws randomness — so two
//! runs of the same `(vendor, seed, chaos profile)` produce *byte-identical*
//! JSON and Prometheus exports. That property is what lets CI diff a
//! pinned golden export and what makes the benches trustworthy.
//!
//! The crate is dependency-free on purpose: `rb-netsim` (the lowest layer
//! of the runtime stack) links against it, so it cannot use `rb-netsim`'s
//! `Tick` newtype without a cycle. Callers pass `Tick::as_u64()`.
//!
//! ## Pieces
//!
//! * [`Registry`] — counters, gauges, fixed-bucket [`Histogram`]s, spans,
//!   and the binding-lifecycle tracker.
//! * [`Telemetry`] — a cheap `Clone + Send + Sync` handle
//!   (`Arc<Mutex<Registry>>`) threaded through the sim, the cloud, both
//!   agents, and the attack executors.
//! * [`span!`] — ergonomic span opening:
//!   `span!(tele, now, "bind", device = id, user = uid)`.
//! * Exporters — [`Registry::to_json`], [`Registry::to_prometheus`],
//!   [`Registry::render_human`].
//!
//! ## Metric naming
//!
//! Prometheus-style: `snake_case` family names, `_total` suffix on
//! counters, `_ticks` on histograms of simulated time, and label sets
//! baked into the key string (`cloud_alerts_total{kind="bare-unbind"}`).
//! Keys sort lexicographically, which fixes the export order.

mod histogram;
mod registry;

pub use histogram::{Histogram, TICK_BUCKETS};
pub use registry::{Registry, SpanId, SpanRecord, StreamEvent};

use std::sync::{Arc, Mutex, PoisonError};

/// Escaping helpers for the hand-rolled JSON writers (the workspace `serde`
/// is a no-op stub, so every exporter writes strings by hand).
pub mod json {
    /// Escapes `s` for inclusion inside a JSON string literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Reverses [`escape`]. Returns `None` on a malformed escape.
    pub fn unescape(s: &str) -> Option<String> {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            }
        }
        Some(out)
    }
}

/// Shared handle onto a [`Registry`].
///
/// Cloning is cheap (one `Arc`); the handle is `Send + Sync` so bench
/// binaries can move worlds across scoped threads. Locking recovers from
/// poison (a panicking test thread must not wedge every other holder).
///
/// A handle built with [`Telemetry::disabled`] records nothing: every
/// write helper returns before touching the lock, so instrumented hot
/// paths (the sim event loop, the cloud dispatcher) cost one branch per
/// event instead of a mutex round-trip plus a map lookup. Fleet sweeps
/// that only need the deterministic cell census run with recording off.
#[derive(Clone, Debug)]
pub struct Telemetry {
    inner: Arc<Mutex<Registry>>,
    enabled: bool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            inner: Arc::default(),
            enabled: true,
        }
    }
}

impl Telemetry {
    /// A fresh handle over an empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// A handle that drops every write: recording becomes a single branch,
    /// and exports stay empty. Clones inherit the off switch, so threading
    /// a disabled handle through a world silences every layer at once.
    pub fn disabled() -> Self {
        Telemetry {
            inner: Arc::default(),
            enabled: false,
        }
    }

    /// Whether this handle records at all. Hot paths that format metric
    /// keys before recording should check this first and skip the work.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Runs `f` with the registry locked. Runs even on a disabled handle
    /// (reads and snapshots must always work); recording call sites should
    /// guard with [`Telemetry::is_enabled`] instead.
    pub fn with<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// Increments counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.enabled {
            self.with(|r| r.counter_add(name, delta));
        }
    }

    /// Reads counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|r| r.counter(name))
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        if self.enabled {
            self.with(|r| r.gauge_set(name, value));
        }
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if self.enabled {
            self.with(|r| r.observe(name, value));
        }
    }

    /// Opens a span; see [`Registry::start_span`]. On a disabled handle
    /// no span is stored and the returned id is dead.
    pub fn start_span(&self, name: &str, attrs: &[(&str, String)], now: u64) -> SpanId {
        if self.enabled {
            self.with(|r| r.start_span(name, attrs, now))
        } else {
            SpanId::default()
        }
    }

    /// Opens a span with an explicit parent (`None` = root), bypassing
    /// stack inference; see [`Registry::start_span_with_parent`]. On a
    /// disabled handle no span is stored and the returned id is dead.
    pub fn start_span_with_parent(
        &self,
        name: &str,
        attrs: &[(&str, String)],
        now: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        if self.enabled {
            self.with(|r| r.start_span_with_parent(name, attrs, now, parent))
        } else {
            SpanId::default()
        }
    }

    /// Closes a span; see [`Registry::end_span`].
    pub fn end_span(&self, id: SpanId, now: u64) {
        if self.enabled {
            self.with(|r| r.end_span(id, now));
        }
    }

    /// Records one occurrence of tick-rate series `name` at tick `at`;
    /// see [`Registry::rate_event`].
    pub fn rate_event(&self, name: &str, at: u64) {
        if self.enabled {
            self.with(|r| r.rate_event(name, at));
        }
    }

    /// The sliding-window rate of series `name` over the `window_ticks`
    /// window ending at the series' latest event; see [`Registry::rate`].
    /// Reads work on disabled handles too (they just see zero).
    pub fn rate(&self, name: &str, window_ticks: u64) -> u64 {
        self.with(|r| r.rate(name, window_ticks))
    }

    /// The sliding-window rate of series `name` as of an explicit tick;
    /// see [`Registry::rate_at`].
    pub fn rate_at(&self, name: &str, window_ticks: u64, now: u64) -> u64 {
        self.with(|r| r.rate_at(name, window_ticks, now))
    }

    /// Publishes an event onto the streaming bus; see [`Registry::publish`].
    pub fn publish(&self, at: u64, topic: &str, body: &str) {
        if self.enabled {
            self.with(|r| r.publish(at, topic, body));
        }
    }

    /// Copies out the events published after `cursor` plus the cursor to
    /// resume from; see [`Registry::events_since`]. This is the polling
    /// half of the subscriber API: online consumers (the cloud monitor
    /// CLI, live dashboards) call it between simulation slices.
    pub fn events_since(&self, cursor: usize) -> (usize, Vec<StreamEvent>) {
        self.with(|r| {
            let (next, events) = r.events_since(cursor);
            (next, events.to_vec())
        })
    }

    /// A deep copy of the registry at this instant — the unit benches and
    /// experiments diff and aggregate.
    pub fn snapshot(&self) -> Registry {
        self.with(|r| r.clone())
    }

    /// Canonical JSON export of the current state.
    pub fn to_json(&self) -> String {
        self.with(|r| r.to_json())
    }

    /// Prometheus text export of the current state.
    pub fn to_prometheus(&self) -> String {
        self.with(|r| r.to_prometheus())
    }

    /// Human-readable table of the current state.
    pub fn render_human(&self) -> String {
        self.with(|r| r.render_human())
    }
}

/// Opens a span on a [`Telemetry`] handle with key/value attributes:
///
/// ```
/// use rb_telemetry::{span, Telemetry};
/// let tele = Telemetry::new();
/// let id = span!(tele, 10, "bind", device = "mac:02aa", user = "alice");
/// tele.end_span(id, 25);
/// assert_eq!(tele.snapshot().spans().len(), 1);
/// ```
///
/// Attribute values go through `ToString`, names through `stringify!`.
#[macro_export]
macro_rules! span {
    ($tele:expr, $now:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $tele.start_span(
            $name,
            &[$((stringify!($key), ::std::string::ToString::to_string(&$value))),*],
            $now,
        )
    };
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn counters_accumulate_and_export_sorted() {
        let t = Telemetry::new();
        t.incr("b_total");
        t.counter_add("a_total", 4);
        t.incr("b_total");
        assert_eq!(t.counter("a_total"), 4);
        assert_eq!(t.counter("b_total"), 2);
        assert_eq!(t.counter("missing"), 0);
        let json = t.to_json();
        let a = json.find("a_total").unwrap();
        let b = json.find("b_total").unwrap();
        assert!(a < b, "counters must export in key order");
    }

    #[test]
    fn span_macro_records_attrs_and_duration() {
        let t = Telemetry::new();
        let id = span!(t, 100, "bind", device = "d1", user = "u1");
        t.end_span(id, 140);
        let snap = t.snapshot();
        let span = &snap.spans()[0];
        assert_eq!(span.name, "bind");
        assert_eq!(span.start, 100);
        assert_eq!(span.end, Some(140));
        assert_eq!(
            span.attrs,
            vec![
                ("device".to_string(), "d1".to_string()),
                ("user".to_string(), "u1".to_string())
            ]
        );
        // Closing a span feeds its duration histogram.
        let hist = snap.histogram("span_ticks{name=\"bind\"}").unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 40);
    }

    #[test]
    fn nested_spans_record_parents() {
        let t = Telemetry::new();
        let outer = span!(t, 0, "setup");
        let inner = span!(t, 5, "bind");
        t.end_span(inner, 9);
        t.end_span(outer, 20);
        let snap = t.snapshot();
        assert_eq!(snap.spans()[0].parent, None);
        assert_eq!(snap.spans()[1].parent, Some(snap.spans()[0].id));
    }

    #[test]
    fn explicit_parents_override_stack_inference() {
        let t = Telemetry::new();
        // Two interleaved "homes": stack inference would nest the second
        // setup under the first; explicit parents keep both roots.
        let home0 = t.start_span_with_parent("setup", &[], 0, None);
        let home1 = t.start_span_with_parent("setup", &[], 2, None);
        let bind = t.start_span_with_parent("bind", &[], 5, Some(home1));
        t.end_span(bind, 7);
        t.end_span(home1, 8);
        t.end_span(home0, 9);
        let snap = t.snapshot();
        assert_eq!(snap.spans()[0].parent, None);
        assert_eq!(snap.spans()[1].parent, None);
        assert_eq!(snap.spans()[2].parent, Some(home1.0));
        // Explicit-parent spans feed the same duration histograms.
        let hist = snap.histogram("span_ticks{name=\"setup\"}").unwrap();
        assert_eq!((hist.count(), hist.sum()), (2, 6 + 9));
        // …and the stack-inference path is unperturbed for later spans.
        let outer = span!(t, 10, "outer");
        let inner = span!(t, 11, "inner");
        let snap = t.snapshot();
        assert_eq!(snap.spans()[4].parent, Some(outer.0));
        t.end_span(inner, 12);
        t.end_span(outer, 13);
    }

    #[test]
    fn identical_sequences_export_identically() {
        let run = || {
            let t = Telemetry::new();
            t.incr("x_total");
            t.gauge_set("g", -3);
            t.observe("h_ticks", 7);
            t.observe("h_ticks", 9_999);
            let s = span!(t, 1, "a", k = 2);
            t.end_span(s, 4);
            (t.to_json(), t.to_prometheus(), t.render_human())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rate_and_stream_respect_the_enabled_switch() {
        let on = Telemetry::new();
        on.rate_event("binds", 10);
        on.rate_event("binds", 20);
        on.publish(20, "alert", "x");
        assert_eq!(on.rate("binds", 15), 2);
        assert_eq!(on.rate_at("binds", 5, 20), 1);
        let (cursor, events) = on.events_since(0);
        assert_eq!((cursor, events.len()), (1, 1));

        let off = Telemetry::disabled();
        off.rate_event("binds", 10);
        off.publish(10, "alert", "x");
        assert_eq!(off.rate("binds", 100), 0);
        assert_eq!(off.events_since(0), (0, vec![]));
    }

    #[test]
    fn json_escape_roundtrip() {
        let ugly = "a\"b\\c\nd\te\u{1}f";
        assert_eq!(json::unescape(&json::escape(ugly)).unwrap(), ugly);
        assert!(json::unescape("bad\\q").is_none());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let t = Telemetry::new();
        let t2 = t.clone();
        let _ = std::thread::spawn(move || {
            t2.with(|_| panic!("poison the registry lock"));
        })
        .join();
        t.incr("after_poison_total");
        assert_eq!(t.counter("after_poison_total"), 1);
    }
}
