//! The metrics registry: counters, gauges, histograms, spans, and the
//! binding-lifecycle tracker, plus the three deterministic exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::json;

/// One event published onto the in-registry streaming bus: a tick-stamped
/// `(topic, body)` pair consumed by online subscribers (the cloud monitor,
/// `rbsim monitor`) through [`Registry::events_since`]. Stream events are
/// deliberately *not* part of the JSON/Prometheus exports, so publishing
/// never perturbs the pinned goldens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    /// Simulation tick the event was published at.
    pub at: u64,
    /// Coarse routing key (`"alert"`, `"defense"`, `"net"`, …).
    pub topic: String,
    /// Rendered event body (deterministic, byte-stable).
    pub body: String,
}

/// Opaque identifier of a span within one registry (creation-ordered).
/// The `Default` id (`0`) is the dead id a disabled handle returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// One recorded span: a named, attributed interval of simulated time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Creation-ordered id (`SpanId.0`).
    pub id: u64,
    /// Enclosing span still open when this one started, if any.
    pub parent: Option<u64>,
    /// Span name (`"bind"`, `"setup"`, `"attack"`, …).
    pub name: String,
    /// Key/value attributes in the order given at open time.
    pub attrs: Vec<(String, String)>,
    /// Opening tick.
    pub start: u64,
    /// Closing tick (`None` while the span is open).
    pub end: Option<u64>,
}

/// Per-device lifecycle bookkeeping behind the binding-latency histograms.
#[derive(Clone, Debug, Default)]
struct DeviceLifecycle {
    /// Tick of the current online episode's start (`None` while offline).
    online_at: Option<u64>,
    /// Whether the first `Initial -> Online` transition was recorded.
    ever_online: bool,
    /// Tick of the most recent unbind with no rebind yet.
    unbound_at: Option<u64>,
    /// Whether the device is currently bound.
    bound: bool,
}

/// The deterministic metrics store. Usually reached through
/// [`crate::Telemetry`]; owned directly only in tests and snapshots.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<SpanRecord>,
    /// Ids of currently open spans, innermost last (parent inference).
    open_spans: Vec<u64>,
    lifecycle: BTreeMap<String, DeviceLifecycle>,
    /// Tick-stamped event series behind the sliding-window [`Registry::rate`]
    /// helper, keyed by series name. Kept sorted by tick.
    rates: BTreeMap<String, Vec<u64>>,
    /// The streaming bus: publish-ordered events for online subscribers.
    stream: Vec<StreamEvent>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Reads counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sets gauge `name`.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Reads gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name`, creating it on first use.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Reads histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Opens a span at `now`. The innermost still-open span becomes its
    /// parent, which is how spans nest over the flat `TraceEvent` stream.
    ///
    /// Stack inference is right for call-shaped nesting within one
    /// component but mis-nests interleaved spans from unrelated components
    /// (two homes' setups overlap in time without one containing the
    /// other); callers that know the true hierarchy should pass it via
    /// [`Registry::start_span_with_parent`].
    pub fn start_span(&mut self, name: &str, attrs: &[(&str, String)], now: u64) -> SpanId {
        let parent = self.open_spans.last().copied();
        self.push_span(name, attrs, now, parent)
    }

    /// Opens a span at `now` with an explicit parent — `None` forces a
    /// root span even while other spans are open. The recorded parent is
    /// exactly what the caller states, so hierarchical instrumentation
    /// (the `rb-prof` phase tree, the Perfetto export) agrees with the
    /// span table byte for byte. Closing an explicit-parent span feeds
    /// the same `span_ticks{name="…"}` histogram as a stack-inferred one.
    pub fn start_span_with_parent(
        &mut self,
        name: &str,
        attrs: &[(&str, String)],
        now: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        let parent = parent.map(|p| p.0);
        self.push_span(name, attrs, now, parent)
    }

    fn push_span(
        &mut self,
        name: &str,
        attrs: &[(&str, String)],
        now: u64,
        parent: Option<u64>,
    ) -> SpanId {
        let id = self.spans.len() as u64;
        self.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
            start: now,
            end: None,
        });
        self.open_spans.push(id);
        SpanId(id)
    }

    /// Closes span `id` at `now`, feeding its duration into the
    /// `span_ticks{name="…"}` histogram. Closing an unknown or already
    /// closed span is a no-op.
    pub fn end_span(&mut self, id: SpanId, now: u64) {
        let Some(span) = self.spans.get_mut(id.0 as usize) else {
            return;
        };
        if span.end.is_some() {
            return;
        }
        span.end = Some(now);
        let duration = now.saturating_sub(span.start);
        let key = format!("span_ticks{{name=\"{}\"}}", span.name);
        self.open_spans.retain(|open| *open != id.0);
        self.observe(&key, duration);
    }

    /// All spans in creation order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    // ----- binding lifecycle ------------------------------------------------

    /// The device shadow went `Initial/Bound -> Online/Control`. The first
    /// such transition feeds `binding_initial_to_online_ticks` (latency
    /// from world start through provisioning + registration).
    pub fn lifecycle_online(&mut self, device: &str, now: u64) {
        let life = self.lifecycle.entry(device.to_string()).or_default();
        if life.online_at.is_none() {
            life.online_at = Some(now);
        }
        let first = !life.ever_online;
        life.ever_online = true;
        if first {
            self.observe("binding_initial_to_online_ticks", now);
        }
    }

    /// The device shadow went offline; the online episode ends.
    pub fn lifecycle_offline(&mut self, device: &str) {
        if let Some(life) = self.lifecycle.get_mut(device) {
            life.online_at = None;
        }
    }

    /// A binding was created. Feeds `binding_online_to_bound_ticks`
    /// (measured from the current online episode's start) and, after an
    /// unbind, `binding_unbind_to_rebind_ticks`.
    pub fn lifecycle_bound(&mut self, device: &str, now: u64) {
        let life = self.lifecycle.entry(device.to_string()).or_default();
        if life.bound {
            return;
        }
        life.bound = true;
        let online_at = life.online_at;
        let unbound_at = life.unbound_at.take();
        if let Some(at) = online_at {
            self.observe("binding_online_to_bound_ticks", now.saturating_sub(at));
        }
        if let Some(at) = unbound_at {
            self.observe("binding_unbind_to_rebind_ticks", now.saturating_sub(at));
        }
    }

    /// The binding was revoked; a later bind measures the rebind window.
    pub fn lifecycle_unbound(&mut self, device: &str, now: u64) {
        let life = self.lifecycle.entry(device.to_string()).or_default();
        if life.bound {
            life.bound = false;
            life.unbound_at = Some(now);
        }
    }

    // ----- tick-rate series -------------------------------------------------

    /// Records one occurrence of `series` at tick `at`. The series backs
    /// the sliding-window [`Registry::rate`] helper; it is kept sorted by
    /// tick (call sites are almost always monotone, so this is an append).
    pub fn rate_event(&mut self, series: &str, at: u64) {
        let ticks = self.rates.entry(series.to_string()).or_default();
        match ticks.last() {
            Some(&last) if last > at => {
                let idx = ticks.partition_point(|&t| t <= at);
                ticks.insert(idx, at);
            }
            _ => ticks.push(at),
        }
    }

    /// Events of `series` inside the window `(end - window_ticks, end]`
    /// where `end` is the latest recorded tick — the instantaneous
    /// sliding-window rate at the newest observation. 0 for an empty or
    /// unknown series.
    pub fn rate(&self, series: &str, window_ticks: u64) -> u64 {
        match self.rates.get(series).and_then(|t| t.last()) {
            Some(&end) => self.rate_at(series, window_ticks, end),
            None => 0,
        }
    }

    /// Events of `series` inside `(now - window_ticks, now]` — the
    /// sliding-window rate as of an explicit tick `now`. A window covering
    /// the whole clock (`window_ticks >= now`) includes tick-0 events.
    pub fn rate_at(&self, series: &str, window_ticks: u64, now: u64) -> u64 {
        let Some(ticks) = self.rates.get(series) else {
            return 0;
        };
        let end = ticks.partition_point(|&t| t <= now);
        let start = if window_ticks >= now {
            0
        } else {
            ticks.partition_point(|&t| t <= now - window_ticks)
        };
        end.saturating_sub(start) as u64
    }

    /// Total recorded events of `series` regardless of window.
    pub fn rate_events_total(&self, series: &str) -> u64 {
        self.rates.get(series).map_or(0, |t| t.len() as u64)
    }

    // ----- streaming bus ----------------------------------------------------

    /// Publishes one event onto the streaming bus. Subscribers poll with
    /// [`Registry::events_since`]; exporters never see the stream.
    pub fn publish(&mut self, at: u64, topic: &str, body: &str) {
        self.stream.push(StreamEvent {
            at,
            topic: topic.to_string(),
            body: body.to_string(),
        });
    }

    /// The events published after `cursor`, plus the new cursor to resume
    /// from. A subscriber that stores the returned cursor and polls again
    /// sees every event exactly once, in publish order.
    pub fn events_since(&self, cursor: usize) -> (usize, &[StreamEvent]) {
        let start = cursor.min(self.stream.len());
        (self.stream.len(), &self.stream[start..])
    }

    /// The whole published stream in publish order.
    pub fn stream(&self) -> &[StreamEvent] {
        &self.stream
    }

    /// Folds `other`'s counters and histograms into this registry (used by
    /// benches to aggregate across seeds). Gauges take `other`'s value;
    /// rate series merge (resorted by tick); spans, lifecycle state, and
    /// the event stream are not merged.
    pub fn merge_from(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            self.counter_add(name, *value);
        }
        for (name, value) in &other.gauges {
            self.gauge_set(name, *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(h) => h.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
        for (name, ticks) in &other.rates {
            let mine = self.rates.entry(name.clone()).or_default();
            mine.extend_from_slice(ticks);
            mine.sort_unstable();
        }
    }

    // ----- exporters --------------------------------------------------------

    /// Canonical JSON snapshot: objects keyed in sorted order, spans in
    /// creation order, every string escaped by hand (the workspace `serde`
    /// is a no-op stub). Byte-stable across identical runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            let sep = if first { "\n" } else { ",\n" };
            first = false;
            let _ = write!(out, "{sep}    \"{}\": {value}", json::escape(name));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (name, value) in &self.gauges {
            let sep = if first { "\n" } else { ",\n" };
            first = false;
            let _ = write!(out, "{sep}    \"{}\": {value}", json::escape(name));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (name, hist) in &self.histograms {
            let sep = if first { "\n" } else { ",\n" };
            first = false;
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"buckets\": [",
                json::escape(name),
                hist.count(),
                hist.sum(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
                hist.p50().unwrap_or(0),
                hist.p95().unwrap_or(0),
            );
            for (idx, (le, cum)) in hist.cumulative_buckets().iter().enumerate() {
                let sep = if idx == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[\"{le}\", {cum}]");
            }
            out.push_str("]}");
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"spans\": [");
        for (idx, span) in self.spans.iter().enumerate() {
            let sep = if idx == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"id\": {}, \"parent\": {}, \"name\": \"{}\", \"start\": {}, \"end\": {}, \"attrs\": {{",
                span.id,
                span.parent.map_or("null".to_string(), |p| p.to_string()),
                json::escape(&span.name),
                span.start,
                span.end.map_or("null".to_string(), |e| e.to_string()),
            );
            for (aidx, (key, value)) in span.attrs.iter().enumerate() {
                let sep = if aidx == 0 { "" } else { ", " };
                let _ = write!(
                    out,
                    "{sep}\"{}\": \"{}\"",
                    json::escape(key),
                    json::escape(value)
                );
            }
            out.push_str("}}");
        }
        out.push_str(if self.spans.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out.push('\n');
        out
    }

    /// Prometheus text-format export. Families (the key prefix before any
    /// `{label}` set) are announced once with a `# TYPE` line; keys within
    /// a family stay in sorted order. Histograms expand to cumulative
    /// `_bucket{le=…}` series plus `_sum`/`_count`. Family names are
    /// sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` grammar and empty
    /// label sets (`{}`) are dropped, so the export always parses no
    /// matter what keys callers registered.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, value) in &self.counters {
            let family = sanitize_family(family_of(name));
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} counter");
                last_family.clone_from(&family);
            }
            let _ = writeln!(out, "{family}{} {value}", label_suffix(name));
        }
        for (name, value) in &self.gauges {
            let family = sanitize_family(family_of(name));
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} gauge");
                last_family.clone_from(&family);
            }
            let _ = writeln!(out, "{family}{} {value}", label_suffix(name));
        }
        for (name, hist) in &self.histograms {
            let family = sanitize_family(family_of(name));
            let labels = labels_of(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} histogram");
                last_family.clone_from(&family);
            }
            for (le, cum) in hist.cumulative_buckets() {
                let _ = match labels {
                    Some(inner) => {
                        writeln!(out, "{family}_bucket{{{inner},le=\"{le}\"}} {cum}")
                    }
                    None => writeln!(out, "{family}_bucket{{le=\"{le}\"}} {cum}"),
                };
            }
            let suffix = label_suffix(name);
            let _ = writeln!(out, "{family}_sum{suffix} {}", hist.sum());
            let _ = writeln!(out, "{family}_count{suffix} {}", hist.count());
        }
        out
    }

    /// Two-column human table: every counter and gauge, then one summary
    /// line per histogram (`count/p50/p95/max`).
    pub fn render_human(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (name, value) in &self.counters {
            rows.push((name.clone(), value.to_string()));
        }
        for (name, value) in &self.gauges {
            rows.push((name.clone(), value.to_string()));
        }
        for (name, hist) in &self.histograms {
            rows.push((name.clone(), hist.to_string()));
        }
        let width = rows
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(6)
            .max("metric".len());
        let mut out = format!("{:<width$}  value\n", "metric");
        let _ = writeln!(out, "{}  -----", "-".repeat(width));
        for (name, value) in rows {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        if !self.spans.is_empty() {
            let open = self.spans.iter().filter(|s| s.end.is_none()).count();
            let _ = writeln!(
                out,
                "\nspans: {} recorded, {open} still open",
                self.spans.len()
            );
        }
        out
    }
}

/// The metric family: the key up to its `{label}` set, if any.
fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// The label set inside the braces, without the braces. `None` when bare
/// *or* when the braces are empty — `foo{}` is treated as the bare family
/// so no exporter ever emits a dangling `{,le=…}` separator.
fn labels_of(name: &str) -> Option<&str> {
    let start = name.find('{')?;
    let end = name.rfind('}')?;
    (end > start + 1).then(|| &name[start + 1..end])
}

/// The rendered `{labels}` suffix of a key, empty when there are none.
fn label_suffix(name: &str) -> String {
    labels_of(name).map_or_else(String::new, |inner| format!("{{{inner}}}"))
}

/// Maps an arbitrary registry key prefix onto the Prometheus metric-name
/// grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes `_`,
/// a leading digit is prefixed with `_`, and an empty family becomes `_`.
fn sanitize_family(family: &str) -> String {
    let mut out = String::with_capacity(family.len());
    for (i, ch) in family.chars().enumerate() {
        if ch == '_' || ch == ':' || ch.is_ascii_alphabetic() {
            out.push(ch);
        } else if ch.is_ascii_digit() {
            if i == 0 {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn lifecycle_feeds_binding_histograms() {
        let mut r = Registry::new();
        r.lifecycle_online("dev", 120);
        r.lifecycle_bound("dev", 180);
        r.lifecycle_unbound("dev", 1_000);
        r.lifecycle_bound("dev", 1_400);
        let initial = r.histogram("binding_initial_to_online_ticks").unwrap();
        assert_eq!((initial.count(), initial.sum()), (1, 120));
        let bound = r.histogram("binding_online_to_bound_ticks").unwrap();
        // 180-120 = 60, then rebind 1400-120 = 1280 (same online episode).
        assert_eq!((bound.count(), bound.sum()), (2, 60 + 1_280));
        let rebind = r.histogram("binding_unbind_to_rebind_ticks").unwrap();
        assert_eq!((rebind.count(), rebind.sum()), (1, 400));
    }

    #[test]
    fn lifecycle_offline_resets_online_episode_not_first_seen() {
        let mut r = Registry::new();
        r.lifecycle_online("dev", 50);
        r.lifecycle_offline("dev");
        r.lifecycle_online("dev", 90_000);
        // Initial->Online is recorded once, at the *first* transition.
        let initial = r.histogram("binding_initial_to_online_ticks").unwrap();
        assert_eq!((initial.count(), initial.sum()), (1, 50));
        // …but Online->Bound measures from the *current* episode.
        r.lifecycle_bound("dev", 90_010);
        let bound = r.histogram("binding_online_to_bound_ticks").unwrap();
        assert_eq!((bound.count(), bound.sum()), (1, 10));
    }

    #[test]
    fn rebinding_while_bound_records_nothing() {
        let mut r = Registry::new();
        r.lifecycle_online("dev", 10);
        r.lifecycle_bound("dev", 20);
        r.lifecycle_bound("dev", 30);
        let bound = r.histogram("binding_online_to_bound_ticks").unwrap();
        assert_eq!(bound.count(), 1);
    }

    #[test]
    fn prometheus_groups_families_and_expands_histograms() {
        let mut r = Registry::new();
        r.counter_add("requests_total{kind=\"Bind\"}", 2);
        r.counter_add("requests_total{kind=\"Status\"}", 7);
        r.gauge_set("now_ticks", 31);
        r.observe("lat_ticks{name=\"bind\"}", 3);
        let text = r.to_prometheus();
        assert_eq!(
            text.matches("# TYPE requests_total counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("requests_total{kind=\"Bind\"} 2"));
        assert!(text.contains("# TYPE now_ticks gauge"));
        assert!(text.contains("lat_ticks_bucket{name=\"bind\",le=\"5\"} 1"));
        assert!(text.contains("lat_ticks_bucket{name=\"bind\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ticks_sum{name=\"bind\"} 3"));
        assert!(text.contains("lat_ticks_count{name=\"bind\"} 1"));
    }

    #[test]
    fn prometheus_tolerates_empty_label_sets() {
        let mut r = Registry::new();
        r.counter_add("c_total{}", 1);
        r.gauge_set("g{}", -4);
        r.observe("h{}", 3);
        let text = r.to_prometheus();
        assert!(text.contains("c_total 1"), "{text}");
        assert!(text.contains("g -4"), "{text}");
        assert!(text.contains("h_bucket{le=\"5\"} 1"), "{text}");
        assert!(text.contains("h_sum 3"), "{text}");
        assert!(
            !text.contains("{}") && !text.contains("{,"),
            "empty label sets must vanish, not dangle: {text}"
        );
    }

    #[test]
    fn prometheus_sanitizes_metric_names() {
        let mut r = Registry::new();
        r.counter_add("weird-name.total", 1);
        r.counter_add("9lives", 2);
        r.counter_add("bad metric{kind=\"x\"}", 3);
        r.gauge_set("héllo", 7);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE weird_name_total counter"), "{text}");
        assert!(text.contains("weird_name_total 1"), "{text}");
        assert!(text.contains("_9lives 2"), "leading digit escaped: {text}");
        assert!(
            text.contains("bad_metric{kind=\"x\"} 3"),
            "labels survive family sanitization: {text}"
        );
        assert!(text.contains("h_llo 7"), "non-ASCII collapses to _: {text}");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let family: String = line
                .chars()
                .take_while(|c| *c != '{' && *c != ' ')
                .collect();
            assert!(
                family.chars().enumerate().all(|(i, c)| c == '_'
                    || c == ':'
                    || c.is_ascii_alphabetic()
                    || (i > 0 && c.is_ascii_digit())),
                "exported family {family:?} violates the grammar"
            );
        }
    }

    #[test]
    fn prometheus_buckets_stay_in_le_order() {
        let mut r = Registry::new();
        for v in [0, 3, 30, 300, 3_000, 300_000] {
            r.observe("lat_ticks{name=\"mixed\"}", v);
        }
        let text = r.to_prometheus();
        let mut les = Vec::new();
        let mut cums = Vec::new();
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let le_start = line.find("le=\"").unwrap() + 4;
            let le_end = line[le_start..].find('"').unwrap() + le_start;
            les.push(line[le_start..le_end].to_string());
            cums.push(
                line[le_end..]
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .parse::<u64>()
                    .unwrap(),
            );
        }
        assert_eq!(les.last().map(String::as_str), Some("+Inf"));
        let bounds: Vec<u64> = les[..les.len() - 1]
            .iter()
            .map(|le| le.parse().unwrap())
            .collect();
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "le bounds must be strictly ascending: {les:?}"
        );
        assert!(
            cums.windows(2).all(|w| w[0] <= w[1]),
            "cumulative counts must be monotone: {cums:?}"
        );
        assert_eq!(cums.last().copied(), Some(6), "+Inf carries the total");
    }

    #[test]
    fn merge_from_aggregates_counters_and_histograms() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("x_total", 1);
        b.counter_add("x_total", 2);
        b.counter_add("y_total", 5);
        a.observe("h", 10);
        b.observe("h", 30);
        a.merge_from(&b);
        assert_eq!(a.counter("x_total"), 3);
        assert_eq!(a.counter("y_total"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn rate_counts_events_in_a_left_open_window() {
        let mut r = Registry::new();
        for at in [100, 500, 900, 1_000, 1_500] {
            r.rate_event("binds", at);
        }
        // Window (500, 1500]: 900, 1000, 1500 — the left edge is excluded.
        assert_eq!(r.rate_at("binds", 1_000, 1_500), 3);
        // rate() anchors the window at the latest event.
        assert_eq!(r.rate("binds", 1_000), 3);
        assert_eq!(r.rate("binds", 10_000), 5);
        // A window covering the whole clock keeps tick-0 events.
        r.rate_event("boot", 0);
        assert_eq!(r.rate_at("boot", 50, 10), 1);
        // Unknown series and empty windows read as zero.
        assert_eq!(r.rate("missing", 1_000), 0);
        assert_eq!(r.rate_at("binds", 10, 40), 0);
        assert_eq!(r.rate_events_total("binds"), 5);
    }

    #[test]
    fn rate_events_tolerate_out_of_order_ticks() {
        let mut r = Registry::new();
        r.rate_event("s", 300);
        r.rate_event("s", 100);
        r.rate_event("s", 200);
        assert_eq!(r.rate_at("s", 150, 300), 2); // (150, 300]: 200, 300
        assert_eq!(r.rate("s", 1_000), 3);
    }

    #[test]
    fn rate_series_merge_and_stay_sorted() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.rate_event("s", 10);
        a.rate_event("s", 30);
        b.rate_event("s", 20);
        a.merge_from(&b);
        assert_eq!(a.rate_at("s", 15, 30), 2); // (15, 30]: 20, 30
        assert_eq!(a.rate_events_total("s"), 3);
    }

    #[test]
    fn stream_cursor_sees_every_event_exactly_once() {
        let mut r = Registry::new();
        r.publish(5, "alert", "contested dev=d1");
        let (cursor, batch) = r.events_since(0);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].at, 5);
        assert_eq!(batch[0].topic, "alert");
        r.publish(9, "defense", "rotate-token dev=d1");
        let (cursor2, batch2) = r.events_since(cursor);
        assert_eq!(batch2.len(), 1);
        assert_eq!(batch2[0].body, "rotate-token dev=d1");
        let (_, empty) = r.events_since(cursor2);
        assert!(empty.is_empty());
        // A stale cursor past the end is clamped, not a panic.
        assert!(r.events_since(usize::MAX).1.is_empty());
        assert_eq!(r.stream().len(), 2);
    }

    #[test]
    fn stream_and_rates_never_leak_into_exports() {
        let mut r = Registry::new();
        r.publish(1, "alert", "x");
        r.rate_event("s", 1);
        assert!(r.to_json().contains("\"counters\": {}"));
        assert!(!r.to_json().contains("alert"));
        assert_eq!(r.to_prometheus(), "");
    }

    #[test]
    fn json_is_well_formed_for_empty_and_populated() {
        let mut r = Registry::new();
        assert!(r.to_json().contains("\"counters\": {}"));
        r.counter_add("a", 1);
        r.start_span("s", &[("k", "v\"q".to_string())], 0);
        let json = r.to_json();
        assert!(json.contains("\"a\": 1"));
        assert!(json.contains("\\\"q"), "attr values are escaped: {json}");
    }
}
