//! Fixed-bucket histograms over simulated ticks.
//!
//! Bucket bounds are compile-time constants, so two runs that observe the
//! same values always render the same buckets — no dynamic resizing, no
//! floating-point accumulation in the export path. Quantiles are reported
//! as the *upper bound* of the bucket containing the requested rank
//! (integer arithmetic only); the exact `max` is tracked separately so the
//! tail is never under-reported.

use std::fmt;

/// Upper bucket bounds (inclusive) in ticks. Chosen to straddle the
/// latencies this stack produces: LAN hops are single-digit ticks, WAN
/// round-trips tens, retry backoff hundreds-to-thousands, heartbeat and
/// expiry windows tens of thousands.
pub const TICK_BUCKETS: [u64; 16] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

/// A fixed-bucket histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; `counts[i]` is observations `<= TICK_BUCKETS[i]`
    /// and greater than the previous bound. The final slot is the overflow
    /// (`+Inf`) bucket.
    counts: [u64; TICK_BUCKETS.len() + 1],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram over [`TICK_BUCKETS`].
    pub fn new() -> Self {
        Histogram {
            counts: [0; TICK_BUCKETS.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = TICK_BUCKETS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(TICK_BUCKETS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `num/den` quantile as the upper bound of the bucket holding
    /// that rank — integer arithmetic, deterministic. The overflow bucket
    /// reports the exact tracked `max`. Returns `None` when empty.
    pub fn quantile(&self, num: u64, den: u64) -> Option<u64> {
        if self.count == 0 || den == 0 {
            return None;
        }
        // rank = ceil(count * num / den), clamped to [1, count].
        let rank = self
            .count
            .saturating_mul(num)
            .div_ceil(den)
            .clamp(1, self.count);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match TICK_BUCKETS.get(idx) {
                    // Never report a bucket bound beyond the true max.
                    Some(&bound) => bound.min(self.max),
                    None => self.max,
                });
            }
        }
        Some(self.max)
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(50, 100)
    }

    /// 95th percentile (bucket-resolution).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(95, 100)
    }

    /// Folds another histogram into this one (same fixed bounds).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Cumulative `(upper-bound-label, count)` pairs in Prometheus
    /// `le`-label order, ending with `("+Inf", total)`.
    pub fn cumulative_buckets(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cum = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            let label = match TICK_BUCKETS.get(idx) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            out.push((label, cum));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.count {
            0 => write!(f, "count=0"),
            _ => write!(
                f,
                "count={} p50={} p95={} max={}",
                self.count,
                self.p50().unwrap_or(0),
                self.p95().unwrap_or(0),
                self.max,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.to_string(), "count=0");
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in [3, 4, 7, 40, 90] {
            h.observe(v);
        }
        // ranks: p50 -> 3rd of 5 -> value 7 -> bucket <=10.
        assert_eq!(h.p50(), Some(10));
        // p95 -> 5th of 5 -> value 90 -> bucket <=100, clamped to max 90.
        assert_eq!(h.p95(), Some(90));
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(90));
        assert_eq!(h.sum(), 144);
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = Histogram::new();
        h.observe(2_000_000);
        assert_eq!(h.p50(), Some(2_000_000));
        assert_eq!(h.cumulative_buckets().last().unwrap().1, 1);
    }

    #[test]
    fn merge_matches_combined_observations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [1, 10, 100] {
            a.observe(v);
            combined.observe(v);
        }
        for v in [5, 50, 500_000] {
            b.observe(v);
            combined.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let mut h = Histogram::new();
        for v in 0..200 {
            h.observe(v * 37);
        }
        let buckets = h.cumulative_buckets();
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(buckets.last().unwrap(), &("+Inf".to_string(), 200));
    }
}
