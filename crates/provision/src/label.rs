//! Label-based pairing: the device ID printed on the unit or its box.
//!
//! Several of the paper's vendors "attach labels containing device
//! information (e.g. Device IDs or pairing IDs) on devices, and ask users to
//! input such IDs in their apps". The same label is what leaks through
//! supply chains, resale, and purchase-and-return — the paper's off-site
//! physical interaction channel. [`DeviceLabel`] models the printed label,
//! including the check digit real vendors add against typos.

use rb_wire::ids::DevId;

use crate::ProvisionError;

/// A printed device label: the device ID plus a short pairing code and a
/// check character.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeviceLabel {
    /// The device's identifier, exactly as printed.
    pub dev_id: DevId,
    /// A 4-digit pairing code some vendors print next to the ID.
    pub pairing_code: u16,
}

impl DeviceLabel {
    /// Creates a label for a device.
    pub fn new(dev_id: DevId, pairing_code: u16) -> Self {
        DeviceLabel {
            dev_id,
            pairing_code: pairing_code % 10_000,
        }
    }

    /// Renders the label text as printed on the unit, with a trailing check
    /// character (mod-36 over the body).
    pub fn print(&self) -> String {
        let body = format!("{}|{:04}", self.dev_id.short(), self.pairing_code);
        let check = check_char(&body);
        format!("{body}|{check}")
    }

    /// Parses (— "scans" —) a printed label.
    ///
    /// # Errors
    ///
    /// Returns [`ProvisionError::BadFraming`] on malformed labels and
    /// [`ProvisionError::ChecksumMismatch`] when the check character does
    /// not match (a typo while entering the ID into the app).
    pub fn scan(text: &str) -> Result<Self, ProvisionError> {
        let Some((body, check)) = text.rsplit_once('|') else {
            return Err(ProvisionError::BadFraming {
                what: "label missing check field",
            });
        };
        let expected = check_char(body);
        let mut chars = check.chars();
        let (Some(actual), None) = (chars.next(), chars.next()) else {
            return Err(ProvisionError::BadFraming {
                what: "check field not one char",
            });
        };
        if actual != expected {
            return Err(ProvisionError::ChecksumMismatch {
                expected: expected as u8,
                actual: actual as u8,
            });
        }
        let Some((id_part, code_part)) = body.rsplit_once('|') else {
            return Err(ProvisionError::BadFraming {
                what: "label missing pairing code",
            });
        };
        let pairing_code: u16 = code_part.parse().map_err(|_| ProvisionError::BadFraming {
            what: "pairing code not numeric",
        })?;
        let dev_id = parse_dev_id(id_part)?;
        Ok(DeviceLabel {
            dev_id,
            pairing_code,
        })
    }
}

fn check_char(body: &str) -> char {
    let sum: u32 = body.bytes().map(u32::from).sum();
    let v = (sum % 36) as u8;
    if v < 10 {
        (b'0' + v) as char
    } else {
        (b'A' + v - 10) as char
    }
}

/// Parses the `short()` rendering of a [`DevId`] back into the value —
/// the inverse of [`DevId::short`] for the label use case.
pub fn parse_dev_id(s: &str) -> Result<DevId, ProvisionError> {
    if let Some(mac) = s.strip_prefix("mac:") {
        let parts: Vec<&str> = mac.split(':').collect();
        if parts.len() != 6 {
            return Err(ProvisionError::BadFraming {
                what: "mac must have 6 octets",
            });
        }
        let mut bytes = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            bytes[i] = u8::from_str_radix(p, 16).map_err(|_| ProvisionError::BadFraming {
                what: "mac octet not hex",
            })?;
        }
        return Ok(DevId::Mac(rb_wire::ids::MacAddr::new(bytes)));
    }
    if let Some(sn) = s.strip_prefix("sn:") {
        let Some((vendor, seq)) = sn.split_once('-') else {
            return Err(ProvisionError::BadFraming {
                what: "serial missing separator",
            });
        };
        let vendor = u16::from_str_radix(vendor, 16).map_err(|_| ProvisionError::BadFraming {
            what: "serial vendor not hex",
        })?;
        let seq: u64 = seq.parse().map_err(|_| ProvisionError::BadFraming {
            what: "serial seq not numeric",
        })?;
        return Ok(DevId::Serial { vendor, seq });
    }
    if let Some(digits) = s.strip_prefix("id:") {
        let width = digits.len() as u8;
        let value: u32 = digits.parse().map_err(|_| ProvisionError::BadFraming {
            what: "digit id not numeric",
        })?;
        let id = DevId::Digits { value, width };
        id.validate().map_err(|_| ProvisionError::BadFraming {
            what: "digit id out of range",
        })?;
        return Ok(id);
    }
    if let Some(uuid) = s.strip_prefix("uuid:") {
        let value = u128::from_str_radix(uuid, 16).map_err(|_| ProvisionError::BadFraming {
            what: "uuid not hex",
        })?;
        return Ok(DevId::Uuid(value));
    }
    Err(ProvisionError::BadFraming {
        what: "unknown id prefix",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_wire::ids::MacAddr;

    fn ids() -> Vec<DevId> {
        vec![
            DevId::Mac(MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42])),
            DevId::Serial {
                vendor: 0x0102,
                seq: 99887,
            },
            DevId::Digits {
                value: 123456,
                width: 7,
            },
            DevId::Uuid(0xdead_beef_cafe),
        ]
    }

    #[test]
    fn print_scan_roundtrip() {
        for id in ids() {
            let label = DeviceLabel::new(id.clone(), 1234);
            let scanned = DeviceLabel::scan(&label.print()).unwrap();
            assert_eq!(scanned, label, "id={id}");
        }
    }

    #[test]
    fn typo_is_caught_by_check_char() {
        let label = DeviceLabel::new(ids()[0].clone(), 7);
        let mut text = label.print();
        // Fat-finger one hex digit of the MAC.
        text = text.replacen('d', "c", 1);
        assert!(matches!(
            DeviceLabel::scan(&text),
            Err(ProvisionError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn pairing_code_is_four_digits() {
        let label = DeviceLabel::new(ids()[1].clone(), 65535);
        assert_eq!(label.pairing_code, 5535);
        assert!(label.print().contains("|5535|"));
    }

    #[test]
    fn malformed_labels_are_rejected() {
        assert!(DeviceLabel::scan("").is_err());
        assert!(DeviceLabel::scan("no-separators").is_err());
        assert!(DeviceLabel::scan("mac:aa:bb|0001|Z").is_err());
    }

    #[test]
    fn parse_dev_id_rejects_garbage() {
        assert!(parse_dev_id("mac:zz:zz:zz:zz:zz:zz").is_err());
        assert!(parse_dev_id("sn:xyz").is_err());
        assert!(parse_dev_id("id:12ab").is_err());
        assert!(parse_dev_id("uuid:nothex").is_err());
        assert!(parse_dev_id("wat:1").is_err());
    }

    #[test]
    fn parse_inverts_short_for_all_id_kinds() {
        for id in ids() {
            assert_eq!(parse_dev_id(&id.short()).unwrap(), id);
        }
    }
}
