//! Wi-Fi credential value type shared by all provisioning schemes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// SSID and pre-shared key of the home network being provisioned.
///
/// The PSK is redacted in `Debug`/`Display`; the paper's related work
/// (\[41\]) shows SmartCfg-style provisioning can leak exactly this value,
/// so the simulator treats it as a secret everywhere.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WifiCredentials {
    ssid: String,
    psk: String,
}

impl WifiCredentials {
    /// Maximum SSID length per IEEE 802.11.
    pub const MAX_SSID: usize = 32;
    /// Maximum WPA2 passphrase length.
    pub const MAX_PSK: usize = 63;

    /// Creates credentials, truncating over-long fields to their 802.11
    /// limits.
    pub fn new(ssid: impl Into<String>, psk: impl Into<String>) -> Self {
        let mut ssid = ssid.into();
        let mut psk = psk.into();
        truncate_on_boundary(&mut ssid, Self::MAX_SSID);
        truncate_on_boundary(&mut psk, Self::MAX_PSK);
        WifiCredentials { ssid, psk }
    }

    /// The network name.
    pub fn ssid(&self) -> &str {
        &self.ssid
    }

    /// The pre-shared key.
    pub fn psk(&self) -> &str {
        &self.psk
    }
}

fn truncate_on_boundary(s: &mut String, max: usize) {
    if s.len() > max {
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
    }
}

impl fmt::Debug for WifiCredentials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WifiCredentials {{ ssid: {:?}, psk: <redacted> }}",
            self.ssid
        )
    }
}

impl fmt::Display for WifiCredentials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (psk redacted)", self.ssid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_redaction() {
        let c = WifiCredentials::new("HomeNet", "correct horse");
        assert_eq!(c.ssid(), "HomeNet");
        assert_eq!(c.psk(), "correct horse");
        let dbg = format!("{c:?}");
        assert!(dbg.contains("HomeNet"));
        assert!(!dbg.contains("correct horse"));
        assert!(!c.to_string().contains("correct horse"));
    }

    #[test]
    fn over_long_fields_truncate() {
        let c = WifiCredentials::new("s".repeat(100), "p".repeat(100));
        assert_eq!(c.ssid().len(), WifiCredentials::MAX_SSID);
        assert_eq!(c.psk().len(), WifiCredentials::MAX_PSK);
    }

    #[test]
    fn multibyte_truncation_is_boundary_safe() {
        let c = WifiCredentials::new("日".repeat(20), "語".repeat(30));
        assert!(c.ssid().len() <= WifiCredentials::MAX_SSID);
        assert!(c.ssid().chars().all(|ch| ch == '日'));
    }
}
