//! Airkiss-style provisioning framing (WeChat's SmartConfig variant).
//!
//! Airkiss also modulates data onto datagram lengths, but with a different
//! frame grammar: a *magic* field announcing the total length, a *prefix*
//! field carrying the password length and its CRC, and *sequence* groups of
//! four data bytes each protected by a per-group CRC. This module implements
//! that grammar over the simulator's length channel.
//!
//! Differences from [`crate::smartconfig`] are deliberate: the paper's
//! vendors mix both ecosystems, and having two independent codecs lets the
//! test suite check that a device listens only for its own vendor's scheme.

use crate::smartconfig::crc8;
use crate::wifi::WifiCredentials;
use crate::ProvisionError;

// Field encodings: high nibble selects the field type, low bits carry data.
const MAGIC_BASE: u16 = 0x1000;
const PREFIX_BASE: u16 = 0x2000;
const SEQ_HDR_BASE: u16 = 0x3000;
const SEQ_DATA_BASE: u16 = 0x4000;

/// Bytes per sequence group.
const GROUP: usize = 4;

fn payload_of(creds: &WifiCredentials) -> Vec<u8> {
    // Airkiss sends: ssid_len, psk_len, ssid, psk.
    let ssid = creds.ssid().as_bytes();
    let psk = creds.psk().as_bytes();
    let mut out = Vec::with_capacity(2 + ssid.len() + psk.len());
    out.push(ssid.len() as u8);
    out.push(psk.len() as u8);
    out.extend_from_slice(ssid);
    out.extend_from_slice(psk);
    out
}

/// Encodes credentials into an Airkiss-style length sequence.
pub fn encode(creds: &WifiCredentials) -> Vec<u16> {
    let payload = payload_of(creds);
    let mut out = Vec::new();
    // Magic: total payload length in two 4-bit halves.
    out.push(MAGIC_BASE | ((payload.len() as u16 >> 4) & 0xf));
    out.push(MAGIC_BASE | 0x10 | (payload.len() as u16 & 0xf));
    // Prefix: CRC of the whole payload in two halves.
    let crc = u16::from(crc8(&payload));
    out.push(PREFIX_BASE | ((crc >> 4) & 0xf));
    out.push(PREFIX_BASE | 0x10 | (crc & 0xf));
    // Sequence groups.
    for (gi, group) in payload.chunks(GROUP).enumerate() {
        let mut hdr_input = vec![gi as u8];
        hdr_input.extend_from_slice(group);
        out.push(SEQ_HDR_BASE | u16::from(crc8(&hdr_input)));
        out.push(SEQ_HDR_BASE | 0x100 | (gi as u16 & 0xff));
        for &b in group {
            out.push(SEQ_DATA_BASE | u16::from(b));
        }
    }
    out
}

/// Decodes a complete Airkiss-style length sequence.
///
/// # Errors
///
/// Returns [`ProvisionError`] variants for truncation, bad framing, group
/// or payload checksum failures, and malformed payloads.
pub fn decode(lengths: &[u16]) -> Result<WifiCredentials, ProvisionError> {
    let mut it = lengths.iter().copied();
    let mut next = |_what: &'static str| it.next().ok_or(ProvisionError::Incomplete);

    let m0 = next("magic0")?;
    let m1 = next("magic1")?;
    if m0 & 0xf010 != MAGIC_BASE || m1 & 0xf010 != MAGIC_BASE | 0x10 {
        return Err(ProvisionError::BadFraming {
            what: "magic field",
        });
    }
    let total = usize::from(((m0 & 0xf) << 4) | (m1 & 0xf));

    let p0 = next("prefix0")?;
    let p1 = next("prefix1")?;
    if p0 & 0xf010 != PREFIX_BASE || p1 & 0xf010 != PREFIX_BASE | 0x10 {
        return Err(ProvisionError::BadFraming {
            what: "prefix field",
        });
    }
    let expected_crc = (((p0 & 0xf) << 4) | (p1 & 0xf)) as u8;

    let mut payload = Vec::with_capacity(total);
    let groups = total.div_ceil(GROUP);
    for gi in 0..groups {
        let hdr_crc = next("group crc")?;
        let hdr_idx = next("group index")?;
        if hdr_crc & 0xff00 != SEQ_HDR_BASE {
            return Err(ProvisionError::BadFraming {
                what: "group crc field",
            });
        }
        if hdr_idx & 0xff00 != SEQ_HDR_BASE | 0x100 {
            return Err(ProvisionError::BadFraming {
                what: "group index field",
            });
        }
        if usize::from(hdr_idx & 0xff) != gi {
            return Err(ProvisionError::BadFraming {
                what: "group out of order",
            });
        }
        let in_group = GROUP.min(total - payload.len());
        let mut group_bytes = Vec::with_capacity(in_group);
        for _ in 0..in_group {
            let d = next("group data")?;
            if d & 0xff00 != SEQ_DATA_BASE {
                return Err(ProvisionError::BadFraming { what: "data field" });
            }
            group_bytes.push((d & 0xff) as u8);
        }
        let mut hdr_input = vec![gi as u8];
        hdr_input.extend_from_slice(&group_bytes);
        let actual = crc8(&hdr_input);
        let expected = (hdr_crc & 0xff) as u8;
        if actual != expected {
            return Err(ProvisionError::ChecksumMismatch { expected, actual });
        }
        payload.extend_from_slice(&group_bytes);
    }

    let actual = crc8(&payload);
    if actual != expected_crc {
        return Err(ProvisionError::ChecksumMismatch {
            expected: expected_crc,
            actual,
        });
    }
    if payload.len() < 2 {
        return Err(ProvisionError::BadFraming {
            what: "payload too short",
        });
    }
    let ssid_len = usize::from(payload[0]);
    let psk_len = usize::from(payload[1]);
    if 2 + ssid_len + psk_len != payload.len() {
        return Err(ProvisionError::BadFraming {
            what: "length fields inconsistent",
        });
    }
    let ssid =
        std::str::from_utf8(&payload[2..2 + ssid_len]).map_err(|_| ProvisionError::InvalidUtf8)?;
    let psk =
        std::str::from_utf8(&payload[2 + ssid_len..]).map_err(|_| ProvisionError::InvalidUtf8)?;
    Ok(WifiCredentials::new(ssid, psk))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creds() -> WifiCredentials {
        WifiCredentials::new("Apartment42", "hunter2hunter2")
    }

    #[test]
    fn roundtrip() {
        assert_eq!(decode(&encode(&creds())).unwrap(), creds());
    }

    #[test]
    fn roundtrip_group_boundary_sizes() {
        // Payload sizes that are exact multiples of the group size and ±1.
        for ssid_len in [1usize, 2, 3, 4, 5, 8, 13] {
            for psk_len in [0usize, 1, 4, 7, 8] {
                let c = WifiCredentials::new("s".repeat(ssid_len), "p".repeat(psk_len));
                assert_eq!(
                    decode(&encode(&c)).unwrap(),
                    c,
                    "ssid={ssid_len} psk={psk_len}"
                );
            }
        }
    }

    #[test]
    fn group_corruption_detected() {
        let mut lengths = encode(&creds());
        // Corrupt a data byte in the first group (offset 6 = after magic,
        // prefix, group header).
        lengths[6] ^= 0x3;
        assert!(matches!(
            decode(&lengths),
            Err(ProvisionError::ChecksumMismatch { .. }) | Err(ProvisionError::BadFraming { .. })
        ));
    }

    #[test]
    fn truncation_is_incomplete() {
        let lengths = encode(&creds());
        assert_eq!(decode(&lengths[..5]), Err(ProvisionError::Incomplete));
    }

    #[test]
    fn wrong_scheme_is_rejected() {
        // A SmartConfig stream must not decode as Airkiss.
        let sc = crate::smartconfig::encode(&creds());
        assert!(decode(&sc).is_err());
    }

    #[test]
    fn out_of_order_group_rejected() {
        let c = WifiCredentials::new("longenoughssid", "longenoughpskpsk");
        let mut lengths = encode(&c);
        // Find the second group's index field and break its order.
        let pos = lengths
            .iter()
            .position(|&l| l & 0xff00 == SEQ_HDR_BASE | 0x100 && l & 0xff == 1)
            .expect("second group exists");
        lengths[pos] = SEQ_HDR_BASE | 0x100 | 7;
        assert_eq!(
            decode(&lengths),
            Err(ProvisionError::BadFraming {
                what: "group out of order"
            })
        );
    }
}
