//! # rb-provision
//!
//! Local-network provisioning and discovery for the simulated IoT world —
//! the "local configuration" phase of the paper's Figure 1.
//!
//! Before a device can be remotely bound it must (1) join the home Wi-Fi
//! (*network provisioning*), (2) be found by the companion app (*local
//! discovery*), and (3) exchange pairing material with the app (*local
//! binding*). Real vendors use:
//!
//! * **SmartConfig-style length encoding** ([`smartconfig`]): the app
//!   broadcasts UDP datagrams whose *lengths* encode the Wi-Fi credentials;
//!   a device in promiscuous mode reads the lengths without being on the
//!   network yet (TI SmartConfig, cited as \[13\] in the paper).
//! * **Airkiss-style framing** ([`airkiss`]): WeChat's variant with magic
//!   and prefix fields (cited as \[16\]).
//! * **AP-mode provisioning** ([`apmode`]): the device opens a soft AP and
//!   the app posts credentials to it.
//! * **Label pairing** ([`label`]): the device ID / pairing code printed on
//!   the unit or its box — the very channel whose leakage the paper's
//!   adversary model exploits.
//! * **SSDP-style discovery** ([`discovery`]): multicast search and reply
//!   (cited as \[12\]).
//!
//! All codecs are pure functions over byte/length sequences, so they run
//! identically inside the network simulator and in unit tests.

pub mod airkiss;
pub mod apmode;
pub mod discovery;
pub mod label;
pub mod localctl;
pub mod smartconfig;
pub mod wifi;

pub use wifi::WifiCredentials;

/// Errors arising while decoding provisioning exchanges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvisionError {
    /// The length/byte stream did not contain a complete frame.
    Incomplete,
    /// A checksum failed.
    ChecksumMismatch {
        /// Expected checksum value.
        expected: u8,
        /// Actual checksum value.
        actual: u8,
    },
    /// Framing was violated (bad preamble, wrong ordering, bad tag).
    BadFraming {
        /// Human-readable description of the violation.
        what: &'static str,
    },
    /// A field exceeded its allowed size.
    TooLong {
        /// Which field.
        what: &'static str,
    },
    /// Text that should have been UTF-8 was not.
    InvalidUtf8,
}

impl std::fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProvisionError::Incomplete => write!(f, "incomplete provisioning frame"),
            ProvisionError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#04x}, got {actual:#04x}"
                )
            }
            ProvisionError::BadFraming { what } => write!(f, "bad framing: {what}"),
            ProvisionError::TooLong { what } => write!(f, "field too long: {what}"),
            ProvisionError::InvalidUtf8 => write!(f, "invalid utf-8 in provisioning payload"),
        }
    }
}

impl std::error::Error for ProvisionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(
            ProvisionError::ChecksumMismatch {
                expected: 0xab,
                actual: 0xcd
            }
            .to_string(),
            "checksum mismatch: expected 0xab, got 0xcd"
        );
        assert!(ProvisionError::BadFraming { what: "x" }
            .to_string()
            .contains("x"));
    }
}
