//! SSDP-style local discovery.
//!
//! "In some solutions, service discovery protocols like Simple Service
//! Discovery Protocol (SSDP) are used to broadcast self-descriptions and
//! exchange information between the device and the app" (paper,
//! Section II-B). This module implements a line-oriented search/response
//! protocol in SSDP's image: the app multicasts an `M-SEARCH` with a search
//! target, matching devices unicast back a description including their
//! device ID.

use rb_wire::ids::DevId;

use crate::label::parse_dev_id;
use crate::ProvisionError;

/// What the searcher is looking for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SearchTarget {
    /// Any device (`ssdp:all`).
    All,
    /// Devices of one vendor (matched against the vendor field devices
    /// advertise).
    Vendor(String),
    /// One specific device by ID.
    Device(DevId),
}

/// The app's multicast search message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRequest {
    /// What to find.
    pub target: SearchTarget,
}

impl SearchRequest {
    /// Renders the request in SSDP-like text form.
    pub fn encode(&self) -> Vec<u8> {
        let st = match &self.target {
            SearchTarget::All => "ssdp:all".to_owned(),
            SearchTarget::Vendor(v) => format!("vendor:{v}"),
            SearchTarget::Device(id) => format!("device:{}", id.short()),
        };
        format!("M-SEARCH * RB/1.0\r\nST: {st}\r\n\r\n").into_bytes()
    }

    /// Parses a search request.
    ///
    /// # Errors
    ///
    /// Returns [`ProvisionError`] if the frame is not a well-formed search.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProvisionError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ProvisionError::InvalidUtf8)?;
        let mut lines = text.split("\r\n");
        if lines.next() != Some("M-SEARCH * RB/1.0") {
            return Err(ProvisionError::BadFraming {
                what: "search start line",
            });
        }
        let st_line = lines.next().ok_or(ProvisionError::Incomplete)?;
        let st = st_line
            .strip_prefix("ST: ")
            .ok_or(ProvisionError::BadFraming {
                what: "missing ST header",
            })?;
        let target = if st == "ssdp:all" {
            SearchTarget::All
        } else if let Some(v) = st.strip_prefix("vendor:") {
            SearchTarget::Vendor(v.to_owned())
        } else if let Some(d) = st.strip_prefix("device:") {
            SearchTarget::Device(parse_dev_id(d)?)
        } else {
            return Err(ProvisionError::BadFraming {
                what: "unknown search target",
            });
        };
        Ok(SearchRequest { target })
    }

    /// Whether a device advertisement matches this search.
    pub fn matches(&self, vendor: &str, dev_id: &DevId) -> bool {
        match &self.target {
            SearchTarget::All => true,
            SearchTarget::Vendor(v) => v == vendor,
            SearchTarget::Device(d) => d == dev_id,
        }
    }
}

/// A device's unicast reply to a matching search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResponse {
    /// Vendor name.
    pub vendor: String,
    /// Model name.
    pub model: String,
    /// The device's ID — handed to the app for the subsequent cloud
    /// binding, which is why discovery traffic is one of the ID-leak
    /// channels the paper lists ("device IDs can be observed from the
    /// traffic").
    pub dev_id: DevId,
}

impl SearchResponse {
    /// Renders the response in SSDP-like text form.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "RB/1.0 200 OK\r\nVENDOR: {}\r\nMODEL: {}\r\nUSN: {}\r\n\r\n",
            self.vendor,
            self.model,
            self.dev_id.short()
        )
        .into_bytes()
    }

    /// Parses a search response.
    ///
    /// # Errors
    ///
    /// Returns [`ProvisionError`] if the frame is not a well-formed
    /// response.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProvisionError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ProvisionError::InvalidUtf8)?;
        let mut lines = text.split("\r\n");
        if lines.next() != Some("RB/1.0 200 OK") {
            return Err(ProvisionError::BadFraming {
                what: "response start line",
            });
        }
        let mut vendor = None;
        let mut model = None;
        let mut usn = None;
        for line in lines {
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("VENDOR: ") {
                vendor = Some(v.to_owned());
            } else if let Some(m) = line.strip_prefix("MODEL: ") {
                model = Some(m.to_owned());
            } else if let Some(u) = line.strip_prefix("USN: ") {
                usn = Some(parse_dev_id(u)?);
            }
        }
        Ok(SearchResponse {
            vendor: vendor.ok_or(ProvisionError::BadFraming {
                what: "missing VENDOR",
            })?,
            model: model.ok_or(ProvisionError::BadFraming {
                what: "missing MODEL",
            })?,
            dev_id: usn.ok_or(ProvisionError::BadFraming {
                what: "missing USN",
            })?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_wire::ids::MacAddr;

    fn dev_id() -> DevId {
        DevId::Mac(MacAddr::new([1, 2, 3, 4, 5, 6]))
    }

    #[test]
    fn search_roundtrip_all_variants() {
        for target in [
            SearchTarget::All,
            SearchTarget::Vendor("tp-link".into()),
            SearchTarget::Device(dev_id()),
        ] {
            let req = SearchRequest { target };
            assert_eq!(SearchRequest::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let rsp = SearchResponse {
            vendor: "belkin".into(),
            model: "WeMo".into(),
            dev_id: dev_id(),
        };
        assert_eq!(SearchResponse::decode(&rsp.encode()).unwrap(), rsp);
    }

    #[test]
    fn matching_logic() {
        let all = SearchRequest {
            target: SearchTarget::All,
        };
        let vendor = SearchRequest {
            target: SearchTarget::Vendor("belkin".into()),
        };
        let device = SearchRequest {
            target: SearchTarget::Device(dev_id()),
        };
        assert!(all.matches("anyone", &dev_id()));
        assert!(vendor.matches("belkin", &dev_id()));
        assert!(!vendor.matches("tp-link", &dev_id()));
        assert!(device.matches("anyone", &dev_id()));
        assert!(!device.matches("anyone", &DevId::Uuid(9)));
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(SearchRequest::decode(b"GET / HTTP/1.1\r\n\r\n").is_err());
        assert!(SearchRequest::decode(b"M-SEARCH * RB/1.0\r\nXX: y\r\n\r\n").is_err());
        assert!(SearchResponse::decode(b"RB/1.0 200 OK\r\nVENDOR: v\r\n\r\n").is_err());
        assert!(SearchResponse::decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn search_and_response_are_distinguishable() {
        let req = SearchRequest {
            target: SearchTarget::All,
        }
        .encode();
        let rsp = SearchResponse {
            vendor: "v".into(),
            model: "m".into(),
            dev_id: dev_id(),
        }
        .encode();
        assert!(SearchResponse::decode(&req).is_err());
        assert!(SearchRequest::decode(&rsp).is_err());
    }
}
