//! SmartConfig-style credential broadcast via datagram *lengths*.
//!
//! An unprovisioned device cannot decrypt WPA2 traffic, but it can observe
//! frame lengths in monitor mode. SmartConfig therefore modulates data onto
//! the lengths of broadcast datagrams. This module implements a faithful
//! simplification:
//!
//! * a 4-packet preamble `[1795, 1794, 1793, 1792]` announces a
//!   transmission (chosen above every data band so no encoded byte can be
//!   mistaken for a preamble);
//! * a header encodes the payload length and a CRC-8 of the payload;
//! * each payload byte `b` at offset `i` is sent as an *index packet*
//!   (`0x100 | (i & 0xff)`) followed by a *data packet* (`0x200 | b`);
//! * the payload is `ssid_len, ssid bytes, psk bytes`.
//!
//! The decoder is a resumable state machine ([`Decoder`]) that tolerates
//! duplicated packets (Wi-Fi retransmissions) and restarts cleanly on a new
//! preamble. Corruption is caught by the CRC.

use crate::wifi::WifiCredentials;
use crate::ProvisionError;

/// Datagram lengths forming the preamble. Strictly above every data band
/// (index `0x100..0x1ff`, data `0x200..0x2ff`, length `0x400..`, crc
/// `0x600..`), so mid-stream payload bytes can never alias a preamble
/// frame and reset the decoder.
pub const PREAMBLE: [u16; 4] = [0x703, 0x702, 0x701, 0x700];

const IDX_BASE: u16 = 0x100;
const DATA_BASE: u16 = 0x200;
const HDR_LEN_BASE: u16 = 0x400;
const HDR_CRC_BASE: u16 = 0x600;

/// CRC-8/ATM (poly 0x07) over a byte slice.
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

fn payload_of(creds: &WifiCredentials) -> Vec<u8> {
    let ssid = creds.ssid().as_bytes();
    let psk = creds.psk().as_bytes();
    let mut out = Vec::with_capacity(1 + ssid.len() + psk.len());
    out.push(ssid.len() as u8);
    out.extend_from_slice(ssid);
    out.extend_from_slice(psk);
    out
}

/// Encodes credentials into the sequence of datagram lengths the app
/// broadcasts.
///
/// The sequence can be replayed through the network simulator: each length
/// becomes one LAN broadcast whose payload size *is* the length.
pub fn encode(creds: &WifiCredentials) -> Vec<u16> {
    let payload = payload_of(creds);
    let mut out = Vec::with_capacity(8 + payload.len() * 2);
    out.extend_from_slice(&PREAMBLE);
    out.push(HDR_LEN_BASE | payload.len() as u16);
    out.push(HDR_CRC_BASE | u16::from(crc8(&payload)));
    for (i, &b) in payload.iter().enumerate() {
        out.push(IDX_BASE | (i as u16 & 0xff));
        out.push(DATA_BASE | u16::from(b));
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Counting preamble packets seen so far.
    Preamble(u8),
    /// Waiting for the length header.
    Len,
    /// Waiting for the CRC header.
    Crc,
    /// Receiving (index, data) pairs; `expect_data` is set between an index
    /// packet and its data packet.
    Data { expect_data: bool },
}

/// Resumable decoder run by the unprovisioned device.
///
/// Feed every observed datagram length to [`Decoder::observe`]; it returns
/// the decoded credentials once a complete, CRC-valid transmission has been
/// seen.
#[derive(Debug, Clone)]
pub struct Decoder {
    phase: Phase,
    expected_len: usize,
    expected_crc: u8,
    next_index: usize,
    payload: Vec<u8>,
}

impl Decoder {
    /// A decoder in its initial state.
    pub fn new() -> Self {
        Decoder {
            phase: Phase::Preamble(0),
            expected_len: 0,
            expected_crc: 0,
            next_index: 0,
            payload: Vec::new(),
        }
    }

    fn reset(&mut self) {
        *self = Decoder::new();
    }

    /// Consumes one observed datagram length.
    ///
    /// Returns `Ok(Some(creds))` when a full transmission decodes, and
    /// `Ok(None)` while more packets are needed. Unexpected lengths restart
    /// the state machine (real receivers do the same: they wait for the
    /// next preamble).
    ///
    /// # Errors
    ///
    /// Returns [`ProvisionError::ChecksumMismatch`] when a complete
    /// transmission fails its CRC, and [`ProvisionError::InvalidUtf8`] /
    /// [`ProvisionError::BadFraming`] when the payload is malformed. After
    /// an error the decoder has reset itself and can keep observing.
    pub fn observe(&mut self, len: u16) -> Result<Option<WifiCredentials>, ProvisionError> {
        // A preamble start always restarts reception.
        if len == PREAMBLE[0] && !matches!(self.phase, Phase::Preamble(_)) {
            self.reset();
        }
        match self.phase {
            Phase::Preamble(n) => {
                if len == PREAMBLE[n as usize] {
                    if n as usize == PREAMBLE.len() - 1 {
                        self.phase = Phase::Len;
                    } else {
                        self.phase = Phase::Preamble(n + 1);
                    }
                } else if len == PREAMBLE[0] {
                    self.phase = Phase::Preamble(1);
                } else {
                    self.phase = Phase::Preamble(0);
                }
                Ok(None)
            }
            Phase::Len => {
                if len & !0x1ff != HDR_LEN_BASE {
                    self.reset();
                    return Ok(None);
                }
                self.expected_len = usize::from(len & 0x1ff);
                self.phase = Phase::Crc;
                Ok(None)
            }
            Phase::Crc => {
                if len & !0xff != HDR_CRC_BASE {
                    self.reset();
                    return Ok(None);
                }
                self.expected_crc = (len & 0xff) as u8;
                if self.expected_len == 0 {
                    let r = self.finish();
                    self.reset();
                    return r.map(Some);
                }
                self.phase = Phase::Data { expect_data: false };
                Ok(None)
            }
            Phase::Data { expect_data } => {
                if expect_data {
                    if len & !0xff != DATA_BASE {
                        self.reset();
                        return Ok(None);
                    }
                    self.payload.push((len & 0xff) as u8);
                    self.next_index += 1;
                    if self.payload.len() == self.expected_len {
                        let r = self.finish();
                        self.reset();
                        return r.map(Some);
                    }
                    self.phase = Phase::Data { expect_data: false };
                    Ok(None)
                } else {
                    if len & !0xff != IDX_BASE {
                        self.reset();
                        return Ok(None);
                    }
                    let idx = usize::from(len & 0xff);
                    if idx == (self.next_index.wrapping_sub(1)) & 0xff && self.next_index > 0 {
                        // Duplicate of the previous pair: ignore the index
                        // and the following data packet by staying put.
                        self.phase = Phase::Data { expect_data: true };
                        self.payload.pop();
                        self.next_index -= 1;
                        return Ok(None);
                    }
                    if idx != self.next_index & 0xff {
                        self.reset();
                        return Ok(None);
                    }
                    self.phase = Phase::Data { expect_data: true };
                    Ok(None)
                }
            }
        }
    }

    fn finish(&self) -> Result<WifiCredentials, ProvisionError> {
        let actual = crc8(&self.payload);
        if actual != self.expected_crc {
            return Err(ProvisionError::ChecksumMismatch {
                expected: self.expected_crc,
                actual,
            });
        }
        if self.payload.is_empty() {
            return Err(ProvisionError::BadFraming {
                what: "empty payload",
            });
        }
        let ssid_len = usize::from(self.payload[0]);
        if 1 + ssid_len > self.payload.len() {
            return Err(ProvisionError::BadFraming {
                what: "ssid length exceeds payload",
            });
        }
        let ssid = std::str::from_utf8(&self.payload[1..1 + ssid_len])
            .map_err(|_| ProvisionError::InvalidUtf8)?;
        let psk = std::str::from_utf8(&self.payload[1 + ssid_len..])
            .map_err(|_| ProvisionError::InvalidUtf8)?;
        Ok(WifiCredentials::new(ssid, psk))
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

/// Decodes a complete observed length sequence in one call.
///
/// # Errors
///
/// Returns [`ProvisionError::Incomplete`] if the sequence ends before a
/// full transmission, or the first decoding error encountered.
pub fn decode(lengths: &[u16]) -> Result<WifiCredentials, ProvisionError> {
    let mut dec = Decoder::new();
    for &len in lengths {
        if let Some(creds) = dec.observe(len)? {
            return Ok(creds);
        }
    }
    Err(ProvisionError::Incomplete)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creds() -> WifiCredentials {
        WifiCredentials::new("HomeNet-5G", "correct horse battery")
    }

    #[test]
    fn roundtrip() {
        let lengths = encode(&creds());
        assert_eq!(decode(&lengths).unwrap(), creds());
    }

    #[test]
    fn roundtrip_empty_psk_and_short_ssid() {
        let c = WifiCredentials::new("a", "");
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn decoder_survives_leading_noise() {
        let mut lengths = vec![42, 1000, 77, 0x703, 99]; // false preamble start
        lengths.extend(encode(&creds()));
        assert_eq!(decode(&lengths).unwrap(), creds());
    }

    #[test]
    fn duplicated_pairs_are_tolerated() {
        let orig = encode(&creds());
        // Duplicate every (idx, data) pair — models 802.11 retransmission.
        let mut lengths = orig[..6].to_vec();
        for pair in orig[6..].chunks(2) {
            lengths.extend_from_slice(pair);
            lengths.extend_from_slice(pair);
        }
        assert_eq!(decode(&lengths).unwrap(), creds());
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let mut lengths = encode(&creds());
        // Flip one data packet's low bits.
        let i = lengths.len() - 1;
        lengths[i] ^= 0x01;
        match decode(&lengths) {
            Err(ProvisionError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_incomplete() {
        let lengths = encode(&creds());
        assert_eq!(
            decode(&lengths[..lengths.len() - 3]),
            Err(ProvisionError::Incomplete)
        );
    }

    #[test]
    fn decoder_restarts_on_new_preamble() {
        // A transmission aborts mid-way, then a fresh one succeeds.
        let mut lengths = encode(&creds());
        lengths.truncate(10);
        lengths.extend(encode(&creds()));
        assert_eq!(decode(&lengths).unwrap(), creds());
    }

    #[test]
    fn out_of_order_data_resets_cleanly() {
        let good = encode(&creds());
        let mut lengths = good[..6].to_vec();
        // Jump straight to index 5 — decoder must reset, not panic.
        lengths.push(IDX_BASE | 5);
        lengths.push(DATA_BASE | 0x41);
        lengths.extend(&good);
        assert_eq!(decode(&lengths).unwrap(), creds());
    }

    #[test]
    fn crc8_known_values() {
        assert_eq!(crc8(&[]), 0);
        assert_eq!(crc8(b"123456789"), 0xf4); // CRC-8/ATM check value
    }

    #[test]
    fn unicode_credentials_roundtrip() {
        let c = WifiCredentials::new("café-net", "pässwörd");
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }
}
