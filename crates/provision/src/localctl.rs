//! Local (LAN-only) control messages between the app and the device.
//!
//! Two operations matter to the binding life cycle:
//!
//! * **Session assignment** — in designs with post-binding authorization
//!   the cloud returns a session token to the binding user, and the *app*
//!   delivers it to the device over the LAN. A remote attacker cannot make
//!   this hop, which is exactly why a forged binding never yields control
//!   on those designs.
//! * **Factory reset** — the local trigger for binding revocation.

use crate::ProvisionError;

const TAG_SESSION: u8 = 0xB1;
const TAG_RESET: u8 = 0xB2;
const TAG_ACK: u8 = 0xB3;

/// A LAN-local control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalCtl {
    /// Deliver the post-binding session token to the device.
    SessionAssign {
        /// Raw token material.
        token: [u8; 16],
    },
    /// Ask the device to factory-reset.
    FactoryReset,
    /// Device acknowledgment.
    Ack,
}

impl LocalCtl {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            LocalCtl::SessionAssign { token } => {
                let mut out = vec![TAG_SESSION];
                out.extend_from_slice(token);
                out
            }
            LocalCtl::FactoryReset => vec![TAG_RESET],
            LocalCtl::Ack => vec![TAG_ACK],
        }
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// Returns [`ProvisionError`] on unknown tags or truncation.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProvisionError> {
        match bytes.first() {
            Some(&TAG_SESSION) => {
                if bytes.len() != 17 {
                    return Err(ProvisionError::Incomplete);
                }
                let mut token = [0u8; 16];
                token.copy_from_slice(&bytes[1..]);
                Ok(LocalCtl::SessionAssign { token })
            }
            Some(&TAG_RESET) if bytes.len() == 1 => Ok(LocalCtl::FactoryReset),
            Some(&TAG_ACK) if bytes.len() == 1 => Ok(LocalCtl::Ack),
            Some(_) => Err(ProvisionError::BadFraming {
                what: "local-ctl tag",
            }),
            None => Err(ProvisionError::Incomplete),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for msg in [
            LocalCtl::SessionAssign { token: [7; 16] },
            LocalCtl::FactoryReset,
            LocalCtl::Ack,
        ] {
            assert_eq!(LocalCtl::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(LocalCtl::decode(&[]).is_err());
        assert!(LocalCtl::decode(&[0x99]).is_err());
        assert!(LocalCtl::decode(&[TAG_SESSION, 1, 2]).is_err());
        assert!(LocalCtl::decode(&[TAG_RESET, 0]).is_err());
    }
}
