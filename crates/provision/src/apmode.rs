//! AP-mode (SoftAP) provisioning.
//!
//! The unprovisioned device opens its own access point (e.g.
//! `Vendor-Setup-1A2B`); the app joins it and posts the home network's
//! credentials, optionally together with pairing material (a `DevToken` or
//! `BindToken` obtained from the cloud — the delivery channel of the
//! paper's recommended designs). The exchange is a two-message protocol
//! encoded as tagged byte frames.

use crate::wifi::WifiCredentials;
use crate::ProvisionError;

const TAG_REQUEST: u8 = 0xA1;
const TAG_ACCEPTED: u8 = 0xA2;
const TAG_REJECTED: u8 = 0xA3;

/// Pairing material the app pushes to the device alongside Wi-Fi
/// credentials.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PairingMaterial {
    /// A device token to authenticate with (Figure 3 Type 1), if the design
    /// uses one.
    pub dev_token: Option<[u8; 16]>,
    /// A binding capability to submit back to the cloud (capability-based
    /// designs), if used.
    pub bind_token: Option<[u8; 16]>,
    /// The user's account credentials, for device-initiated ACL binding —
    /// the design the paper explicitly warns against.
    pub user_credentials: Option<(String, String)>,
}

/// The app → device provisioning request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisionRequest {
    /// Home network credentials.
    pub wifi: WifiCredentials,
    /// Pairing material per the vendor's design.
    pub pairing: PairingMaterial,
}

/// The device → app reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvisionReply {
    /// The device accepted the configuration and will join the network.
    Accepted {
        /// The device's self-reported identifier string (the app may use it
        /// for the subsequent cloud binding).
        device_info: String,
    },
    /// The device rejected the configuration.
    Rejected,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    out.push(b.len().min(255) as u8);
    out.extend_from_slice(&b[..b.len().min(255)]);
}

fn get_str<'a>(buf: &mut &'a [u8]) -> Result<&'a str, ProvisionError> {
    if buf.is_empty() {
        return Err(ProvisionError::Incomplete);
    }
    let len = usize::from(buf[0]);
    if buf.len() < 1 + len {
        return Err(ProvisionError::Incomplete);
    }
    let s = std::str::from_utf8(&buf[1..1 + len]).map_err(|_| ProvisionError::InvalidUtf8)?;
    *buf = &buf[1 + len..];
    Ok(s)
}

fn put_opt16(out: &mut Vec<u8>, v: &Option<[u8; 16]>) {
    match v {
        None => out.push(0),
        Some(bytes) => {
            out.push(1);
            out.extend_from_slice(bytes);
        }
    }
}

fn get_opt16(buf: &mut &[u8]) -> Result<Option<[u8; 16]>, ProvisionError> {
    if buf.is_empty() {
        return Err(ProvisionError::Incomplete);
    }
    let tag = buf[0];
    *buf = &buf[1..];
    match tag {
        0 => Ok(None),
        1 => {
            if buf.len() < 16 {
                return Err(ProvisionError::Incomplete);
            }
            let mut out = [0u8; 16];
            out.copy_from_slice(&buf[..16]);
            *buf = &buf[16..];
            Ok(Some(out))
        }
        _ => Err(ProvisionError::BadFraming { what: "option tag" }),
    }
}

impl ProvisionRequest {
    /// Serializes the request for transmission over the soft AP.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![TAG_REQUEST];
        put_str(&mut out, self.wifi.ssid());
        put_str(&mut out, self.wifi.psk());
        put_opt16(&mut out, &self.pairing.dev_token);
        put_opt16(&mut out, &self.pairing.bind_token);
        match &self.pairing.user_credentials {
            None => out.push(0),
            Some((uid, pw)) => {
                out.push(1);
                put_str(&mut out, uid);
                put_str(&mut out, pw);
            }
        }
        out
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProvisionError`] on truncation, bad tags, or invalid UTF-8.
    pub fn decode(mut buf: &[u8]) -> Result<Self, ProvisionError> {
        if buf.first() != Some(&TAG_REQUEST) {
            return Err(ProvisionError::BadFraming {
                what: "request tag",
            });
        }
        buf = &buf[1..];
        let ssid = get_str(&mut buf)?.to_owned();
        let psk = get_str(&mut buf)?.to_owned();
        let dev_token = get_opt16(&mut buf)?;
        let bind_token = get_opt16(&mut buf)?;
        if buf.is_empty() {
            return Err(ProvisionError::Incomplete);
        }
        let has_creds = buf[0];
        buf = &buf[1..];
        let user_credentials = match has_creds {
            0 => None,
            1 => {
                let uid = get_str(&mut buf)?.to_owned();
                let pw = get_str(&mut buf)?.to_owned();
                Some((uid, pw))
            }
            _ => {
                return Err(ProvisionError::BadFraming {
                    what: "credential flag",
                })
            }
        };
        if !buf.is_empty() {
            return Err(ProvisionError::BadFraming {
                what: "trailing bytes",
            });
        }
        Ok(ProvisionRequest {
            wifi: WifiCredentials::new(ssid, psk),
            pairing: PairingMaterial {
                dev_token,
                bind_token,
                user_credentials,
            },
        })
    }
}

impl ProvisionReply {
    /// Serializes the reply.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ProvisionReply::Accepted { device_info } => {
                let mut out = vec![TAG_ACCEPTED];
                put_str(&mut out, device_info);
                out
            }
            ProvisionReply::Rejected => vec![TAG_REJECTED],
        }
    }

    /// Parses a reply frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProvisionError`] on truncation or bad tags.
    pub fn decode(mut buf: &[u8]) -> Result<Self, ProvisionError> {
        match buf.first() {
            Some(&TAG_ACCEPTED) => {
                buf = &buf[1..];
                let device_info = get_str(&mut buf)?.to_owned();
                if !buf.is_empty() {
                    return Err(ProvisionError::BadFraming {
                        what: "trailing bytes",
                    });
                }
                Ok(ProvisionReply::Accepted { device_info })
            }
            Some(&TAG_REJECTED) if buf.len() == 1 => Ok(ProvisionReply::Rejected),
            Some(_) => Err(ProvisionError::BadFraming { what: "reply tag" }),
            None => Err(ProvisionError::Incomplete),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> ProvisionRequest {
        ProvisionRequest {
            wifi: WifiCredentials::new("HomeNet", "pa55word"),
            pairing: PairingMaterial {
                dev_token: Some([1; 16]),
                bind_token: None,
                user_credentials: Some(("alice@example.com".into(), "hunter2".into())),
            },
        }
    }

    #[test]
    fn request_roundtrip_full() {
        let r = request();
        assert_eq!(ProvisionRequest::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn request_roundtrip_minimal() {
        let r = ProvisionRequest {
            wifi: WifiCredentials::new("n", ""),
            pairing: PairingMaterial::default(),
        };
        assert_eq!(ProvisionRequest::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn reply_roundtrips() {
        let a = ProvisionReply::Accepted {
            device_info: "mac:aa:bb:cc:dd:ee:ff".into(),
        };
        assert_eq!(ProvisionReply::decode(&a.encode()).unwrap(), a);
        let r = ProvisionReply::Rejected;
        assert_eq!(ProvisionReply::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = request().encode();
        for cut in 0..bytes.len() {
            assert!(
                ProvisionRequest::decode(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn wrong_tag_rejected() {
        assert!(matches!(
            ProvisionRequest::decode(&[0xFF, 0, 0]),
            Err(ProvisionError::BadFraming {
                what: "request tag"
            })
        ));
        assert!(ProvisionReply::decode(&[0x00]).is_err());
        assert!(ProvisionReply::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = request().encode();
        bytes.push(0);
        assert!(matches!(
            ProvisionRequest::decode(&bytes),
            Err(ProvisionError::BadFraming {
                what: "trailing bytes"
            })
        ));
    }
}
