//! Property tests for the provisioning codecs.

// Test code: panicking on unexpected state is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use rb_provision::apmode::{PairingMaterial, ProvisionReply, ProvisionRequest};
use rb_provision::label::DeviceLabel;
use rb_provision::localctl::LocalCtl;
use rb_provision::{airkiss, smartconfig, WifiCredentials};
use rb_wire::ids::{DevId, MacAddr};

fn arb_creds() -> impl Strategy<Value = WifiCredentials> {
    ("[ -~]{1,32}", "[ -~]{0,63}").prop_map(|(ssid, psk)| WifiCredentials::new(ssid, psk))
}

fn arb_dev_id() -> impl Strategy<Value = DevId> {
    prop_oneof![
        any::<[u8; 6]>().prop_map(|b| DevId::Mac(MacAddr::new(b))),
        (any::<u16>(), any::<u64>()).prop_map(|(v, s)| DevId::Serial { vendor: v, seq: s }),
        (1u8..=9).prop_flat_map(|w| {
            (0..10u64.pow(u32::from(w))).prop_map(move |v| DevId::Digits {
                value: v as u32,
                width: w,
            })
        }),
        any::<u128>().prop_map(DevId::Uuid),
    ]
}

proptest! {
    #[test]
    fn smartconfig_roundtrips_any_credentials(creds in arb_creds()) {
        let lengths = smartconfig::encode(&creds);
        prop_assert_eq!(smartconfig::decode(&lengths).unwrap(), creds);
    }

    #[test]
    fn smartconfig_decoder_never_panics_on_noise(
        lengths in proptest::collection::vec(any::<u16>(), 0..512)
    ) {
        let mut dec = smartconfig::Decoder::new();
        for len in lengths {
            let _ = dec.observe(len);
        }
    }

    #[test]
    fn smartconfig_survives_interleaved_noise(
        creds in arb_creds(),
        noise in proptest::collection::vec(0u16..90, 0..16),
    ) {
        // Noise below the encoding bands (all real frames are >= 0x100)
        // must not derail an in-progress reception... as long as it comes
        // before the preamble.
        let mut lengths: Vec<u16> = noise;
        lengths.extend(smartconfig::encode(&creds));
        prop_assert_eq!(smartconfig::decode(&lengths).unwrap(), creds);
    }

    #[test]
    fn airkiss_roundtrips_any_credentials(creds in arb_creds()) {
        let lengths = airkiss::encode(&creds);
        prop_assert_eq!(airkiss::decode(&lengths).unwrap(), creds);
    }

    #[test]
    fn airkiss_rejects_any_single_data_corruption(creds in arb_creds(), pos in any::<prop::sample::Index>(), flip in 1u16..0xff) {
        let mut lengths = airkiss::encode(&creds);
        let i = pos.index(lengths.len());
        lengths[i] ^= flip;
        // Either an error, or (if the corruption landed harmlessly, e.g.
        // flipping high bits of a field that is re-masked) the same creds —
        // never silently *different* credentials.
        if let Ok(decoded) = airkiss::decode(&lengths) { prop_assert_eq!(decoded, creds) }
    }

    #[test]
    fn provision_request_roundtrips(
        creds in arb_creds(),
        dev_token in proptest::option::of(any::<[u8; 16]>()),
        bind_token in proptest::option::of(any::<[u8; 16]>()),
        user in proptest::option::of(("[a-z0-9@.]{1,30}".prop_map(String::from), "[ -~]{0,30}".prop_map(String::from))),
    ) {
        let req = ProvisionRequest {
            wifi: creds,
            pairing: PairingMaterial { dev_token, bind_token, user_credentials: user },
        };
        prop_assert_eq!(ProvisionRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn provision_reply_roundtrips(info in "[ -~]{0,100}") {
        let reply = ProvisionReply::Accepted { device_info: info };
        prop_assert_eq!(ProvisionReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn labels_roundtrip_for_any_device(dev_id in arb_dev_id(), code in any::<u16>()) {
        let label = DeviceLabel::new(dev_id, code);
        prop_assert_eq!(DeviceLabel::scan(&label.print()).unwrap(), label);
    }

    #[test]
    fn localctl_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = LocalCtl::decode(&bytes);
        let _ = ProvisionRequest::decode(&bytes);
        let _ = ProvisionReply::decode(&bytes);
        let _ = DeviceLabel::scan(std::str::from_utf8(&bytes).unwrap_or(""));
    }
}
