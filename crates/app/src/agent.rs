//! The companion-app actor.

use std::collections::VecDeque;

use rb_core::design::{BindScheme, DeviceAuthScheme, SetupOrder, VendorDesign};
use rb_netsim::telemetry::SpanId;
use rb_netsim::{Actor, Ctx, Dest, LanId, NodeId, Retry, RetryPolicy, Telemetry, Tick, TimerKey};
use rb_provision::apmode::{PairingMaterial, ProvisionReply, ProvisionRequest};
use rb_provision::discovery::{SearchRequest, SearchResponse, SearchTarget};
use rb_provision::localctl::LocalCtl;
use rb_provision::{airkiss, smartconfig, WifiCredentials};
use rb_wire::codec::CodecKind;
use rb_wire::envelope::{CorrId, Envelope};
use rb_wire::ids::DevId;
use rb_wire::messages::{BindPayload, ControlAction, DenyReason, Message, Response, UnbindPayload};
use rb_wire::telemetry::TelemetryFrame;
use rb_wire::tokens::{BindToken, DevToken, SessionToken, UserId, UserPw, UserToken};

const TIMER_TICK: TimerKey = 1;

/// How the app broadcasts Wi-Fi credentials during provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WifiBroadcast {
    /// SmartConfig-style length encoding.
    SmartConfig,
    /// Airkiss-style length encoding.
    Airkiss,
}

/// Static configuration of one app instance.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// The vendor design the app implements.
    pub design: VendorDesign,
    /// The cloud's node.
    pub cloud: NodeId,
    /// The home LAN the phone is on.
    pub lan: LanId,
    /// Account identifier.
    pub user_id: UserId,
    /// Account password.
    pub user_pw: UserPw,
    /// Home Wi-Fi credentials to provision into the device.
    pub wifi: WifiCredentials,
    /// Device ID read off the printed label, for designs whose setup binds
    /// before the device is online (`SetupOrder::BindFirst`).
    pub known_label: Option<DevId>,
    /// Human delay between device setup and completing the binding in the
    /// app — the A4-2 window.
    pub user_bind_delay: u64,
    /// Progress-loop period.
    pub poll_every: u64,
    /// Resend period for unanswered steps (the backoff base).
    pub retry_every: u64,
    /// Upper bound on the backed-off resend period.
    pub retry_cap: u64,
    /// Jitter on resend delays, in per-mille of the delay.
    pub retry_jitter_per_mille: u16,
    /// Consecutive unanswered resends of one step before the app gives up
    /// ([`AppEvent::GaveUp`]) instead of wedging. Answered steps — even
    /// denials — reset the count.
    pub retry_budget: u32,
    /// Which length-encoding the provisioning broadcast uses.
    pub wifi_broadcast: WifiBroadcast,
}

impl AppConfig {
    /// A configuration with sensible defaults (5 s human delay, 20-tick
    /// poll loop).
    pub fn new(
        design: VendorDesign,
        cloud: NodeId,
        lan: LanId,
        user_id: UserId,
        user_pw: UserPw,
    ) -> Self {
        AppConfig {
            design,
            cloud,
            lan,
            user_id,
            user_pw,
            wifi: WifiCredentials::new("HomeNet", "home-psk-123"),
            known_label: None,
            user_bind_delay: 5_000,
            poll_every: 20,
            retry_every: 400,
            retry_cap: 3_200,
            retry_jitter_per_mille: 250,
            retry_budget: 24,
            wifi_broadcast: WifiBroadcast::SmartConfig,
        }
    }

    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::new(self.retry_every, self.retry_cap)
            .jitter(self.retry_jitter_per_mille)
            .budget(self.retry_budget)
    }
}

/// Events the app observed (for assertions and experiment output).
#[derive(Debug, Clone, PartialEq)]
pub enum AppEvent {
    /// Logged in.
    LoggedIn,
    /// Device discovered on the LAN.
    Discovered(DevId),
    /// Provisioning accepted by the device.
    Provisioned,
    /// Binding created.
    Bound,
    /// A request was denied.
    Denied(DenyReason),
    /// The cloud told us our binding is gone.
    BindingRevoked,
    /// Telemetry arrived from "our" device.
    Telemetry(Vec<TelemetryFrame>),
    /// A control round-trip completed.
    ControlOk,
    /// The retry budget ran out with the cloud unreachable: the setup flow
    /// aborted cleanly (an error dialog, not a spinner).
    GaveUp,
}

/// Counters for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppStats {
    /// Bind attempts sent.
    pub bind_attempts: u64,
    /// Denials received.
    pub denials: u64,
    /// Telemetry pushes received.
    pub telemetry_pushes: u64,
    /// Times the binding was revoked under us.
    pub revocations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Login,
    ReqDevToken,
    ReqBindToken,
    Discover,
    Provision,
    WaitWindow,
    Bind,
    AwaitDeviceBind,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Await {
    None,
    Response(CorrId),
    Discovery,
    ProvisionReply,
}

/// The companion-app actor. See the [crate docs](crate) for the flow.
#[derive(Debug)]
pub struct AppAgent {
    config: AppConfig,
    steps: Vec<Step>,
    step_idx: usize,
    awaiting: Await,
    entered_step_at: Tick,
    last_send_at: Tick,
    // Credentials and material.
    user_token: Option<UserToken>,
    dev_token: Option<DevToken>,
    bind_token: Option<BindToken>,
    session: Option<SessionToken>,
    // Discovered device.
    device_node: Option<NodeId>,
    dev_id: Option<DevId>,
    // Outcome state.
    bound: bool,
    /// Backoff state for the current step's resends.
    retry: Retry,
    /// Current resend timeout (grows with the backoff schedule).
    cur_delay: u64,
    /// Set when the retry budget ran out: the flow has cleanly aborted and
    /// the poll loop is stopped.
    aborted: bool,
    /// Shared metrics registry (a private default until the harness wires
    /// in the world-wide one via [`AppAgent::set_telemetry`]).
    telemetry: Telemetry,
    /// Wire format spoken with the cloud (classic by default).
    codec: CodecKind,
    /// Open `app_setup` span: flow start until the binding lands. Give-ups
    /// leave it open, so `span_ticks{name="app_setup"}` holds only
    /// converged setups.
    setup_span: Option<SpanId>,
    corr: u64,
    control_queue: VecDeque<(Option<DevId>, ControlAction)>,
    share_queue: VecDeque<(UserId, bool)>,
    unbind_queued: bool,
    /// Observed events, in order.
    pub events: Vec<AppEvent>,
    /// Counters.
    pub stats: AppStats,
    /// Schedule entries returned by the last `QuerySchedule`.
    pub last_schedule: Vec<rb_wire::telemetry::ScheduleEntry>,
    /// Telemetry returned by the last `QueryTelemetry`.
    pub last_queried_telemetry: Vec<TelemetryFrame>,
}

impl AppAgent {
    /// Creates an app ready to run the setup flow for its design.
    pub fn new(config: AppConfig) -> Self {
        let mut steps = vec![Step::Login];
        if config.design.auth == DeviceAuthScheme::DevToken {
            steps.push(Step::ReqDevToken);
        }
        if config.design.bind == BindScheme::Capability {
            steps.push(Step::ReqBindToken);
        }
        match (config.design.setup_order, config.design.bind) {
            (SetupOrder::BindFirst, BindScheme::AclApp) => {
                // The user types the label in first, binds, then sets the
                // device up.
                steps.push(Step::Bind);
                steps.push(Step::Discover);
                steps.push(Step::Provision);
            }
            (_, BindScheme::AclApp) => {
                steps.push(Step::Discover);
                steps.push(Step::Provision);
                steps.push(Step::WaitWindow);
                steps.push(Step::Bind);
            }
            (_, BindScheme::AclDevice | BindScheme::Capability) => {
                steps.push(Step::Discover);
                steps.push(Step::Provision);
                steps.push(Step::AwaitDeviceBind);
            }
        }
        steps.push(Step::Done);
        let retry = Retry::new(config.retry_policy());
        let cur_delay = config.retry_every;
        AppAgent {
            config,
            steps,
            step_idx: 0,
            awaiting: Await::None,
            entered_step_at: Tick::ZERO,
            last_send_at: Tick::ZERO,
            user_token: None,
            dev_token: None,
            bind_token: None,
            session: None,
            device_node: None,
            dev_id: None,
            bound: false,
            retry,
            cur_delay,
            aborted: false,
            telemetry: Telemetry::new(),
            codec: CodecKind::default(),
            setup_span: None,
            corr: 0,
            control_queue: VecDeque::new(),
            share_queue: VecDeque::new(),
            unbind_queued: false,
            events: Vec::new(),
            stats: AppStats::default(),
            last_schedule: Vec::new(),
            last_queried_telemetry: Vec::new(),
        }
    }

    /// Points the agent at a shared metrics registry. Call before the sim
    /// starts so every counter lands in the world-wide snapshot.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Selects the wire format for cloud traffic. Must match the cloud's;
    /// `WorldBuilder::with_codec` threads one choice through every agent.
    pub fn set_codec(&mut self, codec: CodecKind) {
        self.codec = codec;
    }

    /// Whether the setup flow completed and the binding is (still) held.
    pub fn is_bound(&self) -> bool {
        self.bound
    }

    /// Whether the setup flow has reached its final step.
    pub fn setup_complete(&self) -> bool {
        self.steps[self.step_idx] == Step::Done
    }

    /// Whether the app ran out of retry budget and cleanly aborted the
    /// flow (it will stay silent until [`AppAgent::restart_setup`]).
    pub fn gave_up(&self) -> bool {
        self.aborted
    }

    /// The user token, once logged in.
    pub fn user_token(&self) -> Option<UserToken> {
        self.user_token
    }

    /// The device the app paired with.
    pub fn dev_id(&self) -> Option<&DevId> {
        self.dev_id.as_ref()
    }

    /// Queues a remote-control action on the paired device (runs once
    /// bound).
    pub fn queue_control(&mut self, action: ControlAction) {
        self.control_queue.push_back((None, action));
    }

    /// Queues a remote-control action on an arbitrary device — e.g. one
    /// another user shared with this account.
    pub fn queue_control_device(&mut self, dev_id: DevId, action: ControlAction) {
        self.control_queue.push_back((Some(dev_id), action));
    }

    /// Queues a share grant (`grant = true`) or revocation for the paired
    /// device.
    pub fn queue_share(&mut self, grantee: UserId, grant: bool) {
        self.share_queue.push_back((grantee, grant));
    }

    /// Queues an unbind request ("remove device" in the app).
    pub fn queue_unbind(&mut self) {
        self.unbind_queued = true;
    }

    /// Restarts the setup flow from the top — the user tapping "add
    /// device" again after a revocation. Credentials and discovery results
    /// are re-acquired from scratch.
    pub fn restart_setup(&mut self) {
        self.step_idx = 0;
        self.awaiting = Await::None;
        self.entered_step_at = Tick::ZERO;
        self.last_send_at = Tick::ZERO;
        self.bound = false;
        self.reset_retry();
        self.aborted = false;
        // Abandon (don't close) the previous attempt's span: an unclosed
        // span marks a setup that never converged, and the poll loop opens
        // a fresh one for the new attempt.
        self.setup_span = None;
    }

    /// Opens the `app_setup` span unless one is already running or the
    /// binding is already held (BindFirst designs bind mid-flow).
    fn begin_setup_span(&mut self, now: Tick) {
        if self.setup_span.is_some() || self.bound || self.setup_complete() {
            return;
        }
        self.setup_span = Some(rb_telemetry::span!(
            self.telemetry,
            now.as_u64(),
            "app_setup",
            user = self.config.user_id,
        ));
    }

    /// Marks the binding as held: counts it and closes the setup span.
    fn note_bound(&mut self, now: Tick) {
        self.telemetry.incr("app_binds_total");
        if let Some(id) = self.setup_span.take() {
            self.telemetry.end_span(id, now.as_u64());
        }
    }

    /// Fresh backoff state: called whenever the peer answered (the budget
    /// counts only *consecutive* unanswered sends) or a new step starts.
    fn reset_retry(&mut self) {
        self.retry.reset();
        self.cur_delay = self.config.retry_every;
    }

    fn current_step(&self) -> Step {
        self.steps[self.step_idx]
    }

    fn advance(&mut self, now: Tick) {
        self.step_idx = (self.step_idx + 1).min(self.steps.len() - 1);
        self.awaiting = Await::None;
        self.entered_step_at = now;
        self.last_send_at = Tick::ZERO;
        self.reset_retry();
    }

    fn send_request(&mut self, ctx: &mut Ctx<'_>, msg: Message) -> CorrId {
        self.corr += 1;
        let corr = CorrId(self.corr);
        let env = Envelope::Request { corr, msg };
        ctx.send(
            Dest::Unicast(self.config.cloud),
            env.encode_with(self.codec).to_vec(),
        );
        self.last_send_at = ctx.now();
        corr
    }

    fn enter_step(&mut self, ctx: &mut Ctx<'_>) {
        match self.current_step() {
            Step::Login => {
                let corr = self.send_request(
                    ctx,
                    Message::Login {
                        user_id: self.config.user_id.clone(),
                        user_pw: self.config.user_pw.clone(),
                    },
                );
                self.awaiting = Await::Response(corr);
            }
            Step::ReqDevToken => {
                if let Some(user_token) = self.user_token {
                    let corr = self.send_request(ctx, Message::RequestDevToken { user_token });
                    self.awaiting = Await::Response(corr);
                }
            }
            Step::ReqBindToken => {
                if let Some(user_token) = self.user_token {
                    let corr = self.send_request(ctx, Message::RequestBindToken { user_token });
                    self.awaiting = Await::Response(corr);
                }
            }
            Step::Discover => {
                let req = SearchRequest {
                    target: SearchTarget::Vendor(self.config.design.vendor.clone()),
                };
                ctx.send(Dest::Broadcast(self.config.lan), req.encode());
                self.last_send_at = ctx.now();
                self.awaiting = Await::Discovery;
            }
            Step::Provision => {
                let Some(device_node) = self.device_node else {
                    return;
                };
                let pairing = PairingMaterial {
                    dev_token: self.dev_token.map(|t| *t.as_bytes()),
                    bind_token: self.bind_token.map(|t| *t.as_bytes()),
                    user_credentials: if self.config.design.bind == BindScheme::AclDevice {
                        Some((
                            self.config.user_id.as_str().to_owned(),
                            self.config.user_pw.expose().to_owned(),
                        ))
                    } else {
                        None
                    },
                };
                // The wifi credentials ride on broadcast datagram lengths
                // (SmartConfig or Airkiss, per vendor ecosystem).
                let lengths = match self.config.wifi_broadcast {
                    WifiBroadcast::SmartConfig => smartconfig::encode(&self.config.wifi),
                    WifiBroadcast::Airkiss => airkiss::encode(&self.config.wifi),
                };
                for len in lengths {
                    ctx.send(
                        Dest::Broadcast(self.config.lan),
                        vec![0u8; usize::from(len)],
                    );
                }
                let req = ProvisionRequest {
                    wifi: self.config.wifi.clone(),
                    pairing,
                };
                ctx.send(Dest::Unicast(device_node), req.encode());
                self.last_send_at = ctx.now();
                self.awaiting = Await::ProvisionReply;
            }
            Step::WaitWindow => {
                // Human at work; nothing on the wire.
                self.awaiting = Await::None;
            }
            Step::Bind => {
                let Some(user_token) = self.user_token else {
                    return;
                };
                let dev_id = match (&self.dev_id, &self.config.known_label) {
                    (Some(id), _) => id.clone(),
                    (None, Some(label)) => label.clone(),
                    (None, None) => return,
                };
                self.dev_id = Some(dev_id.clone());
                let corr = self.send_request(
                    ctx,
                    Message::Bind(BindPayload::AclApp { dev_id, user_token }),
                );
                self.stats.bind_attempts += 1;
                self.telemetry.incr("app_bind_attempts_total");
                self.awaiting = Await::Response(corr);
            }
            Step::AwaitDeviceBind => {
                // Poll the shadow until the device-side bind lands.
                if let Some(dev_id) = self.dev_id.clone() {
                    let corr = self.send_request(ctx, Message::QueryShadow { dev_id });
                    self.awaiting = Await::Response(corr);
                }
            }
            Step::Done => {}
        }
    }

    fn on_step_response(&mut self, ctx: &mut Ctx<'_>, rsp: &Response) {
        let now = ctx.now();
        match (self.current_step(), rsp) {
            (Step::Login, Response::LoginOk { user_token }) => {
                self.user_token = Some(*user_token);
                self.events.push(AppEvent::LoggedIn);
                self.advance(now);
            }
            (Step::ReqDevToken, Response::DevTokenIssued { dev_token }) => {
                self.dev_token = Some(*dev_token);
                self.advance(now);
            }
            (Step::ReqBindToken, Response::BindTokenIssued { bind_token }) => {
                self.bind_token = Some(*bind_token);
                self.advance(now);
            }
            (Step::Bind, Response::Bound { session }) => {
                self.bound = true;
                self.note_bound(now);
                self.session = *session;
                self.events.push(AppEvent::Bound);
                ctx.mark("app bound");
                // Deliver the session token to the device over the LAN.
                if let (Some(s), Some(node)) = (session, self.device_node) {
                    ctx.send(
                        Dest::Unicast(node),
                        LocalCtl::SessionAssign {
                            token: *s.as_bytes(),
                        }
                        .encode(),
                    );
                }
                self.advance(now);
            }
            (Step::AwaitDeviceBind, Response::ShadowState { bound: true, .. }) => {
                self.bound = true;
                self.note_bound(now);
                self.events.push(AppEvent::Bound);
                self.advance(now);
            }
            (Step::AwaitDeviceBind, Response::ShadowState { bound: false, .. }) => {
                // Keep polling.
                self.awaiting = Await::None;
            }
            (_, Response::Denied { reason }) => {
                self.events.push(AppEvent::Denied(*reason));
                self.stats.denials += 1;
                self.telemetry.incr("app_denials_total");
                // Retry the step on its next poll.
                self.awaiting = Await::None;
            }
            _ => {}
        }
    }

    fn handle_push(&mut self, ctx: &mut Ctx<'_>, rsp: Response) {
        match rsp {
            Response::TelemetryPush { telemetry, .. } => {
                self.stats.telemetry_pushes += 1;
                self.telemetry.incr("app_telemetry_pushes_total");
                self.events.push(AppEvent::Telemetry(telemetry));
            }
            Response::BindingRevoked => {
                self.bound = false;
                self.stats.revocations += 1;
                self.telemetry.incr("app_revocations_total");
                self.events.push(AppEvent::BindingRevoked);
                // Causally tied to whatever message displaced the binding —
                // the victim-side evidence in a forensic reconstruction.
                ctx.mark("app binding-revoked");
            }
            Response::Bound { session } => {
                // Capability designs: the cloud tells the user the device
                // confirmed the binding.
                self.bound = true;
                self.note_bound(ctx.now());
                self.session = session;
                self.events.push(AppEvent::Bound);
                ctx.mark("app bound");
                if let (Some(s), Some(node)) = (session, self.device_node) {
                    ctx.send(
                        Dest::Unicast(node),
                        LocalCtl::SessionAssign {
                            token: *s.as_bytes(),
                        }
                        .encode(),
                    );
                }
            }
            _ => {}
        }
    }

    fn pump_user_actions(&mut self, ctx: &mut Ctx<'_>) {
        if !self.setup_complete() {
            return;
        }
        if self.unbind_queued {
            if let (Some(user_token), Some(dev_id)) = (self.user_token, self.dev_id.clone()) {
                self.send_request(
                    ctx,
                    Message::Unbind(UnbindPayload::DevIdUserToken { dev_id, user_token }),
                );
                self.unbind_queued = false;
            }
        }
        if let Some((grantee, grant)) = self.share_queue.pop_front() {
            if let (Some(user_token), Some(dev_id)) = (self.user_token, self.dev_id.clone()) {
                let msg = if grant {
                    Message::Share {
                        dev_id,
                        user_token,
                        grantee,
                    }
                } else {
                    Message::Unshare {
                        dev_id,
                        user_token,
                        grantee,
                    }
                };
                self.send_request(ctx, msg);
            }
        }
        // Controls on the paired device wait until our own binding exists;
        // controls on an explicitly named (shared) device only need a login.
        let ready = match self.control_queue.front() {
            Some((None, _)) => self.bound,
            Some((Some(_), _)) => true,
            None => false,
        };
        if ready {
            if let Some((target, action)) = self.control_queue.pop_front() {
                let dev_id = target.or_else(|| self.dev_id.clone());
                if let (Some(user_token), Some(dev_id)) = (self.user_token, dev_id) {
                    self.send_request(
                        ctx,
                        Message::Control {
                            dev_id,
                            user_token,
                            session: self.session,
                            action,
                        },
                    );
                }
            }
        }
    }
}

impl Actor for AppAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.entered_step_at = ctx.now();
        self.begin_setup_span(ctx.now());
        self.enter_step(ctx);
        ctx.set_timer(self.config.poll_every, TIMER_TICK);
    }

    fn on_power(&mut self, ctx: &mut Ctx<'_>, powered: bool) {
        if powered {
            if self.aborted {
                // The flow already gave up; a reboot does not resurrect it
                // (only `restart_setup` does).
                return;
            }
            // Phone back on: resume (or start) the flow. A timer dropped
            // while powered off would otherwise end the poll loop.
            self.entered_step_at = ctx.now();
            self.reset_retry();
            self.begin_setup_span(ctx.now());
            self.enter_step(ctx);
            ctx.set_timer(self.config.poll_every, TIMER_TICK);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        let payload = bytes::Bytes::copy_from_slice(payload);
        self.on_packet_bytes(ctx, from, &payload);
    }

    fn on_packet_bytes(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &bytes::Bytes) {
        if from == self.config.cloud {
            match Envelope::decode_with(self.codec, payload) {
                Ok(Envelope::Response {
                    corr: CorrId(0),
                    rsp,
                }) => {
                    self.handle_push(ctx, rsp);
                }
                Ok(Envelope::Response { corr, rsp }) => {
                    if self.awaiting == Await::Response(corr) {
                        // An answer — even a denial — means the path works;
                        // only consecutive silence burns the retry budget.
                        self.reset_retry();
                        self.on_step_response(ctx, &rsp);
                    } else {
                        match rsp {
                            Response::ControlOk {
                                schedule,
                                telemetry,
                            } => {
                                self.last_schedule = schedule;
                                self.last_queried_telemetry = telemetry;
                                self.events.push(AppEvent::ControlOk);
                            }
                            Response::Denied { reason } => {
                                self.stats.denials += 1;
                                self.telemetry.incr("app_denials_total");
                                self.events.push(AppEvent::Denied(reason));
                            }
                            Response::Unbound => self.bound = false,
                            other => self.handle_push(ctx, other),
                        }
                    }
                }
                _ => {}
            }
            return;
        }
        // LAN traffic.
        if self.awaiting == Await::Discovery {
            if let Ok(rsp) = SearchResponse::decode(payload) {
                if rsp.vendor == self.config.design.vendor {
                    self.device_node = Some(from);
                    self.dev_id = Some(rsp.dev_id.clone());
                    self.events.push(AppEvent::Discovered(rsp.dev_id));
                    let now = ctx.now();
                    self.advance(now);
                    self.enter_step(ctx);
                }
            }
            return;
        }
        if self.awaiting == Await::ProvisionReply {
            if let Ok(ProvisionReply::Accepted { .. }) = ProvisionReply::decode(payload) {
                self.events.push(AppEvent::Provisioned);
                let now = ctx.now();
                self.advance(now);
                self.enter_step(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: TimerKey) {
        if key != TIMER_TICK {
            return;
        }
        if self.aborted {
            // Clean abort: the poll loop stops (no reschedule), the actor
            // goes silent, and the sim can quiesce.
            return;
        }
        let now = ctx.now();
        // A restart after a give-up re-enters here with no span running.
        self.begin_setup_span(now);
        match self.current_step() {
            Step::Done => self.pump_user_actions(ctx),
            Step::WaitWindow => {
                if now - self.entered_step_at >= self.config.user_bind_delay {
                    self.advance(now);
                    self.enter_step(ctx);
                }
            }
            _ => {
                if self.awaiting == Await::None {
                    // Not waiting on an answer (fresh step, or the last
                    // answer told us to try again): send at poll cadence.
                    self.enter_step(ctx);
                } else {
                    let stale = self.last_send_at == Tick::ZERO
                        || now - self.last_send_at >= self.cur_delay;
                    if stale {
                        // Unanswered past the current timeout: resend with
                        // backoff, or give up when the budget is spent.
                        match self.retry.next(ctx.rng()) {
                            Some(delay) => {
                                self.cur_delay = delay;
                                self.telemetry.incr("app_retries_total");
                                self.telemetry.rate_event("app_retries", now.as_u64());
                                self.enter_step(ctx);
                            }
                            None => {
                                self.aborted = true;
                                self.telemetry.incr("app_giveups_total");
                                self.events.push(AppEvent::GaveUp);
                                return;
                            }
                        }
                    }
                }
            }
        }
        ctx.set_timer(self.config.poll_every, TIMER_TICK);
    }
}
