//! # rb-app
//!
//! The simulated companion app (the paper's "user agent"). An
//! [`AppAgent`] walks the remote-binding life cycle of Figure 1 on behalf
//! of its user:
//!
//! 1. log in to the cloud (`UserToken`);
//! 2. obtain pairing material where the design calls for it (`DevToken`,
//!    `BindToken`);
//! 3. discover the device on the LAN (SSDP-style) and provision it
//!    (SmartConfig length broadcast or AP-mode request);
//! 4. create the binding — before or after device registration, matching
//!    the vendor's setup order — and deliver the post-binding session
//!    token to the device over the LAN when one is issued;
//! 5. control the device remotely and revoke the binding.
//!
//! The *deliberate human delay* between the device coming online and the
//! user completing the binding ([`AppConfig::user_bind_delay`]) is the
//! online-unbound window that attack A4-2 races.

mod agent;

pub use agent::{AppAgent, AppConfig, AppEvent, AppStats, WifiBroadcast};
