//! App-agent flow tests against scripted mock clouds: step ordering per
//! design, retry behaviour, and denial handling.

// Test code: panicking on unexpected state is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rb_app::{AppAgent, AppConfig};
use rb_core::vendors;
use rb_netsim::{Actor, Ctx, Dest, LanId, LinkQuality, NodeConfig, NodeId, Simulation, Tick};
use rb_provision::apmode::{ProvisionReply, ProvisionRequest};
use rb_provision::discovery::{SearchRequest, SearchResponse};
use rb_wire::envelope::Envelope;
use rb_wire::ids::DevId;
use rb_wire::messages::{DenyReason, Message, Response};
use rb_wire::tokens::{DevToken, UserId, UserPw, UserToken};

const LAN: LanId = LanId(0);

fn dev_id() -> DevId {
    DevId::Uuid(0xA11CE)
}

/// A mock cloud that answers every request positively and records the
/// request order; optionally swallows the first `drop_first` requests.
struct MockCloud {
    order: Vec<&'static str>,
    drop_first: usize,
    deny_bind: bool,
}

impl Actor for MockCloud {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        let Ok(Envelope::Request { corr, msg }) = Envelope::decode(payload) else {
            return;
        };
        self.order.push(msg.kind_str());
        if self.drop_first > 0 {
            self.drop_first -= 1;
            return; // simulate a lost response
        }
        let rsp = match &msg {
            Message::Login { .. } => Response::LoginOk {
                user_token: UserToken::from_entropy(1),
            },
            Message::RequestDevToken { .. } => Response::DevTokenIssued {
                dev_token: DevToken::from_entropy(2),
            },
            Message::Bind(_) if self.deny_bind => Response::Denied {
                reason: DenyReason::AlreadyBound,
            },
            Message::Bind(_) => Response::Bound { session: None },
            Message::QueryShadow { .. } => Response::ShadowState {
                online: true,
                bound: true,
            },
            _ => Response::Denied {
                reason: DenyReason::UnsupportedOperation,
            },
        };
        ctx.send(
            Dest::Unicast(from),
            Envelope::Response { corr, rsp }.encode().to_vec(),
        );
    }
}

/// A fake device on the LAN: answers discovery and accepts provisioning.
struct FakeDevice;

impl Actor for FakeDevice {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        // Answer every search: the mock stands in for any vendor.
        if SearchRequest::decode(payload).is_ok() {
            let rsp = SearchResponse {
                vendor: "MockVendor".into(),
                model: "unit".into(),
                dev_id: dev_id(),
            };
            ctx.send(Dest::Unicast(from), rsp.encode());
            return;
        }
        if ProvisionRequest::decode(payload).is_ok() {
            let reply = ProvisionReply::Accepted {
                device_info: "ok".into(),
            };
            ctx.send(Dest::Unicast(from), reply.encode());
        }
    }
}

fn run_flow(
    mut design: rb_core::design::VendorDesign,
    drop_first: usize,
    deny_bind: bool,
    until: u64,
) -> (Vec<&'static str>, bool) {
    design.vendor = "MockVendor".into();
    let mut sim = Simulation::with_quality(3, LinkQuality::perfect(), LinkQuality::perfect());
    let cloud = sim.add_node(
        NodeConfig::wan_only("cloud"),
        Box::new(MockCloud {
            order: Vec::new(),
            drop_first,
            deny_bind,
        }),
    );
    let _device = sim.add_node(NodeConfig::dual("device", LAN), Box::new(FakeDevice));
    let mut config = AppConfig::new(design, cloud, LAN, UserId::new("u"), UserPw::new("p"));
    config.user_bind_delay = 200;
    config.known_label = Some(dev_id());
    let app = sim.add_node(
        NodeConfig::dual("app", LAN),
        Box::new(AppAgent::new(config)),
    );
    sim.run_until(Tick(until));
    let bound = sim.actor::<AppAgent>(app).unwrap().is_bound();
    let order = sim.actor_mut::<MockCloud>(cloud).unwrap().order.clone();
    (order, bound)
}

#[test]
fn online_first_design_binds_after_provisioning() {
    let (order, bound) = run_flow(vendors::ozwi(), 0, false, 20_000);
    assert!(bound);
    let bind_pos = order.iter().position(|k| *k == "Bind").expect("bind sent");
    let login_pos = order.iter().position(|k| *k == "Login").unwrap();
    assert!(login_pos < bind_pos, "login before bind: {order:?}");
    // The bind comes after the user delay, i.e. after provisioning — there
    // is no cloud-visible provisioning message, but the bind must not be
    // the message right after login.
    assert!(bind_pos > login_pos, "{order:?}");
}

#[test]
fn bind_first_design_binds_before_provisioning() {
    let (order, bound) = run_flow(vendors::d_link(), 0, false, 20_000);
    assert!(bound);
    assert_eq!(order.first(), Some(&"Login"), "{order:?}");
    assert_eq!(
        order.get(1),
        Some(&"Bind"),
        "BindFirst: bind directly after login: {order:?}"
    );
}

#[test]
fn dev_token_design_requests_token_before_binding() {
    let (order, bound) = run_flow(vendors::belkin(), 0, false, 30_000);
    assert!(bound);
    let token_pos = order
        .iter()
        .position(|k| *k == "RequestDevToken")
        .expect("token requested");
    let bind_pos = order.iter().position(|k| *k == "Bind").unwrap();
    assert!(token_pos < bind_pos, "{order:?}");
}

#[test]
fn lost_responses_are_retried() {
    // Swallow the first two responses (login, retry of login): the app must
    // keep retrying and still converge.
    let (order, bound) = run_flow(vendors::ozwi(), 2, false, 60_000);
    assert!(bound, "{order:?}");
    let logins = order.iter().filter(|k| **k == "Login").count();
    assert!(logins >= 2, "login was retried: {order:?}");
}

#[test]
fn denied_bind_is_recorded_and_retried() {
    let (order, bound) = run_flow(vendors::ozwi(), 0, true, 30_000);
    assert!(!bound, "AlreadyBound forever: never bound");
    let binds = order.iter().filter(|k| **k == "Bind").count();
    assert!(binds >= 2, "bind retried despite denials: {order:?}");
}

#[test]
fn device_initiated_design_polls_the_shadow() {
    let (order, bound) = run_flow(vendors::tp_link(), 0, false, 30_000);
    assert!(bound, "bound once the shadow reports so: {order:?}");
    assert!(order.contains(&"QueryShadow"), "{order:?}");
    assert!(
        !order.contains(&"Bind"),
        "the app never binds on AclDevice designs: {order:?}"
    );
}
