//! Node and LAN identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (device, app, cloud, attacker) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a broadcast domain (a home LAN behind one router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LanId(pub u32);

impl fmt::Display for LanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lan{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LanId(3).to_string(), "lan3");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<NodeId> = [NodeId(1), NodeId(2), NodeId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }
}
