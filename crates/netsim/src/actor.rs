//! The actor abstraction and its execution context.

use std::any::Any;

use bytes::Bytes;

use crate::rng::SimRng;
use crate::sim::Dest;
use crate::time::Tick;
use crate::topology::NodeId;

/// A timer key chosen by the actor; delivered back in
/// [`Actor::on_timer`].
pub type TimerKey = u64;

/// A participant in the simulation: a device, an app, the cloud, or an
/// attacker.
///
/// Actors are driven entirely by callbacks; all effects (sends, timers) go
/// through the [`Ctx`]. Implementations must be deterministic given the
/// callback sequence and the RNG draws they make.
pub trait Actor: Any {
    /// Called once when the simulation starts (before any packet flows).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called when a packet addressed to this node (or broadcast on its
    /// LAN) is delivered.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        let _ = (ctx, from, payload);
    }

    /// Zero-copy variant of [`Actor::on_packet`]: the payload arrives as
    /// the shared [`Bytes`] buffer the simulator routed, so decoders can
    /// slice it (a refcount bump) instead of copying. The simulator calls
    /// this entry point; the default forwards to [`Actor::on_packet`], so
    /// actors that don't care about allocation behaviour implement only
    /// the slice form.
    fn on_packet_bytes(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &Bytes) {
        self.on_packet(ctx, from, payload);
    }

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: TimerKey) {
        let _ = (ctx, key);
    }

    /// Called when the node's power state changes (powered off devices stop
    /// receiving packets; `on_power(true)` models reboot).
    fn on_power(&mut self, ctx: &mut Ctx<'_>, powered: bool) {
        let _ = (ctx, powered);
    }
}

/// Effects requested by an actor during one callback.
#[derive(Debug)]
pub(crate) enum Effect {
    Send { dest: Dest, payload: Vec<u8> },
    Timer { fire_at: Tick, key: TimerKey },
    Mark { text: String },
}

/// Execution context handed to actor callbacks.
///
/// Collects the actor's effects and exposes the virtual clock and the
/// simulation RNG.
pub struct Ctx<'a> {
    pub(crate) now: Tick,
    pub(crate) self_id: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) effects: &'a mut Vec<Effect>,
}

impl<'a> Ctx<'a> {
    /// The current virtual time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// This actor's node id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// The simulation RNG (deterministic per seed).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Queues a packet for delivery. Whether it arrives — and when — is
    /// decided by the network (connectivity, latency, loss).
    pub fn send(&mut self, dest: Dest, payload: Vec<u8>) {
        self.effects.push(Effect::Send { dest, payload });
    }

    /// Schedules [`Actor::on_timer`] after `delay` ticks.
    pub fn set_timer(&mut self, delay: u64, key: TimerKey) {
        self.effects.push(Effect::Timer {
            fire_at: self.now.saturating_add(delay),
            key,
        });
    }

    /// Emits a causally-attributed trace mark (a no-op unless tracing is
    /// enabled). Marks emitted while handling a delivered packet carry
    /// that packet's [`crate::TraceCtx`], so forensic tooling can tie an
    /// application-level statement ("shadow went unbound") to the exact
    /// message that caused it; marks from timers become causal roots.
    pub fn mark(&mut self, text: impl Into<String>) {
        self.effects.push(Effect::Mark { text: text.into() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_effects_in_order() {
        let mut rng = SimRng::new(0);
        let mut effects = Vec::new();
        let mut ctx = Ctx {
            now: Tick(5),
            self_id: NodeId(1),
            rng: &mut rng,
            effects: &mut effects,
        };
        ctx.send(Dest::Unicast(NodeId(2)), vec![1]);
        ctx.set_timer(10, 99);
        assert_eq!(ctx.now(), Tick(5));
        assert_eq!(ctx.id(), NodeId(1));
        assert_eq!(effects.len(), 2);
        match &effects[1] {
            Effect::Timer { fire_at, key } => {
                assert_eq!(*fire_at, Tick(15));
                assert_eq!(*key, 99);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn default_actor_callbacks_are_noops() {
        struct Passive;
        impl Actor for Passive {}
        let mut a = Passive;
        let mut rng = SimRng::new(0);
        let mut effects = Vec::new();
        let mut ctx = Ctx {
            now: Tick(0),
            self_id: NodeId(0),
            rng: &mut rng,
            effects: &mut effects,
        };
        a.on_start(&mut ctx);
        a.on_packet(&mut ctx, NodeId(1), b"x");
        a.on_timer(&mut ctx, 1);
        a.on_power(&mut ctx, false);
        assert!(effects.is_empty());
    }
}
