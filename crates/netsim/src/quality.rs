//! Link-quality models: latency, jitter, loss.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Latency/loss characteristics of a network path.
///
/// Latency for each packet is drawn uniformly from
/// `[latency_min, latency_max]` ticks; the packet is dropped with
/// probability `drop_per_mille / 1000`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Minimum one-way latency in ticks.
    pub latency_min: u64,
    /// Maximum one-way latency in ticks.
    pub latency_max: u64,
    /// Loss rate in packets per thousand.
    pub drop_per_mille: u16,
}

impl LinkQuality {
    /// A perfect link: 1-tick latency, no loss. Useful in unit tests.
    pub fn perfect() -> Self {
        LinkQuality {
            latency_min: 1,
            latency_max: 1,
            drop_per_mille: 0,
        }
    }

    /// A typical home LAN: 1–4 ms, negligible loss.
    pub fn lan() -> Self {
        LinkQuality {
            latency_min: 1,
            latency_max: 4,
            drop_per_mille: 1,
        }
    }

    /// A typical WAN path to a cloud region: 20–80 ms, light loss.
    pub fn wan() -> Self {
        LinkQuality {
            latency_min: 20,
            latency_max: 80,
            drop_per_mille: 5,
        }
    }

    /// A badly degraded but still usable path: high, jittery latency and
    /// 20% loss. The canonical "bad weather" preset for chaos scenarios.
    pub fn degraded() -> Self {
        LinkQuality {
            latency_min: 50,
            latency_max: 400,
            drop_per_mille: 200,
        }
    }

    /// A degraded path for failure-injection experiments.
    pub fn lossy(drop_per_mille: u16) -> Self {
        LinkQuality {
            latency_min: 20,
            latency_max: 200,
            drop_per_mille,
        }
    }

    /// Draws a delivery latency, or `None` if the packet is lost.
    pub fn sample(&self, rng: &mut SimRng) -> Option<u64> {
        if self.drop_per_mille > 0 && rng.chance(u32::from(self.drop_per_mille), 1000) {
            return None;
        }
        Some(rng.range_u64(self.latency_min, self.latency_max))
    }

    /// Validates that `latency_min <= latency_max` and the drop rate is a
    /// probability.
    pub fn is_valid(&self) -> bool {
        self.latency_min <= self.latency_max && self.drop_per_mille <= 1000
    }
}

impl Default for LinkQuality {
    fn default() -> Self {
        LinkQuality::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_never_drops() {
        let q = LinkQuality::perfect();
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert_eq!(q.sample(&mut rng), Some(1));
        }
    }

    #[test]
    fn latency_stays_in_bounds() {
        let q = LinkQuality {
            latency_min: 10,
            latency_max: 50,
            drop_per_mille: 0,
        };
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            let l = q.sample(&mut rng).unwrap();
            assert!((10..=50).contains(&l));
        }
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let q = LinkQuality {
            latency_min: 1,
            latency_max: 1,
            drop_per_mille: 250,
        };
        let mut rng = SimRng::new(99);
        let drops = (0..10_000).filter(|_| q.sample(&mut rng).is_none()).count();
        // 25% ± 3%.
        assert!((2200..=2800).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn full_loss_drops_everything() {
        let q = LinkQuality {
            latency_min: 1,
            latency_max: 1,
            drop_per_mille: 1000,
        };
        let mut rng = SimRng::new(3);
        assert!((0..100).all(|_| q.sample(&mut rng).is_none()));
    }

    #[test]
    fn validity() {
        assert!(LinkQuality::lan().is_valid());
        assert!(LinkQuality::wan().is_valid());
        assert!(!LinkQuality {
            latency_min: 5,
            latency_max: 1,
            drop_per_mille: 0
        }
        .is_valid());
        assert!(!LinkQuality {
            latency_min: 1,
            latency_max: 2,
            drop_per_mille: 1001
        }
        .is_valid());
    }
}
