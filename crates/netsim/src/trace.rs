//! Execution tracing for experiments and figures.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::time::Tick;
use crate::topology::NodeId;

/// What happened at one traced instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A packet left a node.
    Sent {
        /// Sender.
        from: NodeId,
        /// Receiver (individual delivery; broadcasts appear once per
        /// recipient).
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A packet arrived at a node.
    Delivered {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A packet was lost in transit.
    Dropped {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A packet could not be routed (no connectivity between the nodes).
    Unroutable {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A node's power state changed.
    Power {
        /// The node.
        node: NodeId,
        /// New state.
        powered: bool,
    },
    /// A free-form annotation emitted by an actor or the harness.
    Note {
        /// Node the note concerns.
        node: NodeId,
        /// Text of the note.
        text: String,
    },
    /// An injected fault took effect (see `rb_netsim::Fault`).
    Fault {
        /// Human-readable description of the fault.
        text: String,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When it happened.
    pub at: Tick,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.event {
            TraceEvent::Sent { from, to, bytes } => {
                write!(f, "{} {from} -> {to} sent {bytes}B", self.at)
            }
            TraceEvent::Delivered { from, to, bytes } => {
                write!(f, "{} {from} -> {to} delivered {bytes}B", self.at)
            }
            TraceEvent::Dropped { from, to } => {
                write!(f, "{} {from} -> {to} DROPPED", self.at)
            }
            TraceEvent::Unroutable { from, to } => {
                write!(f, "{} {from} -> {to} UNROUTABLE", self.at)
            }
            TraceEvent::Power { node, powered } => {
                write!(
                    f,
                    "{} {node} power={}",
                    self.at,
                    if *powered { "on" } else { "off" }
                )
            }
            TraceEvent::Note { node, text } => write!(f, "{} {node} note: {text}", self.at),
            TraceEvent::Fault { text } => write!(f, "{} FAULT {text}", self.at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TraceEntry {
            at: Tick(3),
            event: TraceEvent::Sent {
                from: NodeId(1),
                to: NodeId(2),
                bytes: 10,
            },
        };
        assert_eq!(e.to_string(), "t3 n1 -> n2 sent 10B");
        let e = TraceEntry {
            at: Tick(4),
            event: TraceEvent::Unroutable {
                from: NodeId(9),
                to: NodeId(1),
            },
        };
        assert!(e.to_string().contains("UNROUTABLE"));
        let e = TraceEntry {
            at: Tick(5),
            event: TraceEvent::Power {
                node: NodeId(1),
                powered: false,
            },
        };
        assert!(e.to_string().ends_with("power=off"));
    }
}
