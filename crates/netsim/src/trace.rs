//! Execution tracing for experiments and figures.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::time::Tick;
use crate::topology::NodeId;

/// The causal context a packet (or mark) carries through the simulation.
///
/// Every packet injected into the engine gets one: `trace_id` names the
/// causal tree the packet belongs to, `span_id` uniquely names this packet
/// within the run, and `parent_span_id` points at the span whose handling
/// caused the send (`0` for a root — a send from `on_start`/`on_timer`,
/// i.e. a fresh user action, heartbeat, or forged frame). Sends made while
/// handling a delivered packet inherit that packet's trace and become its
/// children, so one user action — or one forged message — reconstructs as
/// one causal tree spanning app → cloud → device and back.
///
/// Ids are allocated by deterministic counters in the simulator and never
/// draw randomness, so identical seeds produce identical trees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceCtx {
    /// The causal tree this event belongs to (1-based; 0 = untraced).
    pub trace_id: u64,
    /// This event's own span (1-based, unique per run; 0 = untraced).
    pub span_id: u64,
    /// The span whose handling caused this event (0 = root).
    pub parent_span_id: u64,
}

impl TraceCtx {
    /// Whether this span is a causal root (nothing in the simulation
    /// caused it: a timer tick, a start-of-world send, or an injected
    /// frame).
    pub fn is_root(&self) -> bool {
        self.parent_span_id == 0
    }
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parent_span_id == 0 {
            write!(f, "{}:{}", self.trace_id, self.span_id)
        } else {
            write!(
                f,
                "{}:{}<{}",
                self.trace_id, self.span_id, self.parent_span_id
            )
        }
    }
}

/// What happened at one traced instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A packet left a node.
    Sent {
        /// Sender.
        from: NodeId,
        /// Receiver (individual delivery; broadcasts appear once per
        /// recipient).
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
        /// Causal context of the packet.
        ctx: TraceCtx,
    },
    /// A packet arrived at a node.
    Delivered {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
        /// Causal context of the packet (same span as its `Sent`).
        ctx: TraceCtx,
    },
    /// A packet was lost in transit.
    Dropped {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Payload size in bytes (lost on the wire).
        bytes: usize,
        /// Causal context of the packet.
        ctx: TraceCtx,
    },
    /// A packet could not be routed (no connectivity between the nodes).
    Unroutable {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Payload size in bytes (never left the sender).
        bytes: usize,
        /// Causal context of the packet.
        ctx: TraceCtx,
    },
    /// A node's power state changed.
    Power {
        /// The node.
        node: NodeId,
        /// New state.
        powered: bool,
    },
    /// A free-form annotation emitted by an actor or the harness.
    Note {
        /// Node the note concerns.
        node: NodeId,
        /// Text of the note.
        text: String,
    },
    /// A structured, causally-attributed annotation emitted by an actor
    /// via `Ctx::mark` — the forensic breadcrumbs (rpc outcomes, shadow
    /// transitions, pushes) that `rb-forensics` reconstructs attacks from.
    Mark {
        /// Node that emitted the mark.
        node: NodeId,
        /// Text of the mark (`rpc …`, `shadow …`, `push …`).
        text: String,
        /// Causal context: the delivered packet whose handling emitted the
        /// mark, or a fresh root for timer-driven marks (e.g. expiry).
        ctx: TraceCtx,
    },
    /// An injected fault took effect (see `rb_netsim::Fault`).
    Fault {
        /// Human-readable description of the fault.
        text: String,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When it happened.
    pub at: Tick,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.event {
            TraceEvent::Sent {
                from,
                to,
                bytes,
                ctx,
            } => {
                write!(f, "{} {from} -> {to} sent {bytes}B [{ctx}]", self.at)
            }
            TraceEvent::Delivered {
                from,
                to,
                bytes,
                ctx,
            } => {
                write!(f, "{} {from} -> {to} delivered {bytes}B [{ctx}]", self.at)
            }
            TraceEvent::Dropped {
                from,
                to,
                bytes,
                ctx,
            } => {
                write!(f, "{} {from} -> {to} DROPPED {bytes}B [{ctx}]", self.at)
            }
            TraceEvent::Unroutable {
                from,
                to,
                bytes,
                ctx,
            } => {
                write!(f, "{} {from} -> {to} UNROUTABLE {bytes}B [{ctx}]", self.at)
            }
            TraceEvent::Power { node, powered } => {
                write!(
                    f,
                    "{} {node} power={}",
                    self.at,
                    if *powered { "on" } else { "off" }
                )
            }
            TraceEvent::Note { node, text } => write!(f, "{} {node} note: {text}", self.at),
            TraceEvent::Mark { node, text, ctx } => {
                write!(f, "{} {node} mark: {text} [{ctx}]", self.at)
            }
            TraceEvent::Fault { text } => write!(f, "{} FAULT {text}", self.at),
        }
    }
}

/// Error from [`TraceEntry::from_json`].
///
/// Carries a human-readable description of the first malformed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn parse_err(message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        message: message.into(),
    }
}

/// One parsed JSON scalar (the codec only ever needs these three shapes).
enum Scalar {
    Num(u64),
    Bool(bool),
    Str(String),
}

/// Minimal cursor over the canonical encoding [`TraceEntry::to_json`]
/// produces (one flat object of string/number/bool fields). Field order
/// is not significant; unknown fields are rejected.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, token: char) -> Result<(), TraceParseError> {
        self.skip_ws();
        match self.rest.strip_prefix(token) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(parse_err(format!(
                "expected '{token}' at \"{}\"",
                self.rest.chars().take(12).collect::<String>()
            ))),
        }
    }

    /// Parses a quoted JSON string (cursor must sit at the opening quote).
    fn parse_string(&mut self) -> Result<String, TraceParseError> {
        self.eat('"')?;
        let mut escaped = false;
        for (idx, c) in self.rest.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                let raw = &self.rest[..idx];
                self.rest = &self.rest[idx + 1..];
                return rb_telemetry::json::unescape(raw)
                    .ok_or_else(|| parse_err(format!("bad string escape in \"{raw}\"")));
            }
        }
        Err(parse_err("unterminated string"))
    }

    fn parse_scalar(&mut self) -> Result<Scalar, TraceParseError> {
        self.skip_ws();
        match self.rest.chars().next() {
            Some('"') => self.parse_string().map(Scalar::Str),
            Some('t') | Some('f') => {
                if let Some(rest) = self.rest.strip_prefix("true") {
                    self.rest = rest;
                    Ok(Scalar::Bool(true))
                } else if let Some(rest) = self.rest.strip_prefix("false") {
                    self.rest = rest;
                    Ok(Scalar::Bool(false))
                } else {
                    Err(parse_err("expected boolean"))
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let digits = self
                    .rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(self.rest.len());
                let (num, rest) = self.rest.split_at(digits);
                self.rest = rest;
                num.parse::<u64>()
                    .map(Scalar::Num)
                    .map_err(|e| parse_err(format!("bad number {num}: {e}")))
            }
            _ => Err(parse_err(format!(
                "expected value at \"{}\"",
                self.rest.chars().take(12).collect::<String>()
            ))),
        }
    }
}

impl TraceEntry {
    /// Canonical single-line JSON encoding, e.g.
    /// `{"at":3,"kind":"sent","from":1,"to":2,"bytes":10}`. The inverse of
    /// [`TraceEntry::from_json`]; used by exporters so goldens stay
    /// byte-stable. (The workspace `serde` is a no-op stub, so this codec
    /// is written by hand.)
    pub fn to_json(&self) -> String {
        let at = self.at.as_u64();
        let ctx_fields = |ctx: &TraceCtx| {
            format!(
                "\"trace\":{},\"span\":{},\"parent\":{}",
                ctx.trace_id, ctx.span_id, ctx.parent_span_id
            )
        };
        match &self.event {
            TraceEvent::Sent {
                from,
                to,
                bytes,
                ctx,
            } => format!(
                "{{\"at\":{at},\"kind\":\"sent\",\"from\":{},\"to\":{},\"bytes\":{bytes},{}}}",
                from.0,
                to.0,
                ctx_fields(ctx)
            ),
            TraceEvent::Delivered {
                from,
                to,
                bytes,
                ctx,
            } => format!(
                "{{\"at\":{at},\"kind\":\"delivered\",\"from\":{},\"to\":{},\"bytes\":{bytes},{}}}",
                from.0,
                to.0,
                ctx_fields(ctx)
            ),
            TraceEvent::Dropped {
                from,
                to,
                bytes,
                ctx,
            } => format!(
                "{{\"at\":{at},\"kind\":\"dropped\",\"from\":{},\"to\":{},\"bytes\":{bytes},{}}}",
                from.0,
                to.0,
                ctx_fields(ctx)
            ),
            TraceEvent::Unroutable {
                from,
                to,
                bytes,
                ctx,
            } => format!(
                "{{\"at\":{at},\"kind\":\"unroutable\",\"from\":{},\"to\":{},\"bytes\":{bytes},{}}}",
                from.0,
                to.0,
                ctx_fields(ctx)
            ),
            TraceEvent::Power { node, powered } => format!(
                "{{\"at\":{at},\"kind\":\"power\",\"node\":{},\"powered\":{powered}}}",
                node.0
            ),
            TraceEvent::Note { node, text } => format!(
                "{{\"at\":{at},\"kind\":\"note\",\"node\":{},\"text\":\"{}\"}}",
                node.0,
                rb_telemetry::json::escape(text)
            ),
            TraceEvent::Mark { node, text, ctx } => format!(
                "{{\"at\":{at},\"kind\":\"mark\",\"node\":{},\"text\":\"{}\",{}}}",
                node.0,
                rb_telemetry::json::escape(text),
                ctx_fields(ctx)
            ),
            TraceEvent::Fault { text } => format!(
                "{{\"at\":{at},\"kind\":\"fault\",\"text\":\"{}\"}}",
                rb_telemetry::json::escape(text)
            ),
        }
    }

    /// Parses the encoding produced by [`TraceEntry::to_json`]. Fields may
    /// appear in any order; missing, repeated-with-conflict, or unknown
    /// fields are errors.
    pub fn from_json(input: &str) -> Result<TraceEntry, TraceParseError> {
        let mut cur = Cursor { rest: input };
        cur.eat('{')?;
        let (mut at, mut kind, mut from, mut to) = (None, None, None, None);
        let (mut bytes, mut node, mut powered, mut text) = (None, None, None, None);
        let (mut trace, mut span, mut parent) = (None, None, None);
        loop {
            let key = cur.parse_string()?;
            cur.eat(':')?;
            let value = cur.parse_scalar()?;
            match (key.as_str(), value) {
                ("at", Scalar::Num(n)) => at = Some(n),
                ("kind", Scalar::Str(s)) => kind = Some(s),
                ("from", Scalar::Num(n)) => from = Some(n),
                ("to", Scalar::Num(n)) => to = Some(n),
                ("bytes", Scalar::Num(n)) => bytes = Some(n),
                ("node", Scalar::Num(n)) => node = Some(n),
                ("powered", Scalar::Bool(b)) => powered = Some(b),
                ("text", Scalar::Str(s)) => text = Some(s),
                ("trace", Scalar::Num(n)) => trace = Some(n),
                ("span", Scalar::Num(n)) => span = Some(n),
                ("parent", Scalar::Num(n)) => parent = Some(n),
                (other, _) => {
                    return Err(parse_err(format!("unexpected field \"{other}\"")));
                }
            }
            cur.skip_ws();
            if cur.rest.starts_with(',') {
                cur.eat(',')?;
            } else {
                break;
            }
        }
        cur.eat('}')?;
        cur.skip_ws();
        if !cur.rest.is_empty() {
            return Err(parse_err("trailing data after entry"));
        }
        let at = Tick(at.ok_or_else(|| parse_err("missing \"at\""))?);
        let node_id = |n: Option<u64>, field: &str| {
            let n = n.ok_or_else(|| parse_err(format!("missing \"{field}\"")))?;
            u32::try_from(n)
                .map(NodeId)
                .map_err(|_| parse_err(format!("\"{field}\" out of range")))
        };
        let byte_count = |n: Option<u64>| {
            let n = n.ok_or_else(|| parse_err("missing \"bytes\""))?;
            usize::try_from(n).map_err(|_| parse_err("\"bytes\" out of range"))
        };
        // Pre-causal-tracing encodings carried no context (and no bytes on
        // drops); absent fields decode to zero so archived traces still load.
        let ctx = TraceCtx {
            trace_id: trace.unwrap_or(0),
            span_id: span.unwrap_or(0),
            parent_span_id: parent.unwrap_or(0),
        };
        let lost_bytes = match bytes {
            Some(n) => usize::try_from(n).map_err(|_| parse_err("\"bytes\" out of range"))?,
            None => 0,
        };
        let event = match kind.as_deref() {
            Some("sent") => TraceEvent::Sent {
                from: node_id(from, "from")?,
                to: node_id(to, "to")?,
                bytes: byte_count(bytes)?,
                ctx,
            },
            Some("delivered") => TraceEvent::Delivered {
                from: node_id(from, "from")?,
                to: node_id(to, "to")?,
                bytes: byte_count(bytes)?,
                ctx,
            },
            Some("dropped") => TraceEvent::Dropped {
                from: node_id(from, "from")?,
                to: node_id(to, "to")?,
                bytes: lost_bytes,
                ctx,
            },
            Some("unroutable") => TraceEvent::Unroutable {
                from: node_id(from, "from")?,
                to: node_id(to, "to")?,
                bytes: lost_bytes,
                ctx,
            },
            Some("power") => TraceEvent::Power {
                node: node_id(node, "node")?,
                powered: powered.ok_or_else(|| parse_err("missing \"powered\""))?,
            },
            Some("note") => TraceEvent::Note {
                node: node_id(node, "node")?,
                text: text.ok_or_else(|| parse_err("missing \"text\""))?,
            },
            Some("mark") => TraceEvent::Mark {
                node: node_id(node, "node")?,
                text: text.ok_or_else(|| parse_err("missing \"text\""))?,
                ctx,
            },
            Some("fault") => TraceEvent::Fault {
                text: text.ok_or_else(|| parse_err("missing \"text\""))?,
            },
            Some(other) => return Err(parse_err(format!("unknown kind \"{other}\""))),
            None => return Err(parse_err("missing \"kind\"")),
        };
        Ok(TraceEntry { at, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TraceEntry {
            at: Tick(3),
            event: TraceEvent::Sent {
                from: NodeId(1),
                to: NodeId(2),
                bytes: 10,
                ctx: TraceCtx {
                    trace_id: 1,
                    span_id: 4,
                    parent_span_id: 2,
                },
            },
        };
        assert_eq!(e.to_string(), "t3 n1 -> n2 sent 10B [1:4<2]");
        let e = TraceEntry {
            at: Tick(4),
            event: TraceEvent::Unroutable {
                from: NodeId(9),
                to: NodeId(1),
                bytes: 7,
                ctx: TraceCtx::default(),
            },
        };
        assert!(e.to_string().contains("UNROUTABLE 7B"));
        let e = TraceEntry {
            at: Tick(5),
            event: TraceEvent::Power {
                node: NodeId(1),
                powered: false,
            },
        };
        assert!(e.to_string().ends_with("power=off"));
    }

    #[test]
    fn ctx_display_marks_roots() {
        let root = TraceCtx {
            trace_id: 3,
            span_id: 9,
            parent_span_id: 0,
        };
        assert_eq!(root.to_string(), "3:9");
        assert!(root.is_root());
        let child = TraceCtx {
            trace_id: 3,
            span_id: 10,
            parent_span_id: 9,
        };
        assert_eq!(child.to_string(), "3:10<9");
        assert!(!child.is_root());
    }
}
