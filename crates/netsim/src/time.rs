//! Virtual time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time. One tick ≈ one millisecond of simulated time
/// (the convention used by the experiment harness; the simulator itself only
/// requires ticks to be totally ordered).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(pub u64);

impl Tick {
    /// Time zero.
    pub const ZERO: Tick = Tick(0);

    /// Saturating addition of a duration in ticks.
    pub fn saturating_add(self, delta: u64) -> Tick {
        Tick(self.0.saturating_add(delta))
    }

    /// The raw tick count.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Tick {
    type Output = Tick;

    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tick {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Tick> for Tick {
    type Output = u64;

    fn sub(self, rhs: Tick) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let t = Tick(10);
        assert_eq!(t + 5, Tick(15));
        assert_eq!(Tick(15) - Tick(10), 5);
        assert_eq!(Tick(5) - Tick(10), 0, "sub saturates");
        assert_eq!(Tick(u64::MAX).saturating_add(10), Tick(u64::MAX));
        let mut u = Tick(1);
        u += 2;
        assert_eq!(u, Tick(3));
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(Tick(42).to_string(), "t42");
        assert!(Tick(1) < Tick(2));
        assert_eq!(Tick::ZERO, Tick::default());
    }
}
