//! The discrete-event simulation engine.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;
use rb_prof::Profiler;
use rb_telemetry::Telemetry;

use crate::actor::{Actor, Ctx, Effect, TimerKey};
use crate::fault::{Fault, FaultPlan};
use crate::quality::LinkQuality;
use crate::rng::SimRng;
use crate::time::Tick;
use crate::topology::{LanId, NodeId};
use crate::trace::{TraceCtx, TraceEntry, TraceEvent};

/// Where a packet is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// A single node (routed over the LAN if shared, else the WAN).
    Unicast(NodeId),
    /// Every powered node on a LAN except the sender. Only nodes *on* that
    /// LAN may broadcast to it — this is the firewall the paper's adversary
    /// cannot cross.
    Broadcast(LanId),
}

/// Connectivity of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// Human-readable name for traces. Interned behind an `Arc`: cloning a
    /// config (or the fleet engine building thousands of homes) shares one
    /// allocation per name instead of copying the string.
    pub name: Arc<str>,
    /// LAN membership, if any.
    pub lan: Option<LanId>,
    /// Whether the node can reach the WAN.
    pub wan: bool,
}

impl NodeConfig {
    /// A node with WAN access only (cloud, remote attacker).
    pub fn wan_only(name: impl Into<Arc<str>>) -> Self {
        NodeConfig {
            name: name.into(),
            lan: None,
            wan: true,
        }
    }

    /// A node confined to a LAN (an unprovisioned device, a Zigbee bulb
    /// behind a hub).
    pub fn lan_only(name: impl Into<Arc<str>>, lan: LanId) -> Self {
        NodeConfig {
            name: name.into(),
            lan: Some(lan),
            wan: false,
        }
    }

    /// A node on a LAN with WAN access through the home router (a
    /// provisioned device, the user's phone).
    pub fn dual(name: impl Into<Arc<str>>, lan: LanId) -> Self {
        NodeConfig {
            name: name.into(),
            lan: Some(lan),
            wan: true,
        }
    }
}

struct Node {
    config: NodeConfig,
    powered: bool,
    wan_partitioned: bool,
    actor: Box<dyn Actor>,
}

#[derive(Debug)]
enum EventKind {
    Start {
        node: NodeId,
    },
    Deliver {
        from: NodeId,
        to: NodeId,
        // Shared, not owned: broadcasts and duplicated packets reference
        // one buffer instead of cloning the bytes per delivery, and actors
        // can slice it without copying (zero-copy decode).
        payload: Bytes,
        ctx: TraceCtx,
    },
    Timer {
        node: NodeId,
        key: TimerKey,
    },
    Inject {
        fault: Fault,
    },
}

struct Event {
    at: Tick,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deterministic discrete-event simulator.
///
/// See the [crate docs](crate) for an overview and example.
pub struct Simulation {
    nodes: Vec<Node>,
    queue: BinaryHeap<Reverse<Event>>,
    now: Tick,
    seq: u64,
    rng: SimRng,
    lan_quality: LinkQuality,
    wan_quality: LinkQuality,
    trace: Option<Vec<TraceEntry>>,
    /// NAT connection tracking: `(inside, outside)` pairs for which the
    /// LAN-homed `inside` node has initiated WAN traffic to `outside`,
    /// opening the return path through its home router.
    nat_flows: HashSet<(NodeId, NodeId)>,
    // Fault-injection state (all default to "no fault in effect").
    partitioned_lans: HashSet<LanId>,
    lan_quality_override: HashMap<LanId, LinkQuality>,
    wan_quality_override: Option<LinkQuality>,
    pair_quality_override: HashMap<(NodeId, NodeId), LinkQuality>,
    dup_per_mille: u16,
    reorder_per_mille: u16,
    reorder_extra_max: u64,
    /// Next causal-tree id (1-based; plain counters, no RNG, so causal
    /// tracing cannot perturb the event stream).
    next_trace_id: u64,
    /// Next span id (1-based, unique per packet attempt / root mark).
    next_span_id: u64,
    /// Metrics sink. Counter updates never draw randomness or schedule
    /// events, so instrumentation cannot perturb the event stream.
    telemetry: Telemetry,
    /// Phase profiler. Disabled by default (one branch per event); when a
    /// harness installs a recording handle, each dispatched event becomes
    /// a phase (`sim.deliver`, `sim.timer`, …) charged the tick gap that
    /// led up to it, and the per-packet fault check is tallied. Profiling
    /// never draws randomness or schedules events, so it cannot perturb
    /// the event stream.
    profiler: Profiler,
    /// When set, actor marks and injected faults are also published onto
    /// the telemetry streaming bus (topics `mark` / `fault`) so online
    /// subscribers can watch the run live without collecting a trace.
    stream_tap: bool,
}

impl Simulation {
    /// Creates a simulation with realistic default link qualities
    /// ([`LinkQuality::lan`] / [`LinkQuality::wan`]).
    pub fn new(seed: u64) -> Self {
        Simulation::with_quality(seed, LinkQuality::lan(), LinkQuality::wan())
    }

    /// Creates a simulation with explicit link qualities.
    ///
    /// # Panics
    ///
    /// Panics if either quality is invalid (`latency_min > latency_max` or
    /// drop rate > 1000‰).
    pub fn with_quality(seed: u64, lan: LinkQuality, wan: LinkQuality) -> Self {
        assert!(lan.is_valid(), "invalid lan quality");
        assert!(wan.is_valid(), "invalid wan quality");
        Simulation {
            nodes: Vec::new(),
            // Pre-sized: a single-home binding run schedules a few hundred
            // in-flight events; starting at 256 avoids the doubling churn.
            queue: BinaryHeap::with_capacity(256),
            now: Tick::ZERO,
            seq: 0,
            rng: SimRng::new(seed),
            lan_quality: lan,
            wan_quality: wan,
            trace: None,
            nat_flows: HashSet::new(),
            partitioned_lans: HashSet::new(),
            lan_quality_override: HashMap::new(),
            wan_quality_override: None,
            pair_quality_override: HashMap::new(),
            dup_per_mille: 0,
            reorder_per_mille: 0,
            reorder_extra_max: 0,
            next_trace_id: 1,
            next_span_id: 1,
            telemetry: Telemetry::new(),
            profiler: Profiler::disabled(),
            stream_tap: false,
        }
    }

    /// Enables the event-stream tap: every actor mark and injected fault is
    /// mirrored onto the telemetry streaming bus as it happens (topic
    /// `mark` / `fault`), independent of whether tracing is enabled. Off by
    /// default; the stream never appears in the rendered exporters, so
    /// enabling the tap cannot perturb metric goldens.
    pub fn enable_stream_tap(&mut self) {
        self.stream_tap = true;
    }

    /// The simulation's telemetry handle (clone it to share the registry
    /// with actors and experiment harnesses).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replaces the telemetry handle so several components can record into
    /// one externally owned registry. Call before the first event runs;
    /// metrics recorded into the previous handle are not migrated.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The simulation's phase-profiler handle (disabled unless a harness
    /// installed a recording one).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Installs a phase profiler: every subsequently dispatched event is
    /// charged to a `sim.*` phase under whatever phase the harness holds
    /// open. Call before the first event runs.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Enables event tracing (off by default; traces grow unbounded).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The trace collected so far (empty if tracing is disabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Appends a free-form note to the trace.
    pub fn note(&mut self, node: NodeId, text: impl Into<String>) {
        let at = self.now;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEntry {
                at,
                event: TraceEvent::Note {
                    node,
                    text: text.into(),
                },
            });
        }
    }

    /// Registers a node and schedules its [`Actor::on_start`] at the
    /// current instant. Returns the new node's id.
    pub fn add_node(&mut self, config: NodeConfig, actor: Box<dyn Actor>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            config,
            powered: true,
            wan_partitioned: false,
            actor,
        });
        let at = self.now;
        self.push_event(at, EventKind::Start { node: id });
        id
    }

    /// The current virtual time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The configured name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].config.name
    }

    /// Immutable access to a node's actor, downcast to its concrete type.
    pub fn actor<T: Actor>(&self, id: NodeId) -> Option<&T> {
        let a: &dyn Actor = self.nodes.get(id.0 as usize)?.actor.as_ref();
        (a as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a node's actor, downcast to its concrete type.
    pub fn actor_mut<T: Actor>(&mut self, id: NodeId) -> Option<&mut T> {
        let a: &mut dyn Actor = self.nodes.get_mut(id.0 as usize)?.actor.as_mut();
        (a as &mut dyn Any).downcast_mut::<T>()
    }

    /// Powers a node on or off. Powered-off nodes receive no packets or
    /// timers; pending deliveries to them are dropped at delivery time.
    pub fn set_power(&mut self, id: NodeId, powered: bool) {
        let node = &mut self.nodes[id.0 as usize];
        if node.powered == powered {
            return;
        }
        node.powered = powered;
        let at = self.now;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEntry {
                at,
                event: TraceEvent::Power { node: id, powered },
            });
        }
        self.with_actor(id, None, |actor, ctx| actor.on_power(ctx, powered));
    }

    /// Whether a node is currently powered.
    pub fn is_powered(&self, id: NodeId) -> bool {
        self.nodes[id.0 as usize].powered
    }

    /// Cuts (or restores) a node's WAN uplink without touching its LAN —
    /// models the "connection disruption" consequence of the paper's A3
    /// attacks, and ISP outages for failure injection.
    pub fn partition_wan(&mut self, id: NodeId, partitioned: bool) {
        self.nodes[id.0 as usize].wan_partitioned = partitioned;
    }

    /// Partitions (or heals) a whole LAN: local unicast and broadcast on it
    /// fail while partitioned. WAN uplinks of its members are unaffected.
    pub fn partition_lan(&mut self, lan: LanId, partitioned: bool) {
        if partitioned {
            self.partitioned_lans.insert(lan);
        } else {
            self.partitioned_lans.remove(&lan);
        }
    }

    /// Overrides (or, with `None`, restores) the quality of one LAN —
    /// per-link quality for scenarios with heterogeneous homes.
    pub fn set_lan_quality(&mut self, lan: LanId, quality: Option<LinkQuality>) {
        match quality {
            Some(q) => {
                assert!(q.is_valid(), "invalid lan quality override");
                self.lan_quality_override.insert(lan, q);
            }
            None => {
                self.lan_quality_override.remove(&lan);
            }
        }
    }

    /// Overrides (or restores) the WAN quality.
    pub fn set_wan_quality(&mut self, quality: Option<LinkQuality>) {
        if let Some(q) = quality {
            assert!(q.is_valid(), "invalid wan quality override");
        }
        self.wan_quality_override = quality;
    }

    /// Overrides (or restores) the quality of the directed path
    /// `from -> to`. Takes precedence over LAN/WAN overrides.
    pub fn set_pair_quality(&mut self, from: NodeId, to: NodeId, quality: Option<LinkQuality>) {
        match quality {
            Some(q) => {
                assert!(q.is_valid(), "invalid pair quality override");
                self.pair_quality_override.insert((from, to), q);
            }
            None => {
                self.pair_quality_override.remove(&(from, to));
            }
        }
    }

    /// Sets the delivery-chaos knobs (duplication/reordering); all zeros
    /// turns chaos off. With the knobs at zero no extra RNG draws are made,
    /// so enabling chaos never perturbs unrelated runs.
    pub fn set_chaos(
        &mut self,
        dup_per_mille: u16,
        reorder_per_mille: u16,
        reorder_extra_max: u64,
    ) {
        self.dup_per_mille = dup_per_mille.min(1000);
        self.reorder_per_mille = reorder_per_mille.min(1000);
        self.reorder_extra_max = reorder_extra_max;
    }

    /// Schedules every event of a [`FaultPlan`] for execution by the event
    /// loop. Times in the past fire at the current instant; injection is
    /// recorded in the trace.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for (at, fault) in plan.events() {
            let at = at.max(self.now);
            self.push_event(at, EventKind::Inject { fault });
        }
    }

    fn inject(&mut self, fault: Fault) {
        self.telemetry.incr("sim_faults_injected_total");
        let at = self.now;
        if self.stream_tap {
            self.telemetry
                .publish(at.as_u64(), "fault", &fault.to_string());
        }
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEntry {
                at,
                event: TraceEvent::Fault {
                    text: fault.to_string(),
                },
            });
        }
        match fault {
            Fault::WanPartition { node, partitioned } => self.partition_wan(node, partitioned),
            Fault::LanPartition { lan, partitioned } => self.partition_lan(lan, partitioned),
            Fault::Crash { node } => self.set_power(node, false),
            Fault::Restart { node } => self.set_power(node, true),
            Fault::LanQuality { lan, quality } => self.set_lan_quality(lan, quality),
            Fault::WanQuality { quality } => self.set_wan_quality(quality),
            Fault::PairQuality { from, to, quality } => self.set_pair_quality(from, to, quality),
            Fault::Chaos {
                dup_per_mille,
                reorder_per_mille,
                reorder_extra_max,
            } => self.set_chaos(dup_per_mille, reorder_per_mille, reorder_extra_max),
        }
    }

    /// Runs the event loop until virtual time reaches `until` (inclusive of
    /// events at `until`). The clock is left at `until`.
    pub fn run_until(&mut self, until: Tick) {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if ev.at > until {
                // Beyond the horizon: put it back for a later run.
                self.queue.push(Reverse(ev));
                break;
            }
            let gap = ev.at.as_u64().saturating_sub(self.now.as_u64());
            self.now = ev.at;
            self.dispatch_profiled(ev, gap);
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Runs for `delta` more ticks.
    pub fn run_for(&mut self, delta: u64) {
        let until = self.now.saturating_add(delta);
        self.run_until(until);
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(ev)) => {
                let gap = ev.at.as_u64().saturating_sub(self.now.as_u64());
                self.now = ev.at;
                self.dispatch_profiled(ev, gap);
                true
            }
            None => false,
        }
    }

    /// Whether any events remain scheduled.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    // -- internals ----------------------------------------------------------

    fn push_event(&mut self, at: Tick, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    /// Dispatches one event, attributing the tick gap that led up to it
    /// (`gap = ev.at - previous now`) to the event's phase. Events are
    /// instantaneous in tick time, so the gap *is* where simulated time
    /// goes: `sim.deliver` accumulates delivery latency, `sim.timer`
    /// accumulates waits. Profiling off (the default) costs one branch.
    fn dispatch_profiled(&mut self, ev: Event, gap: u64) {
        if !self.profiler.is_enabled() {
            self.dispatch(ev);
            return;
        }
        let name = match ev.kind {
            EventKind::Start { .. } => "sim.start",
            EventKind::Deliver { .. } => "sim.deliver",
            EventKind::Timer { .. } => "sim.timer",
            EventKind::Inject { .. } => "sim.inject",
        };
        let now = self.now.as_u64();
        let token = self.profiler.enter(name, now);
        self.dispatch(ev);
        self.profiler.exit_add(token, now, gap);
    }

    fn dispatch(&mut self, ev: Event) {
        // One branch instead of a mutex round-trip when recording is off —
        // the fleet engine runs every cell with a disabled handle.
        if self.telemetry.is_enabled() {
            let now = self.now.as_u64();
            self.telemetry.with(|r| {
                r.counter_add("sim_events_total", 1);
                r.gauge_set("sim_now_ticks", i64::try_from(now).unwrap_or(i64::MAX));
            });
        }
        match ev.kind {
            EventKind::Start { node } => {
                if self.nodes[node.0 as usize].powered {
                    self.with_actor(node, None, |actor, ctx| actor.on_start(ctx));
                }
            }
            EventKind::Deliver {
                from,
                to,
                payload,
                ctx,
            } => {
                if !self.nodes[to.0 as usize].powered {
                    self.telemetry
                        .incr("sim_packets_dropped_total{reason=\"powered-off\"}");
                    self.telemetry.counter_add(
                        "sim_packet_bytes_dropped_total{reason=\"powered-off\"}",
                        payload.len() as u64,
                    );
                    let at = self.now;
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEntry {
                            at,
                            event: TraceEvent::Dropped {
                                from,
                                to,
                                bytes: payload.len(),
                                ctx,
                            },
                        });
                    }
                    return;
                }
                self.telemetry.incr("sim_packets_delivered_total");
                let at = self.now;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceEntry {
                        at,
                        event: TraceEvent::Delivered {
                            from,
                            to,
                            bytes: payload.len(),
                            ctx,
                        },
                    });
                }
                self.with_actor(to, Some(ctx), |actor, actor_ctx| {
                    actor.on_packet_bytes(actor_ctx, from, &payload);
                });
            }
            EventKind::Timer { node, key } => {
                if self.nodes[node.0 as usize].powered {
                    self.with_actor(node, None, |actor, ctx| actor.on_timer(ctx, key));
                }
            }
            EventKind::Inject { fault } => self.inject(fault),
        }
    }

    /// Runs `f` against a node's actor with a fresh context, then applies
    /// the effects the actor produced.
    ///
    /// Causal propagation happens here: when the callback handles a
    /// delivered packet (`cause` is `Some`), every send it requests becomes
    /// a child span of that packet and every mark carries the packet's
    /// context verbatim. Callbacks with no cause (start, timers, power)
    /// lazily open a fresh trace on their first effect, so a heartbeat tick,
    /// a queued user action, or an attacker's injected frame each roots its
    /// own causal tree.
    fn with_actor(
        &mut self,
        id: NodeId,
        cause: Option<TraceCtx>,
        f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>),
    ) {
        let mut effects = Vec::new();
        {
            let node = &mut self.nodes[id.0 as usize];
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                rng: &mut self.rng,
                effects: &mut effects,
            };
            f(node.actor.as_mut(), &mut ctx);
        }
        let mut callback_trace = cause.map(|c| c.trace_id);
        let parent = cause.map_or(0, |c| c.span_id);
        for effect in effects {
            match effect {
                Effect::Send { dest, payload } => {
                    let trace_id = match callback_trace {
                        Some(t) => t,
                        None => {
                            let t = self.alloc_trace();
                            callback_trace = Some(t);
                            t
                        }
                    };
                    self.route(id, dest, payload, trace_id, parent);
                }
                Effect::Timer { fire_at, key } => {
                    self.push_event(fire_at, EventKind::Timer { node: id, key });
                }
                Effect::Mark { text } => {
                    let ctx = match cause {
                        // A mark made while handling a packet belongs to
                        // that packet's span: "this message caused this".
                        Some(c) => c,
                        None => {
                            let trace_id = match callback_trace {
                                Some(t) => t,
                                None => {
                                    let t = self.alloc_trace();
                                    callback_trace = Some(t);
                                    t
                                }
                            };
                            self.alloc_ctx(trace_id, 0)
                        }
                    };
                    let at = self.now;
                    if self.stream_tap {
                        self.telemetry.publish(at.as_u64(), "mark", &text);
                    }
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEntry {
                            at,
                            event: TraceEvent::Mark {
                                node: id,
                                text,
                                ctx,
                            },
                        });
                    }
                }
            }
        }
    }

    /// Allocates a fresh causal-tree id.
    fn alloc_trace(&mut self) -> u64 {
        let t = self.next_trace_id;
        self.next_trace_id += 1;
        t
    }

    /// Allocates a fresh span within `trace_id` under `parent_span_id`.
    fn alloc_ctx(&mut self, trace_id: u64, parent_span_id: u64) -> TraceCtx {
        let span_id = self.next_span_id;
        self.next_span_id += 1;
        TraceCtx {
            trace_id,
            span_id,
            parent_span_id,
        }
    }

    fn route(&mut self, from: NodeId, dest: Dest, payload: Vec<u8>, trace_id: u64, parent: u64) {
        // One allocation per send: broadcasts, retransmitted duplicates and
        // the delivery event all share this buffer from here on.
        let payload = Bytes::from(payload);
        match dest {
            Dest::Unicast(to) => self.route_unicast(from, to, payload, trace_id, parent),
            Dest::Broadcast(lan) => {
                // Only a member of the LAN may broadcast on it, and only
                // while the LAN is up.
                if self.nodes[from.0 as usize].config.lan != Some(lan)
                    || self.partitioned_lans.contains(&lan)
                {
                    let ctx = self.alloc_ctx(trace_id, parent);
                    self.telemetry.incr("sim_packets_unroutable_total");
                    self.telemetry
                        .counter_add("sim_packet_bytes_unroutable_total", payload.len() as u64);
                    let at = self.now;
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEntry {
                            at,
                            event: TraceEvent::Unroutable {
                                from,
                                to: from,
                                bytes: payload.len(),
                                ctx,
                            },
                        });
                    }
                    return;
                }
                let recipients: Vec<NodeId> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(i, n)| {
                        NodeId(*i as u32) != from && n.powered && n.config.lan == Some(lan)
                    })
                    .map(|(i, _)| NodeId(i as u32))
                    .collect();
                let quality = self.effective_lan_quality(lan);
                for to in recipients {
                    let ctx = self.alloc_ctx(trace_id, parent);
                    self.schedule_delivery(from, to, payload.clone(), quality, ctx);
                }
            }
        }
    }

    fn route_unicast(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: Bytes,
        trace_id: u64,
        parent: u64,
    ) {
        let ctx = self.alloc_ctx(trace_id, parent);
        let Some(quality) = self.path_quality(from, to) else {
            self.telemetry.incr("sim_packets_unroutable_total");
            self.telemetry
                .counter_add("sim_packet_bytes_unroutable_total", payload.len() as u64);
            let at = self.now;
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceEntry {
                    at,
                    event: TraceEvent::Unroutable {
                        from,
                        to,
                        bytes: payload.len(),
                        ctx,
                    },
                });
            }
            return;
        };
        // NAT semantics on the WAN path: a LAN-homed node sits behind its
        // home router and is unreachable from the WAN unless it initiated
        // traffic to that peer first (connection tracking). This enforces
        // the paper's adversary model: remote attackers can talk to the
        // cloud, never to the devices.
        let same_lan = {
            let a = &self.nodes[from.0 as usize].config;
            let b = &self.nodes[to.0 as usize].config;
            a.lan.is_some() && a.lan == b.lan
        };
        if !same_lan {
            let to_behind_nat = self.nodes[to.0 as usize].config.lan.is_some();
            if to_behind_nat && !self.nat_flows.contains(&(to, from)) {
                self.telemetry.incr("sim_packets_unroutable_total");
                self.telemetry
                    .counter_add("sim_packet_bytes_unroutable_total", payload.len() as u64);
                let at = self.now;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceEntry {
                        at,
                        event: TraceEvent::Unroutable {
                            from,
                            to,
                            bytes: payload.len(),
                            ctx,
                        },
                    });
                }
                return;
            }
            if self.nodes[from.0 as usize].config.lan.is_some() {
                self.nat_flows.insert((from, to));
            }
        }
        self.schedule_delivery(from, to, payload, quality, ctx);
    }

    /// The quality of a LAN after overrides.
    fn effective_lan_quality(&self, lan: LanId) -> LinkQuality {
        self.lan_quality_override
            .get(&lan)
            .copied()
            .unwrap_or(self.lan_quality)
    }

    /// The link quality of the path `from -> to`, or `None` if no path
    /// exists under the current topology (including injected partitions).
    fn path_quality(&self, from: NodeId, to: NodeId) -> Option<LinkQuality> {
        if from == to || to.0 as usize >= self.nodes.len() {
            return None;
        }
        let a = &self.nodes[from.0 as usize];
        let b = &self.nodes[to.0 as usize];
        let pair_override = self.pair_quality_override.get(&(from, to)).copied();
        // Same LAN: local path, unaffected by WAN partitions, unusable
        // while the LAN itself is partitioned.
        if a.config.lan.is_some() && a.config.lan == b.config.lan {
            let lan = a.config.lan.unwrap_or(LanId(0));
            if self.partitioned_lans.contains(&lan) {
                return None;
            }
            return Some(pair_override.unwrap_or_else(|| self.effective_lan_quality(lan)));
        }
        // Otherwise both ends need working WAN uplinks.
        if a.config.wan && b.config.wan && !a.wan_partitioned && !b.wan_partitioned {
            return Some(
                pair_override
                    .or(self.wan_quality_override)
                    .unwrap_or(self.wan_quality),
            );
        }
        None
    }

    fn schedule_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: Bytes,
        quality: LinkQuality,
        ctx: TraceCtx,
    ) {
        self.telemetry.incr("sim_packets_sent_total");
        // The per-packet fault check (loss/latency/chaos sampling below)
        // is a zero-tick tally under whatever phase is open.
        self.profiler.tally("sim.fault_check", 0);
        let at = self.now;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEntry {
                at,
                event: TraceEvent::Sent {
                    from,
                    to,
                    bytes: payload.len(),
                    ctx,
                },
            });
        }
        match quality.sample(&mut self.rng) {
            Some(latency) => {
                let mut latency = latency.max(1);
                // Chaos knobs: guarded so that no RNG draw happens unless a
                // fault plan turned them on — runs without chaos keep their
                // exact event streams.
                if self.reorder_per_mille > 0
                    && self.rng.chance(u32::from(self.reorder_per_mille), 1000)
                {
                    latency = latency
                        .saturating_add(self.rng.range_u64(0, self.reorder_extra_max.max(1)));
                }
                let deliver_at = self.now.saturating_add(latency);
                self.push_event(
                    deliver_at,
                    EventKind::Deliver {
                        from,
                        to,
                        payload: payload.clone(),
                        ctx,
                    },
                );
                if self.dup_per_mille > 0 && self.rng.chance(u32::from(self.dup_per_mille), 1000) {
                    // The duplicate takes an independent latency draw, so it
                    // may arrive before or after the original. It shares the
                    // original's span: one packet, two deliveries.
                    if let Some(dup_latency) = quality.sample(&mut self.rng) {
                        let dup_at = self.now.saturating_add(dup_latency.max(1));
                        self.telemetry.incr("sim_packets_duplicated_total");
                        self.push_event(
                            dup_at,
                            EventKind::Deliver {
                                from,
                                to,
                                payload,
                                ctx,
                            },
                        );
                    }
                }
            }
            None => {
                self.telemetry
                    .incr("sim_packets_dropped_total{reason=\"loss\"}");
                self.telemetry.counter_add(
                    "sim_packet_bytes_dropped_total{reason=\"loss\"}",
                    payload.len() as u64,
                );
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceEntry {
                        at,
                        event: TraceEvent::Dropped {
                            from,
                            to,
                            bytes: payload.len(),
                            ctx,
                        },
                    });
                }
            }
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records everything it receives.
    struct Sink {
        received: Vec<(NodeId, Vec<u8>)>,
        timer_fired: Vec<TimerKey>,
        power_events: Vec<bool>,
    }

    impl Sink {
        fn new() -> Self {
            Sink {
                received: Vec::new(),
                timer_fired: Vec::new(),
                power_events: Vec::new(),
            }
        }
    }

    impl Actor for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
            self.received.push((from, payload.to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, key: TimerKey) {
            self.timer_fired.push(key);
        }
        fn on_power(&mut self, _ctx: &mut Ctx<'_>, powered: bool) {
            self.power_events.push(powered);
        }
    }

    /// Sends one payload at start.
    struct OneShot {
        dest: Dest,
        payload: Vec<u8>,
    }

    impl Actor for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.dest, self.payload.clone());
        }
    }

    fn perfect_sim(seed: u64) -> Simulation {
        Simulation::with_quality(seed, LinkQuality::perfect(), LinkQuality::perfect())
    }

    #[test]
    fn stream_tap_mirrors_marks_and_faults_onto_the_bus() {
        struct Marker;
        impl Actor for Marker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.mark("probe observed");
            }
        }
        let mut sim = perfect_sim(5);
        sim.enable_stream_tap();
        let node = sim.add_node(NodeConfig::wan_only("m"), Box::new(Marker));
        sim.apply_fault_plan(&crate::FaultPlan::new().at(3, Fault::Crash { node }));
        sim.run_until(Tick(10));
        let (_, events) = sim.telemetry().events_since(0);
        let rendered: Vec<String> = events
            .iter()
            .map(|e| format!("{}:{}:{}", e.at, e.topic, e.body))
            .collect();
        assert_eq!(
            rendered,
            vec![
                "0:mark:probe observed".to_string(),
                "3:fault:crash n0".to_string()
            ]
        );
        // Without the tap, the bus stays silent.
        let mut quiet = perfect_sim(5);
        let node = quiet.add_node(NodeConfig::wan_only("m"), Box::new(Marker));
        quiet.apply_fault_plan(&crate::FaultPlan::new().at(3, Fault::Crash { node }));
        quiet.run_until(Tick(10));
        assert_eq!(quiet.telemetry().events_since(0).1.len(), 0);
    }

    #[test]
    fn unicast_over_wan_delivers() {
        let mut sim = perfect_sim(1);
        let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
        let _src = sim.add_node(
            NodeConfig::wan_only("src"),
            Box::new(OneShot {
                dest: Dest::Unicast(sink),
                payload: vec![1, 2, 3],
            }),
        );
        sim.run_until(Tick(10));
        let sink = sim.actor::<Sink>(sink).unwrap();
        assert_eq!(sink.received.len(), 1);
        assert_eq!(sink.received[0].1, vec![1, 2, 3]);
    }

    #[test]
    fn lan_only_node_is_unreachable_from_wan() {
        let mut sim = perfect_sim(1);
        sim.enable_trace();
        let lan = LanId(0);
        let sink = sim.add_node(NodeConfig::lan_only("device", lan), Box::new(Sink::new()));
        let _attacker = sim.add_node(
            NodeConfig::wan_only("attacker"),
            Box::new(OneShot {
                dest: Dest::Unicast(sink),
                payload: vec![9],
            }),
        );
        sim.run_until(Tick(10));
        assert!(sim.actor::<Sink>(sink).unwrap().received.is_empty());
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Unroutable { .. })));
    }

    #[test]
    fn wan_only_node_cannot_broadcast_into_lan() {
        // The adversary-model invariant: no LAN access for remote attackers.
        let mut sim = perfect_sim(2);
        let lan = LanId(5);
        let dev = sim.add_node(NodeConfig::lan_only("device", lan), Box::new(Sink::new()));
        let _attacker = sim.add_node(
            NodeConfig::wan_only("attacker"),
            Box::new(OneShot {
                dest: Dest::Broadcast(lan),
                payload: vec![7],
            }),
        );
        sim.run_until(Tick(10));
        assert!(sim.actor::<Sink>(dev).unwrap().received.is_empty());
    }

    #[test]
    fn broadcast_reaches_all_lan_members_except_sender() {
        let mut sim = perfect_sim(3);
        let lan = LanId(0);
        let a = sim.add_node(NodeConfig::dual("a", lan), Box::new(Sink::new()));
        let b = sim.add_node(NodeConfig::lan_only("b", lan), Box::new(Sink::new()));
        let other = sim.add_node(
            NodeConfig::lan_only("other", LanId(1)),
            Box::new(Sink::new()),
        );
        let src = sim.add_node(
            NodeConfig::dual("src", lan),
            Box::new(OneShot {
                dest: Dest::Broadcast(lan),
                payload: vec![1],
            }),
        );
        sim.run_until(Tick(10));
        assert_eq!(sim.actor::<Sink>(a).unwrap().received.len(), 1);
        assert_eq!(sim.actor::<Sink>(b).unwrap().received.len(), 1);
        assert!(
            sim.actor::<Sink>(other).unwrap().received.is_empty(),
            "other LAN isolated"
        );
        assert_eq!(sim.actor::<Sink>(a).unwrap().received[0].0, src);
    }

    #[test]
    fn same_lan_works_even_when_wan_partitioned() {
        let mut sim = perfect_sim(4);
        let lan = LanId(0);
        let sink = sim.add_node(NodeConfig::dual("sink", lan), Box::new(Sink::new()));
        let src = sim.add_node(
            NodeConfig::dual("src", lan),
            Box::new(OneShot {
                dest: Dest::Unicast(sink),
                payload: vec![1],
            }),
        );
        sim.partition_wan(src, true);
        sim.partition_wan(sink, true);
        sim.run_until(Tick(10));
        assert_eq!(sim.actor::<Sink>(sink).unwrap().received.len(), 1);
    }

    #[test]
    fn wan_partition_blocks_cross_lan_traffic() {
        let mut sim = perfect_sim(5);
        let sink = sim.add_node(NodeConfig::wan_only("cloud"), Box::new(Sink::new()));
        let src = sim.add_node(
            NodeConfig::dual("device", LanId(0)),
            Box::new(OneShot {
                dest: Dest::Unicast(sink),
                payload: vec![1],
            }),
        );
        sim.partition_wan(src, true);
        sim.run_until(Tick(10));
        assert!(sim.actor::<Sink>(sink).unwrap().received.is_empty());
    }

    #[test]
    fn powered_off_node_drops_deliveries_and_timers() {
        let mut sim = perfect_sim(6);
        let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
        let _src = sim.add_node(
            NodeConfig::wan_only("src"),
            Box::new(OneShot {
                dest: Dest::Unicast(sink),
                payload: vec![1],
            }),
        );
        sim.set_power(sink, false);
        sim.run_until(Tick(10));
        let s = sim.actor::<Sink>(sink).unwrap();
        assert!(s.received.is_empty());
        assert_eq!(s.power_events, vec![false]);
        // Power back on: nothing replayed (packet was dropped, not queued).
        sim.set_power(sink, true);
        sim.run_until(Tick(20));
        assert!(sim.actor::<Sink>(sink).unwrap().received.is_empty());
    }

    #[test]
    fn timers_fire_in_order() {
        struct Holder {
            fired: Vec<(Tick, TimerKey)>,
        }
        impl Actor for Holder {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(30, 3);
                ctx.set_timer(10, 1);
                ctx.set_timer(20, 2);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: TimerKey) {
                self.fired.push((ctx.now(), key));
            }
        }
        let mut sim = perfect_sim(7);
        let h = sim.add_node(
            NodeConfig::wan_only("h"),
            Box::new(Holder { fired: Vec::new() }),
        );
        sim.run_until(Tick(100));
        let h = sim.actor::<Holder>(h).unwrap();
        assert_eq!(h.fired, vec![(Tick(10), 1), (Tick(20), 2), (Tick(30), 3)]);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        fn run(seed: u64) -> Vec<String> {
            let mut sim = Simulation::new(seed); // realistic jittery links
            sim.enable_trace();
            let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
            for i in 0..20 {
                sim.add_node(
                    NodeConfig::dual("src", LanId(0)),
                    Box::new(OneShot {
                        dest: Dest::Unicast(sink),
                        payload: vec![i],
                    }),
                );
            }
            sim.run_until(Tick(1000));
            sim.trace().iter().map(|e| e.to_string()).collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds must differ");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = perfect_sim(8);
        sim.run_until(Tick(500));
        assert_eq!(sim.now(), Tick(500));
        assert!(sim.is_idle());
    }

    #[test]
    fn step_processes_one_event_at_a_time() {
        let mut sim = perfect_sim(9);
        let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
        let src = sim.add_node(
            NodeConfig::wan_only("src"),
            Box::new(OneShot {
                dest: Dest::Unicast(sink),
                payload: vec![1],
            }),
        );
        // Events: Start(sink), Start(src) [sends], Deliver.
        assert!(sim.step());
        assert!(sim.step());
        assert!(sim.step());
        assert!(!sim.step());
        assert_eq!(sim.actor::<Sink>(sink).unwrap().received.len(), 1);
        assert_eq!(sim.node_name(src), "src");
        assert_eq!(sim.node_count(), 2);
    }

    #[test]
    fn actor_downcast_to_wrong_type_returns_none() {
        let mut sim = perfect_sim(10);
        let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
        assert!(sim.actor::<OneShot>(sink).is_none());
        assert!(sim.actor_mut::<Sink>(sink).is_some());
    }

    #[test]
    fn self_send_is_unroutable() {
        let mut sim = perfect_sim(11);
        struct SelfSender;
        impl Actor for SelfSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.id();
                ctx.send(Dest::Unicast(me), vec![1]);
            }
        }
        sim.enable_trace();
        sim.add_node(NodeConfig::wan_only("s"), Box::new(SelfSender));
        sim.run_until(Tick(10));
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Unroutable { .. })));
    }

    #[test]
    fn nat_blocks_unsolicited_wan_traffic_to_lan_nodes() {
        // A WAN-only sender cannot reach a dual (NAT'd) node cold…
        let mut sim = perfect_sim(20);
        let victim = sim.add_node(NodeConfig::dual("victim", LanId(0)), Box::new(Sink::new()));
        let _attacker = sim.add_node(
            NodeConfig::wan_only("attacker"),
            Box::new(OneShot {
                dest: Dest::Unicast(victim),
                payload: vec![6],
            }),
        );
        sim.run_until(Tick(10));
        assert!(
            sim.actor::<Sink>(victim).unwrap().received.is_empty(),
            "NAT held"
        );
    }

    #[test]
    fn nat_return_path_opens_after_outbound_traffic() {
        struct EchoServer;
        impl Actor for EchoServer {
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
                ctx.send(Dest::Unicast(from), payload.to_vec());
            }
        }
        let mut sim = perfect_sim(21);
        let server = sim.add_node(NodeConfig::wan_only("server"), Box::new(EchoServer));
        struct Client {
            server: NodeId,
            replies: u32,
        }
        impl Actor for Client {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(Dest::Unicast(self.server), vec![1]);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _payload: &[u8]) {
                self.replies += 1;
            }
        }
        let client = sim.add_node(
            NodeConfig::dual("client", LanId(0)),
            Box::new(Client { server, replies: 0 }),
        );
        sim.run_until(Tick(50));
        assert_eq!(
            sim.actor::<Client>(client).unwrap().replies,
            1,
            "connection tracking lets replies back in"
        );
    }

    #[test]
    fn note_appears_in_trace() {
        let mut sim = perfect_sim(12);
        sim.enable_trace();
        let n = sim.add_node(NodeConfig::wan_only("n"), Box::new(Sink::new()));
        sim.note(n, "hello");
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(&e.event, TraceEvent::Note { text, .. } if text == "hello")));
    }

    /// Sends one payload to `dest` every `every` ticks, forever.
    struct Beacon {
        dest: Dest,
        every: u64,
    }

    impl Actor for Beacon {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.every, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _key: TimerKey) {
            ctx.send(self.dest, vec![0xBE]);
            ctx.set_timer(self.every, 1);
        }
    }

    #[test]
    fn lan_partition_blocks_and_heals() {
        let mut sim = perfect_sim(30);
        let lan = LanId(0);
        let sink = sim.add_node(NodeConfig::lan_only("sink", lan), Box::new(Sink::new()));
        let _src = sim.add_node(
            NodeConfig::lan_only("src", lan),
            Box::new(Beacon {
                dest: Dest::Unicast(sink),
                every: 10,
            }),
        );
        let plan = FaultPlan::new().lan_blackout(lan, 25, 50);
        sim.apply_fault_plan(&plan);
        sim.run_until(Tick(25));
        let before = sim.actor::<Sink>(sink).unwrap().received.len();
        assert_eq!(before, 2, "t10, t20 delivered before the blackout");
        sim.run_until(Tick(75));
        assert_eq!(
            sim.actor::<Sink>(sink).unwrap().received.len(),
            before,
            "nothing delivered while the LAN is partitioned"
        );
        sim.run_until(Tick(120));
        assert!(
            sim.actor::<Sink>(sink).unwrap().received.len() > before,
            "traffic resumes after the heal"
        );
    }

    #[test]
    fn lan_partition_blocks_broadcast() {
        let mut sim = perfect_sim(31);
        let lan = LanId(0);
        let sink = sim.add_node(NodeConfig::lan_only("sink", lan), Box::new(Sink::new()));
        let _src = sim.add_node(
            NodeConfig::lan_only("src", lan),
            Box::new(Beacon {
                dest: Dest::Broadcast(lan),
                every: 10,
            }),
        );
        sim.apply_fault_plan(&FaultPlan::new().at(
            0,
            Fault::LanPartition {
                lan,
                partitioned: true,
            },
        ));
        sim.run_until(Tick(100));
        assert!(sim.actor::<Sink>(sink).unwrap().received.is_empty());
    }

    #[test]
    fn crash_restart_cycles_power_via_plan() {
        let mut sim = perfect_sim(32);
        let n = sim.add_node(NodeConfig::wan_only("n"), Box::new(Sink::new()));
        sim.enable_trace();
        sim.apply_fault_plan(&FaultPlan::new().crash_restart(n, 10, 40));
        sim.run_until(Tick(100));
        assert_eq!(
            sim.actor::<Sink>(n).unwrap().power_events,
            vec![false, true]
        );
        let faults: Vec<String> = sim
            .trace()
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::Fault { text } => Some(text.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            faults,
            vec!["crash n0".to_string(), "restart n0".to_string()]
        );
    }

    #[test]
    fn wan_quality_override_degrades_and_restores() {
        let mut sim = perfect_sim(33);
        let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
        let _src = sim.add_node(
            NodeConfig::wan_only("src"),
            Box::new(Beacon {
                dest: Dest::Unicast(sink),
                every: 10,
            }),
        );
        // Total loss for [20, 60): beacons at t20..t50 vanish.
        sim.apply_fault_plan(&FaultPlan::new().degrade_wan(20, 40, LinkQuality::lossy(1000)));
        sim.run_until(Tick(100));
        let got = sim.actor::<Sink>(sink).unwrap().received.len();
        // t10 + t60..t90 survive (delivery latency 1 tick).
        assert_eq!(got, 5, "got {got}");
    }

    #[test]
    fn chaos_duplication_duplicates_packets() {
        let mut sim = perfect_sim(34);
        let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
        let _src = sim.add_node(
            NodeConfig::wan_only("src"),
            Box::new(Beacon {
                dest: Dest::Unicast(sink),
                every: 10,
            }),
        );
        sim.set_chaos(1000, 0, 0); // duplicate everything
        sim.run_until(Tick(105));
        let got = sim.actor::<Sink>(sink).unwrap().received.len();
        assert_eq!(got, 20, "10 sends, each duplicated");
    }

    #[test]
    fn fault_free_chaos_knobs_do_not_disturb_determinism() {
        // A run with an *empty* fault plan must be bit-identical to a run
        // with no plan at all: chaos knobs at zero draw no RNG.
        fn run(with_empty_plan: bool) -> Vec<String> {
            let mut sim = Simulation::new(77);
            sim.enable_trace();
            let sink = sim.add_node(NodeConfig::wan_only("sink"), Box::new(Sink::new()));
            let _src = sim.add_node(
                NodeConfig::dual("src", LanId(0)),
                Box::new(Beacon {
                    dest: Dest::Unicast(sink),
                    every: 7,
                }),
            );
            if with_empty_plan {
                sim.apply_fault_plan(&FaultPlan::new());
            }
            sim.run_until(Tick(500));
            sim.trace().iter().map(|e| e.to_string()).collect()
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn pair_quality_override_is_directional() {
        let mut sim = perfect_sim(35);
        let a = sim.add_node(NodeConfig::wan_only("a"), Box::new(Sink::new()));
        let b = sim.add_node(
            NodeConfig::wan_only("b"),
            Box::new(Beacon {
                dest: Dest::Unicast(a),
                every: 10,
            }),
        );
        // Kill only b -> a.
        sim.set_pair_quality(b, a, Some(LinkQuality::lossy(1000)));
        sim.run_until(Tick(100));
        assert!(sim.actor::<Sink>(a).unwrap().received.is_empty());
        sim.set_pair_quality(b, a, None);
        sim.run_until(Tick(200));
        assert!(!sim.actor::<Sink>(a).unwrap().received.is_empty());
    }
}
