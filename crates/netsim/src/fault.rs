//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seed-reproducible schedule of [`Fault`]s — link
//! flaps, LAN/WAN partitions, node crash/restart cycles, per-path quality
//! overrides, and message duplication/reordering windows. The plan is built
//! up front (optionally from a [`SimRng`], so a `(seed, spec)` pair fully
//! determines it), handed to [`Simulation::apply_fault_plan`], and executed
//! by the event loop exactly like any other scheduled event: two runs with
//! the same seed and plan produce bit-identical traces.
//!
//! [`Simulation::apply_fault_plan`]: crate::Simulation::apply_fault_plan

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::quality::LinkQuality;
use crate::rng::SimRng;
use crate::time::Tick;
use crate::topology::{LanId, NodeId};

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Cut (or restore) a node's WAN uplink — an ISP outage or the flap of
    /// a congested home router.
    WanPartition {
        /// The affected node.
        node: NodeId,
        /// `true` cuts the uplink, `false` restores it.
        partitioned: bool,
    },
    /// Take a whole LAN down (or back up): local unicast and broadcast on
    /// the LAN fail while partitioned; WAN uplinks are unaffected.
    LanPartition {
        /// The affected LAN.
        lan: LanId,
        /// `true` partitions the LAN, `false` heals it.
        partitioned: bool,
    },
    /// Crash a node: power is cut, pending deliveries to it are dropped at
    /// delivery time, and timers stop firing (in-RAM state is lost to the
    /// extent the actor models a reboot in `on_power`).
    Crash {
        /// The node to crash.
        node: NodeId,
    },
    /// Restart a crashed node (power back on; the actor's `on_power(true)`
    /// reboot path runs).
    Restart {
        /// The node to restart.
        node: NodeId,
    },
    /// Override (or clear, with `None`) the quality of one LAN.
    LanQuality {
        /// The affected LAN.
        lan: LanId,
        /// New quality, or `None` to restore the simulation default.
        quality: Option<LinkQuality>,
    },
    /// Override (or clear, with `None`) the quality of the WAN.
    WanQuality {
        /// New quality, or `None` to restore the simulation default.
        quality: Option<LinkQuality>,
    },
    /// Override (or clear, with `None`) the quality of one directed path.
    /// Takes precedence over LAN/WAN overrides.
    PairQuality {
        /// Sender side of the path.
        from: NodeId,
        /// Receiver side of the path.
        to: NodeId,
        /// New quality, or `None` to restore the default resolution.
        quality: Option<LinkQuality>,
    },
    /// Set the delivery-chaos knobs: each successfully delivered packet is
    /// duplicated with probability `dup_per_mille / 1000`, and delayed by
    /// up to `reorder_extra_max` extra ticks with probability
    /// `reorder_per_mille / 1000` (which reorders it behind later sends).
    /// All zeros turns chaos off.
    Chaos {
        /// Duplication probability in per-mille.
        dup_per_mille: u16,
        /// Reordering probability in per-mille.
        reorder_per_mille: u16,
        /// Maximum extra latency a reordered packet picks up.
        reorder_extra_max: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::WanPartition { node, partitioned } => {
                write!(
                    f,
                    "wan {} {node}",
                    if *partitioned { "cut" } else { "restored" }
                )
            }
            Fault::LanPartition { lan, partitioned } => {
                write!(
                    f,
                    "{lan} {}",
                    if *partitioned { "partitioned" } else { "healed" }
                )
            }
            Fault::Crash { node } => write!(f, "crash {node}"),
            Fault::Restart { node } => write!(f, "restart {node}"),
            Fault::LanQuality { lan, quality } => match quality {
                Some(q) => write!(f, "{lan} quality {}..{}/{}", q.latency_min, q.latency_max, q.drop_per_mille),
                None => write!(f, "{lan} quality restored"),
            },
            Fault::WanQuality { quality } => match quality {
                Some(q) => write!(f, "wan quality {}..{}/{}", q.latency_min, q.latency_max, q.drop_per_mille),
                None => write!(f, "wan quality restored"),
            },
            Fault::PairQuality { from, to, quality } => match quality {
                Some(q) => write!(f, "path {from}->{to} quality {}..{}/{}", q.latency_min, q.latency_max, q.drop_per_mille),
                None => write!(f, "path {from}->{to} quality restored"),
            },
            Fault::Chaos {
                dup_per_mille,
                reorder_per_mille,
                reorder_extra_max,
            } => write!(
                f,
                "chaos dup={dup_per_mille}\u{2030} reorder={reorder_per_mille}\u{2030}/{reorder_extra_max}t"
            ),
        }
    }
}

/// A schedule of faults, ordered by injection time.
///
/// Build one with the combinators below (possibly drawing times from a
/// [`SimRng`]), then hand it to `Simulation::apply_fault_plan`. Events at
/// equal ticks fire in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(Tick, Fault)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules one fault at `at`.
    pub fn at(mut self, at: u64, fault: Fault) -> Self {
        self.events.push((Tick(at), fault));
        self
    }

    /// Cuts `node`'s WAN uplink at `at` and restores it `down_for` ticks
    /// later (one link flap).
    pub fn wan_flap(self, node: NodeId, at: u64, down_for: u64) -> Self {
        self.at(
            at,
            Fault::WanPartition {
                node,
                partitioned: true,
            },
        )
        .at(
            at.saturating_add(down_for),
            Fault::WanPartition {
                node,
                partitioned: false,
            },
        )
    }

    /// Partitions `lan` at `at` and heals it `down_for` ticks later.
    pub fn lan_blackout(self, lan: LanId, at: u64, down_for: u64) -> Self {
        self.at(
            at,
            Fault::LanPartition {
                lan,
                partitioned: true,
            },
        )
        .at(
            at.saturating_add(down_for),
            Fault::LanPartition {
                lan,
                partitioned: false,
            },
        )
    }

    /// Crashes `node` at `at` and restarts it `down_for` ticks later.
    pub fn crash_restart(self, node: NodeId, at: u64, down_for: u64) -> Self {
        self.at(at, Fault::Crash { node })
            .at(at.saturating_add(down_for), Fault::Restart { node })
    }

    /// Degrades the WAN to `quality` for a window of `lasting` ticks.
    pub fn degrade_wan(self, at: u64, lasting: u64, quality: LinkQuality) -> Self {
        self.at(
            at,
            Fault::WanQuality {
                quality: Some(quality),
            },
        )
        .at(
            at.saturating_add(lasting),
            Fault::WanQuality { quality: None },
        )
    }

    /// Degrades one LAN to `quality` for a window of `lasting` ticks.
    pub fn degrade_lan(self, lan: LanId, at: u64, lasting: u64, quality: LinkQuality) -> Self {
        self.at(
            at,
            Fault::LanQuality {
                lan,
                quality: Some(quality),
            },
        )
        .at(
            at.saturating_add(lasting),
            Fault::LanQuality { lan, quality: None },
        )
    }

    /// Enables duplication/reordering chaos for a window of `lasting`
    /// ticks.
    pub fn chaos_window(
        self,
        at: u64,
        lasting: u64,
        dup_per_mille: u16,
        reorder_per_mille: u16,
        reorder_extra_max: u64,
    ) -> Self {
        self.at(
            at,
            Fault::Chaos {
                dup_per_mille,
                reorder_per_mille,
                reorder_extra_max,
            },
        )
        .at(
            at.saturating_add(lasting),
            Fault::Chaos {
                dup_per_mille: 0,
                reorder_per_mille: 0,
                reorder_extra_max: 0,
            },
        )
    }

    /// Schedules `flaps` WAN flaps of `node` at deterministic random times
    /// in `window`, each lasting a random duration drawn from `down` ticks.
    /// Same `rng` state, same plan.
    pub fn random_wan_flaps(
        mut self,
        rng: &mut SimRng,
        node: NodeId,
        flaps: u32,
        window: std::ops::Range<u64>,
        down: std::ops::Range<u64>,
    ) -> Self {
        let hi = window.end.max(window.start + 1) - 1;
        for _ in 0..flaps {
            let at = rng.range_u64(window.start, hi);
            let lasting = rng.range_u64(down.start, down.end.max(down.start));
            self = self.wan_flap(node, at, lasting);
        }
        self
    }

    /// Merges another plan into this one.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self
    }

    /// The scheduled events, sorted by time (stable: ties keep insertion
    /// order).
    pub fn events(&self) -> Vec<(Tick, Fault)> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|(at, _)| *at);
        evs
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_schedule_paired_events() {
        let plan = FaultPlan::new()
            .wan_flap(NodeId(1), 100, 50)
            .lan_blackout(LanId(0), 10, 5)
            .crash_restart(NodeId(2), 30, 70);
        assert_eq!(plan.len(), 6);
        let evs = plan.events();
        // Sorted by tick, pairs preserved.
        assert_eq!(evs[0].0, Tick(10));
        assert_eq!(evs[1].0, Tick(15));
        assert!(matches!(evs[2].1, Fault::Crash { .. }));
        assert!(matches!(
            evs[5].1,
            Fault::WanPartition {
                partitioned: false,
                ..
            }
        ));
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let mk = |seed| {
            FaultPlan::new().random_wan_flaps(
                &mut SimRng::new(seed),
                NodeId(3),
                4,
                0..10_000,
                100..500,
            )
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }

    #[test]
    fn display_is_human_readable() {
        let f = Fault::Crash { node: NodeId(7) };
        assert_eq!(f.to_string(), "crash n7");
        let f = Fault::WanQuality {
            quality: Some(LinkQuality::lossy(300)),
        };
        assert!(f.to_string().contains("300"));
    }

    #[test]
    fn empty_plan() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.events().is_empty());
    }
}
