//! Deterministic randomness for the simulation.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation's single seeded RNG. Every stochastic decision (latency
/// draws, loss, token entropy, workload arrival) flows through one instance,
/// so a `(seed, program)` pair fully determines the execution.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        self.inner.gen_range(lo..=hi)
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        assert!(den != 0, "chance denominator must be nonzero");
        self.inner.gen_range(0..den) < num
    }

    /// 128 bits of entropy for token minting.
    pub fn entropy128(&mut self) -> u128 {
        (u128::from(self.inner.next_u64()) << 64) | u128::from(self.inner.next_u64())
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Forks an independent RNG stream (for per-thread experiment sweeps)
    /// deterministically derived from this one.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = SimRng::new(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.range_u64(0, 3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!((0..100).all(|_| rng.chance(1, 1)));
        assert!((0..100).all(|_| !rng.chance(0, 1)));
    }

    #[test]
    fn fork_is_deterministic_but_independent() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Parent streams stay in lockstep after the fork.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn entropy128_uses_both_halves() {
        let mut rng = SimRng::new(1);
        let e = rng.entropy128();
        assert_ne!(e >> 64, 0);
        assert_ne!(e & u128::from(u64::MAX), 0);
    }
}
