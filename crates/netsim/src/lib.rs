//! # rb-netsim
//!
//! A deterministic discrete-event network simulator for three-party IoT
//! topologies: devices and companion apps live on home LANs behind a
//! firewall, the cloud and the attacker live on the WAN.
//!
//! The simulator enforces the paper's adversary model structurally
//! (Section III-A): "we assume the adversary cannot access user's local
//! networks" — a WAN-only node can neither receive LAN broadcasts nor
//! deliver packets to a LAN-only port. All the attacks in `rb-attack`
//! therefore travel the same WAN path a real remote attacker would use.
//!
//! ## Model
//!
//! * [`Simulation`] owns a set of [`Actor`]s, a virtual clock measured in
//!   [`Tick`]s, and a priority queue of scheduled events.
//! * Actors communicate only by sending byte payloads through their
//!   [`Ctx`]; the network applies per-domain latency, jitter, and loss from
//!   [`LinkQuality`], all drawn from one seeded RNG, so a given seed always
//!   produces the identical execution.
//! * Node connectivity ([`NodeConfig`]) defines LAN membership and WAN
//!   access; [`Simulation::set_power`] and [`Simulation::partition_wan`]
//!   model power-offs and connection disruptions.
//!
//! ## Example
//!
//! ```rust
//! use rb_netsim::{Actor, Ctx, Dest, NodeConfig, Simulation, Tick};
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: rb_netsim::NodeId, payload: &[u8]) {
//!         let mut reply = payload.to_vec();
//!         reply.reverse();
//!         ctx.send(Dest::Unicast(from), reply);
//!     }
//! }
//!
//! struct Probe { got: Option<Vec<u8>>, peer: rb_netsim::NodeId }
//! impl Actor for Probe {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(Dest::Unicast(self.peer), b"ping".to_vec());
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: rb_netsim::NodeId, payload: &[u8]) {
//!         self.got = Some(payload.to_vec());
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let echo = sim.add_node(NodeConfig::wan_only("echo"), Box::new(Echo));
//! let probe = sim.add_node(NodeConfig::wan_only("probe"), Box::new(Probe { got: None, peer: echo }));
//! sim.run_until(Tick(1000));
//! let probe_actor = sim.actor::<Probe>(probe).unwrap();
//! assert_eq!(probe_actor.got.as_deref(), Some(&b"gnip"[..]));
//! ```

mod actor;
mod fault;
mod quality;
mod retry;
mod rng;
mod sim;
mod time;
mod topology;
mod trace;

pub use actor::{Actor, Ctx, TimerKey};
pub use fault::{Fault, FaultPlan};
pub use quality::LinkQuality;
pub use retry::{Retry, RetryPolicy};
pub use rng::SimRng;
pub use sim::{Dest, NodeConfig, Simulation};
pub use time::Tick;
pub use topology::{LanId, NodeId};
pub use trace::{TraceCtx, TraceEntry, TraceEvent, TraceParseError};

// Re-exported so actors and harnesses can record into the simulation's
// registry without naming the telemetry crate themselves.
pub use rb_telemetry::{self as telemetry, Telemetry};

// Likewise for the phase profiler the simulation can carry.
pub use rb_prof::{self as prof, Profiler};
