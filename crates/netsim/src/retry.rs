//! Retry with exponential backoff, jitter, and a budget.
//!
//! Shared by the device firmware and the companion app so every procedure
//! of the binding life cycle (`Status`, `Bind`, `Unbind`) survives injected
//! faults instead of silently wedging on one lost packet. All jitter is
//! drawn from the simulation's [`SimRng`], so retry schedules are part of
//! the deterministic execution.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Parameters of an exponential-backoff schedule.
///
/// Attempt `n` (0-based) waits `min(cap, base * 2^n + jitter)` ticks, where
/// `jitter` is drawn uniformly from `[0, delay * jitter_per_mille / 1000]`.
/// Because the jitter never exceeds the un-jittered delay (per-mille is
/// clamped to 1000), the schedule is monotone non-decreasing for any RNG
/// stream, and it is bounded by `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: u64,
    /// Upper bound on any delay.
    pub cap: u64,
    /// Jitter amplitude as a fraction of the current delay, in per-mille
    /// (values above 1000 are treated as 1000 to keep the schedule
    /// monotone).
    pub jitter_per_mille: u16,
    /// Maximum number of retries before the caller should give up.
    pub budget: u32,
}

impl RetryPolicy {
    /// A policy with the given base and cap, moderate jitter (50%), and a
    /// budget of 16 retries.
    pub fn new(base: u64, cap: u64) -> Self {
        RetryPolicy {
            base: base.max(1),
            cap: cap.max(base.max(1)),
            jitter_per_mille: 500,
            budget: 16,
        }
    }

    /// Overrides the retry budget.
    pub fn budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the jitter amplitude.
    pub fn jitter(mut self, per_mille: u16) -> Self {
        self.jitter_per_mille = per_mille;
        self
    }

    /// The delay before retry `attempt` (0-based), with jitter drawn from
    /// `rng`.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> u64 {
        let shift = attempt.min(62);
        let raw = self
            .base
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(self.cap);
        let amplitude = u64::from(self.jitter_per_mille.min(1000));
        let jitter_max = raw / 1000 * amplitude + raw % 1000 * amplitude / 1000;
        let jitter = if jitter_max > 0 {
            rng.range_u64(0, jitter_max)
        } else {
            0
        };
        raw.saturating_add(jitter).min(self.cap)
    }
}

/// Mutable retry state: an attempt counter against a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Retry {
    policy: RetryPolicy,
    attempt: u32,
}

impl Retry {
    /// Fresh state (no retries consumed).
    pub fn new(policy: RetryPolicy) -> Self {
        Retry { policy, attempt: 0 }
    }

    /// The policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Retries consumed since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Whether the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.policy.budget
    }

    /// Consumes one retry: returns the backoff delay to wait before the
    /// next send, or `None` when the budget is exhausted (the caller
    /// should cleanly abort rather than wedge).
    pub fn next(&mut self, rng: &mut SimRng) -> Option<u64> {
        if self.exhausted() {
            return None;
        }
        let delay = self.policy.delay(self.attempt, rng);
        self.attempt += 1;
        Some(delay)
    }

    /// Resets the attempt counter — call whenever the peer answers, so the
    /// budget only ever counts *consecutive* unanswered sends.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_capped() {
        let policy = RetryPolicy::new(100, 3_000).jitter(1000);
        for seed in 0..50 {
            let mut rng = SimRng::new(seed);
            let delays: Vec<u64> = (0..12).map(|n| policy.delay(n, &mut rng)).collect();
            for w in delays.windows(2) {
                assert!(w[0] <= w[1], "monotone: {delays:?}");
            }
            assert!(delays.iter().all(|&d| d <= 3_000), "capped: {delays:?}");
            assert!(delays[0] >= 100, "never below base");
        }
    }

    #[test]
    fn zero_jitter_is_pure_exponential() {
        let policy = RetryPolicy::new(10, 1_000).jitter(0);
        let mut rng = SimRng::new(1);
        let delays: Vec<u64> = (0..8).map(|n| policy.delay(n, &mut rng)).collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 160, 320, 640, 1_000]);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let mut retry = Retry::new(RetryPolicy::new(5, 50).budget(3));
        let mut rng = SimRng::new(2);
        assert!(retry.next(&mut rng).is_some());
        assert!(retry.next(&mut rng).is_some());
        assert!(retry.next(&mut rng).is_some());
        assert!(retry.exhausted());
        assert_eq!(retry.next(&mut rng), None);
        retry.reset();
        assert!(!retry.exhausted());
        assert!(retry.next(&mut rng).is_some());
        assert_eq!(retry.attempts(), 1);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let policy = RetryPolicy::new(u64::MAX / 2, u64::MAX);
        let mut rng = SimRng::new(3);
        // Shift saturates, multiply saturates, delay stays at the cap.
        assert_eq!(policy.delay(200, &mut rng), u64::MAX);
    }

    #[test]
    fn same_seed_same_schedule() {
        let policy = RetryPolicy::new(100, 10_000);
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            (0..10)
                .map(|n| policy.delay(n, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }
}
