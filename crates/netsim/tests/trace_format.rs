//! Golden `Display` strings and JSON round-trips for every `TraceEvent`
//! variant, so exporter formats cannot drift silently. The chaos golden
//! trace, the telemetry goldens, the forensic timeline, and every
//! experiment that greps rendered traces all depend on these exact shapes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rb_netsim::{NodeId, Tick, TraceCtx, TraceEntry, TraceEvent};

fn ctx(trace_id: u64, span_id: u64, parent_span_id: u64) -> TraceCtx {
    TraceCtx {
        trace_id,
        span_id,
        parent_span_id,
    }
}

/// One exemplar of every variant (including the PR-2 `Fault` and the PR-4
/// `Mark`), with its pinned `Display` rendering and canonical JSON
/// encoding.
fn exemplars() -> Vec<(TraceEntry, &'static str, &'static str)> {
    vec![
        (
            TraceEntry {
                at: Tick(3),
                event: TraceEvent::Sent {
                    from: NodeId(1),
                    to: NodeId(2),
                    bytes: 10,
                    ctx: ctx(1, 4, 0),
                },
            },
            "t3 n1 -> n2 sent 10B [1:4]",
            r#"{"at":3,"kind":"sent","from":1,"to":2,"bytes":10,"trace":1,"span":4,"parent":0}"#,
        ),
        (
            TraceEntry {
                at: Tick(4),
                event: TraceEvent::Delivered {
                    from: NodeId(1),
                    to: NodeId(2),
                    bytes: 128,
                    ctx: ctx(1, 4, 0),
                },
            },
            "t4 n1 -> n2 delivered 128B [1:4]",
            r#"{"at":4,"kind":"delivered","from":1,"to":2,"bytes":128,"trace":1,"span":4,"parent":0}"#,
        ),
        (
            TraceEntry {
                at: Tick(9),
                event: TraceEvent::Dropped {
                    from: NodeId(0),
                    to: NodeId(7),
                    bytes: 33,
                    ctx: ctx(2, 6, 4),
                },
            },
            "t9 n0 -> n7 DROPPED 33B [2:6<4]",
            r#"{"at":9,"kind":"dropped","from":0,"to":7,"bytes":33,"trace":2,"span":6,"parent":4}"#,
        ),
        (
            TraceEntry {
                at: Tick(12),
                event: TraceEvent::Unroutable {
                    from: NodeId(9),
                    to: NodeId(1),
                    bytes: 21,
                    ctx: ctx(3, 7, 0),
                },
            },
            "t12 n9 -> n1 UNROUTABLE 21B [3:7]",
            r#"{"at":12,"kind":"unroutable","from":9,"to":1,"bytes":21,"trace":3,"span":7,"parent":0}"#,
        ),
        (
            TraceEntry {
                at: Tick(50),
                event: TraceEvent::Power {
                    node: NodeId(3),
                    powered: false,
                },
            },
            "t50 n3 power=off",
            r#"{"at":50,"kind":"power","node":3,"powered":false}"#,
        ),
        (
            TraceEntry {
                at: Tick(51),
                event: TraceEvent::Power {
                    node: NodeId(3),
                    powered: true,
                },
            },
            "t51 n3 power=on",
            r#"{"at":51,"kind":"power","node":3,"powered":true}"#,
        ),
        (
            TraceEntry {
                at: Tick(60),
                event: TraceEvent::Note {
                    node: NodeId(2),
                    text: "button pressed".to_string(),
                },
            },
            "t60 n2 note: button pressed",
            r#"{"at":60,"kind":"note","node":2,"text":"button pressed"}"#,
        ),
        (
            TraceEntry {
                at: Tick(61),
                event: TraceEvent::Mark {
                    node: NodeId(0),
                    text: "shadow dev=d1 from=control to=online".to_string(),
                    ctx: ctx(5, 11, 9),
                },
            },
            "t61 n0 mark: shadow dev=d1 from=control to=online [5:11<9]",
            r#"{"at":61,"kind":"mark","node":0,"text":"shadow dev=d1 from=control to=online","trace":5,"span":11,"parent":9}"#,
        ),
        (
            TraceEntry {
                at: Tick(75),
                event: TraceEvent::Fault {
                    text: "wan-partition n4 on".to_string(),
                },
            },
            "t75 FAULT wan-partition n4 on",
            r#"{"at":75,"kind":"fault","text":"wan-partition n4 on"}"#,
        ),
    ]
}

#[test]
fn display_goldens_cover_every_variant() {
    for (entry, display, _) in exemplars() {
        assert_eq!(entry.to_string(), display);
    }
}

#[test]
fn json_encodings_are_pinned() {
    for (entry, _, json) in exemplars() {
        assert_eq!(entry.to_json(), json);
    }
}

#[test]
fn json_round_trips_every_variant() {
    for (entry, _, _) in exemplars() {
        let decoded = TraceEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(decoded, entry);
    }
}

#[test]
fn json_round_trips_hostile_text() {
    // Note/Fault/Mark payloads are free-form: quotes, backslashes,
    // newlines, control bytes, and non-ASCII must all survive the codec.
    for text in ["say \"hi\"", "a\\b", "line1\nline2\ttab", "π → ∞", "\u{1}"] {
        let entry = TraceEntry {
            at: Tick(1),
            event: TraceEvent::Fault {
                text: text.to_string(),
            },
        };
        assert_eq!(TraceEntry::from_json(&entry.to_json()).unwrap(), entry);
        let entry = TraceEntry {
            at: Tick(2),
            event: TraceEvent::Note {
                node: NodeId(5),
                text: text.to_string(),
            },
        };
        assert_eq!(TraceEntry::from_json(&entry.to_json()).unwrap(), entry);
        let entry = TraceEntry {
            at: Tick(3),
            event: TraceEvent::Mark {
                node: NodeId(5),
                text: text.to_string(),
                ctx: ctx(9, 12, 0),
            },
        };
        assert_eq!(TraceEntry::from_json(&entry.to_json()).unwrap(), entry);
    }
}

#[test]
fn parser_accepts_reordered_fields_and_whitespace() {
    let entry = TraceEntry::from_json(
        " { \"kind\" : \"sent\" , \"to\" : 2 , \"span\" : 5 , \"from\" : 1 , \"bytes\" : 7 , \"trace\" : 2 , \"at\" : 3 , \"parent\" : 1 } ",
    )
    .unwrap();
    assert_eq!(
        entry,
        TraceEntry {
            at: Tick(3),
            event: TraceEvent::Sent {
                from: NodeId(1),
                to: NodeId(2),
                bytes: 7,
                ctx: ctx(2, 5, 1),
            },
        }
    );
}

#[test]
fn parser_defaults_absent_context_and_drop_bytes_to_zero() {
    // Pre-PR-4 encodings carried no trace context and no bytes on
    // Dropped/Unroutable: they must still decode (serde-compatible
    // defaults), landing at ctx zero / 0 bytes.
    let entry =
        TraceEntry::from_json(r#"{"at":3,"kind":"sent","from":1,"to":2,"bytes":10}"#).unwrap();
    assert_eq!(
        entry.event,
        TraceEvent::Sent {
            from: NodeId(1),
            to: NodeId(2),
            bytes: 10,
            ctx: TraceCtx::default(),
        }
    );
    let entry = TraceEntry::from_json(r#"{"at":9,"kind":"dropped","from":0,"to":7}"#).unwrap();
    assert_eq!(
        entry.event,
        TraceEvent::Dropped {
            from: NodeId(0),
            to: NodeId(7),
            bytes: 0,
            ctx: TraceCtx::default(),
        }
    );
    let entry = TraceEntry::from_json(r#"{"at":9,"kind":"unroutable","from":4,"to":5}"#).unwrap();
    assert_eq!(
        entry.event,
        TraceEvent::Unroutable {
            from: NodeId(4),
            to: NodeId(5),
            bytes: 0,
            ctx: TraceCtx::default(),
        }
    );
}

#[test]
fn parser_rejects_malformed_input() {
    for bad in [
        "",
        "{}",
        r#"{"at":1}"#,
        r#"{"at":1,"kind":"sent","from":1,"to":2}"#,
        r#"{"at":1,"kind":"warp","from":1,"to":2}"#,
        r#"{"at":1,"kind":"fault","text":"x"} trailing"#,
        r#"{"at":1,"kind":"fault","text":"x","mystery":2}"#,
        r#"{"at":1,"kind":"mark","node":1}"#,
        r#"{"at":9999999999999,"kind":"power","node":4294967296,"powered":true}"#,
        r#"{"at":1,"kind":"note","node":1,"text":"bad \q escape"}"#,
    ] {
        assert!(
            TraceEntry::from_json(bad).is_err(),
            "accepted malformed input: {bad}"
        );
    }
}

#[test]
fn live_sim_trace_round_trips_through_json() {
    // An end-to-end check over a real traced run: every entry the engine
    // emits survives encode/decode unchanged.
    use rb_netsim::{Actor, Ctx, Dest, NodeConfig, Simulation};

    struct Chatter {
        peer: Option<NodeId>,
    }
    impl Actor for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(peer) = self.peer {
                ctx.send(Dest::Unicast(peer), vec![0xAB; 16]);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, _payload: &[u8]) {
            ctx.mark("got one");
        }
    }

    let mut sim = Simulation::new(11);
    sim.enable_trace();
    let a = sim.add_node(NodeConfig::wan_only("a"), Box::new(Chatter { peer: None }));
    let _b = sim.add_node(
        NodeConfig::wan_only("b"),
        Box::new(Chatter { peer: Some(a) }),
    );
    sim.note(a, "hello \"world\"");
    sim.run_for(1_000);
    sim.set_power(a, false);
    sim.run_for(10);
    assert!(!sim.trace().is_empty());
    for entry in sim.trace() {
        let decoded = TraceEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(&decoded, entry);
    }
    // The mark emitted while handling the delivered packet carries that
    // packet's exact context.
    let delivered = sim
        .trace()
        .iter()
        .find_map(|e| match &e.event {
            TraceEvent::Delivered { ctx, .. } => Some(*ctx),
            _ => None,
        })
        .unwrap();
    assert!(sim.trace().iter().any(
        |e| matches!(&e.event, TraceEvent::Mark { ctx, text, .. } if *ctx == delivered && text == "got one")
    ));
}

#[test]
fn causal_propagation_builds_request_reply_trees() {
    // A request/response pair: the reply's span must be a child of the
    // request's span within the same trace; the request is a root.
    use rb_netsim::{Actor, Ctx, Dest, NodeConfig, Simulation};

    struct Echo;
    impl Actor for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
            ctx.send(Dest::Unicast(from), payload.to_vec());
        }
    }
    struct Caller {
        peer: NodeId,
    }
    impl Actor for Caller {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(5, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _key: u64) {
            ctx.send(Dest::Unicast(self.peer), vec![1, 2, 3]);
        }
    }

    let mut sim = Simulation::new(7);
    sim.enable_trace();
    let echo = sim.add_node(NodeConfig::wan_only("echo"), Box::new(Echo));
    let _caller = sim.add_node(
        NodeConfig::wan_only("caller"),
        Box::new(Caller { peer: echo }),
    );
    sim.run_for(1_000);

    let sents: Vec<TraceCtx> = sim
        .trace()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Sent { ctx, .. } => Some(*ctx),
            _ => None,
        })
        .collect();
    assert_eq!(sents.len(), 2, "request + reply");
    let (request, reply) = (sents[0], sents[1]);
    assert!(request.is_root(), "timer-driven send roots a fresh trace");
    assert_eq!(reply.trace_id, request.trace_id, "same causal tree");
    assert_eq!(
        reply.parent_span_id, request.span_id,
        "reply is a child of the request"
    );
    assert_ne!(reply.span_id, request.span_id);
}
