//! Golden `Display` strings and JSON round-trips for every `TraceEvent`
//! variant, so exporter formats cannot drift silently. The chaos golden
//! trace, the telemetry goldens, and every experiment that greps rendered
//! traces all depend on these exact shapes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rb_netsim::{NodeId, Tick, TraceEntry, TraceEvent};

/// One exemplar of every variant (including the PR-2 `Fault`), with its
/// pinned `Display` rendering and canonical JSON encoding.
fn exemplars() -> Vec<(TraceEntry, &'static str, &'static str)> {
    vec![
        (
            TraceEntry {
                at: Tick(3),
                event: TraceEvent::Sent {
                    from: NodeId(1),
                    to: NodeId(2),
                    bytes: 10,
                },
            },
            "t3 n1 -> n2 sent 10B",
            r#"{"at":3,"kind":"sent","from":1,"to":2,"bytes":10}"#,
        ),
        (
            TraceEntry {
                at: Tick(4),
                event: TraceEvent::Delivered {
                    from: NodeId(1),
                    to: NodeId(2),
                    bytes: 128,
                },
            },
            "t4 n1 -> n2 delivered 128B",
            r#"{"at":4,"kind":"delivered","from":1,"to":2,"bytes":128}"#,
        ),
        (
            TraceEntry {
                at: Tick(9),
                event: TraceEvent::Dropped {
                    from: NodeId(0),
                    to: NodeId(7),
                },
            },
            "t9 n0 -> n7 DROPPED",
            r#"{"at":9,"kind":"dropped","from":0,"to":7}"#,
        ),
        (
            TraceEntry {
                at: Tick(12),
                event: TraceEvent::Unroutable {
                    from: NodeId(9),
                    to: NodeId(1),
                },
            },
            "t12 n9 -> n1 UNROUTABLE",
            r#"{"at":12,"kind":"unroutable","from":9,"to":1}"#,
        ),
        (
            TraceEntry {
                at: Tick(50),
                event: TraceEvent::Power {
                    node: NodeId(3),
                    powered: false,
                },
            },
            "t50 n3 power=off",
            r#"{"at":50,"kind":"power","node":3,"powered":false}"#,
        ),
        (
            TraceEntry {
                at: Tick(51),
                event: TraceEvent::Power {
                    node: NodeId(3),
                    powered: true,
                },
            },
            "t51 n3 power=on",
            r#"{"at":51,"kind":"power","node":3,"powered":true}"#,
        ),
        (
            TraceEntry {
                at: Tick(60),
                event: TraceEvent::Note {
                    node: NodeId(2),
                    text: "button pressed".to_string(),
                },
            },
            "t60 n2 note: button pressed",
            r#"{"at":60,"kind":"note","node":2,"text":"button pressed"}"#,
        ),
        (
            TraceEntry {
                at: Tick(75),
                event: TraceEvent::Fault {
                    text: "wan-partition n4 on".to_string(),
                },
            },
            "t75 FAULT wan-partition n4 on",
            r#"{"at":75,"kind":"fault","text":"wan-partition n4 on"}"#,
        ),
    ]
}

#[test]
fn display_goldens_cover_every_variant() {
    for (entry, display, _) in exemplars() {
        assert_eq!(entry.to_string(), display);
    }
}

#[test]
fn json_encodings_are_pinned() {
    for (entry, _, json) in exemplars() {
        assert_eq!(entry.to_json(), json);
    }
}

#[test]
fn json_round_trips_every_variant() {
    for (entry, _, _) in exemplars() {
        let decoded = TraceEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(decoded, entry);
    }
}

#[test]
fn json_round_trips_hostile_text() {
    // Note/Fault payloads are free-form: quotes, backslashes, newlines,
    // control bytes, and non-ASCII must all survive the codec.
    for text in ["say \"hi\"", "a\\b", "line1\nline2\ttab", "π → ∞", "\u{1}"] {
        let entry = TraceEntry {
            at: Tick(1),
            event: TraceEvent::Fault {
                text: text.to_string(),
            },
        };
        assert_eq!(TraceEntry::from_json(&entry.to_json()).unwrap(), entry);
        let entry = TraceEntry {
            at: Tick(2),
            event: TraceEvent::Note {
                node: NodeId(5),
                text: text.to_string(),
            },
        };
        assert_eq!(TraceEntry::from_json(&entry.to_json()).unwrap(), entry);
    }
}

#[test]
fn parser_accepts_reordered_fields_and_whitespace() {
    let entry = TraceEntry::from_json(
        " { \"kind\" : \"sent\" , \"to\" : 2 , \"from\" : 1 , \"bytes\" : 7 , \"at\" : 3 } ",
    )
    .unwrap();
    assert_eq!(
        entry,
        TraceEntry {
            at: Tick(3),
            event: TraceEvent::Sent {
                from: NodeId(1),
                to: NodeId(2),
                bytes: 7,
            },
        }
    );
}

#[test]
fn parser_rejects_malformed_input() {
    for bad in [
        "",
        "{}",
        r#"{"at":1}"#,
        r#"{"at":1,"kind":"sent","from":1,"to":2}"#,
        r#"{"at":1,"kind":"warp","from":1,"to":2}"#,
        r#"{"at":1,"kind":"fault","text":"x"} trailing"#,
        r#"{"at":1,"kind":"fault","text":"x","mystery":2}"#,
        r#"{"at":9999999999999,"kind":"power","node":4294967296,"powered":true}"#,
        r#"{"at":1,"kind":"note","node":1,"text":"bad \q escape"}"#,
    ] {
        assert!(
            TraceEntry::from_json(bad).is_err(),
            "accepted malformed input: {bad}"
        );
    }
}

#[test]
fn live_sim_trace_round_trips_through_json() {
    // An end-to-end check over a real traced run: every entry the engine
    // emits survives encode/decode unchanged.
    use rb_netsim::{Actor, Ctx, Dest, NodeConfig, Simulation};

    struct Chatter {
        peer: Option<NodeId>,
    }
    impl Actor for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(peer) = self.peer {
                ctx.send(Dest::Unicast(peer), vec![0xAB; 16]);
            }
        }
    }

    let mut sim = Simulation::new(11);
    sim.enable_trace();
    let a = sim.add_node(NodeConfig::wan_only("a"), Box::new(Chatter { peer: None }));
    let _b = sim.add_node(
        NodeConfig::wan_only("b"),
        Box::new(Chatter { peer: Some(a) }),
    );
    sim.note(a, "hello \"world\"");
    sim.run_for(1_000);
    sim.set_power(a, false);
    sim.run_for(10);
    assert!(!sim.trace().is_empty());
    for entry in sim.trace() {
        let decoded = TraceEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(&decoded, entry);
    }
}
