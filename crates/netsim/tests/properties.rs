//! Property tests for the network simulator: determinism, isolation, and
//! conservation.

// Test code: panicking on unexpected state is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rb_netsim::{
    Actor, Ctx, Dest, LanId, LinkQuality, NodeConfig, NodeId, Retry, RetryPolicy, SimRng,
    Simulation, Tick,
};

/// Sends `count` packets to `dest` at start; counts everything received.
struct Chatter {
    dest: Option<NodeId>,
    count: u32,
    received: u32,
}

impl Actor for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(dest) = self.dest {
            for i in 0..self.count {
                ctx.send(Dest::Unicast(dest), vec![i as u8]);
            }
        }
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _payload: &[u8]) {
        self.received += 1;
    }
}

fn star_world(
    seed: u64,
    senders: u32,
    per_sender: u32,
    quality: LinkQuality,
) -> (Simulation, NodeId) {
    let mut sim = Simulation::with_quality(seed, LinkQuality::perfect(), quality);
    let hub = sim.add_node(
        NodeConfig::wan_only("hub"),
        Box::new(Chatter {
            dest: None,
            count: 0,
            received: 0,
        }),
    );
    for i in 0..senders {
        sim.add_node(
            NodeConfig::wan_only(format!("s{i}")),
            Box::new(Chatter {
                dest: Some(hub),
                count: per_sender,
                received: 0,
            }),
        );
    }
    (sim, hub)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same construction ⇒ identical delivery counts at every
    /// horizon (the determinism the whole evaluation rests on).
    #[test]
    fn identical_seeds_are_bit_identical(
        seed in any::<u64>(),
        senders in 1u32..8,
        per_sender in 1u32..16,
        horizon in 1u64..5_000,
    ) {
        let quality = LinkQuality { latency_min: 1, latency_max: 50, drop_per_mille: 100 };
        let (mut a, hub_a) = star_world(seed, senders, per_sender, quality);
        let (mut b, hub_b) = star_world(seed, senders, per_sender, quality);
        a.run_until(Tick(horizon));
        b.run_until(Tick(horizon));
        let ra = a.actor::<Chatter>(hub_a).unwrap().received;
        let rb = b.actor::<Chatter>(hub_b).unwrap().received;
        prop_assert_eq!(ra, rb);
    }

    /// On lossless links every packet is delivered exactly once
    /// (conservation), regardless of seed and load.
    #[test]
    fn lossless_links_conserve_packets(
        seed in any::<u64>(),
        senders in 1u32..10,
        per_sender in 1u32..20,
    ) {
        let (mut sim, hub) = star_world(seed, senders, per_sender, LinkQuality::perfect());
        sim.run_until(Tick(100_000));
        prop_assert_eq!(
            sim.actor::<Chatter>(hub).unwrap().received,
            senders * per_sender
        );
    }

    /// A WAN-only node never receives LAN broadcasts, whatever the traffic
    /// pattern — the paper's adversary boundary as a property.
    #[test]
    fn lan_broadcasts_never_reach_the_wan(
        seed in any::<u64>(),
        bursts in 1u32..20,
    ) {
        struct Beacon { lan: LanId, bursts: u32 }
        impl Actor for Beacon {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..self.bursts {
                    ctx.send(Dest::Broadcast(self.lan), vec![0xAB; 8]);
                }
            }
        }
        let mut sim = Simulation::with_quality(seed, LinkQuality::lan(), LinkQuality::wan());
        let lan = LanId(0);
        let outsider = sim.add_node(
            NodeConfig::wan_only("attacker"),
            Box::new(Chatter { dest: None, count: 0, received: 0 }),
        );
        let insider = sim.add_node(
            NodeConfig::lan_only("resident", lan),
            Box::new(Chatter { dest: None, count: 0, received: 0 }),
        );
        sim.add_node(NodeConfig::dual("beacon", lan), Box::new(Beacon { lan, bursts }));
        sim.run_until(Tick(50_000));
        prop_assert_eq!(sim.actor::<Chatter>(outsider).unwrap().received, 0);
        prop_assert!(sim.actor::<Chatter>(insider).unwrap().received > 0);
    }

    /// The *base* (pre-jitter) backoff schedule is monotone non-decreasing:
    /// with jitter disabled, each retry waits at least as long as the last.
    #[test]
    fn backoff_base_schedule_is_monotone(
        base in 1u64..1_000,
        cap_mult in 1u64..64,
        budget in 1u32..32,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::new(base, base * cap_mult)
            .budget(budget)
            .jitter(0);
        let mut rng = SimRng::new(seed);
        let mut retry = Retry::new(policy);
        let mut prev = 0u64;
        while let Some(delay) = retry.next(&mut rng) {
            prop_assert!(delay >= prev, "delay {delay} < previous {prev}");
            prev = delay;
        }
        prop_assert_eq!(retry.attempts(), budget);
    }

    /// Every delay — jitter included — is bounded by the policy cap and
    /// is never zero, for any jitter amplitude (even out-of-range ones).
    #[test]
    fn backoff_delays_are_bounded_by_the_cap(
        base in 1u64..1_000,
        cap_mult in 1u64..64,
        jitter in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let cap = base * cap_mult;
        let policy = RetryPolicy::new(base, cap).budget(24).jitter(jitter);
        let mut rng = SimRng::new(seed);
        let mut retry = Retry::new(policy);
        while let Some(delay) = retry.next(&mut rng) {
            prop_assert!(delay >= 1);
            prop_assert!(delay <= policy.cap, "delay {delay} > cap {}", policy.cap);
        }
    }

    /// The jittered schedule is a pure function of (policy, seed): two
    /// `Retry` instances driven by equal-seeded RNGs agree exactly.
    #[test]
    fn backoff_schedule_is_seed_deterministic(
        base in 1u64..500,
        jitter in 0u16..1_000,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::new(base, base * 16).budget(16).jitter(jitter);
        let (mut ra, mut rb) = (SimRng::new(seed), SimRng::new(seed));
        let (mut a, mut b) = (Retry::new(policy), Retry::new(policy));
        loop {
            let (da, db) = (a.next(&mut ra), b.next(&mut rb));
            prop_assert_eq!(da, db);
            if da.is_none() { break; }
        }
    }

    /// Loss rates are honored within statistical tolerance across seeds.
    #[test]
    fn loss_rate_is_statistically_sound(seed in any::<u64>()) {
        let quality = LinkQuality { latency_min: 1, latency_max: 1, drop_per_mille: 300 };
        let (mut sim, hub) = star_world(seed, 10, 100, quality);
        sim.run_until(Tick(100_000));
        let received = sim.actor::<Chatter>(hub).unwrap().received;
        // 1000 packets at 30% loss: expect ~700, allow ±10 percentage points.
        prop_assert!((600..=800).contains(&received), "received {received}");
    }
}
