//! Golden hex fixtures pinning the byte output of every codec.
//!
//! The classic fixtures freeze the pre-trait wire format: if any of them
//! change, old captures and forged-packet experiments silently break, so a
//! failure here is a wire-compatibility break, not a test to "update".
//! The compact fixtures pin the varint/TLV layout documented in
//! `WIRE-FORMAT.md` §3. Each fixture must decode back to the source value
//! under its own codec and must be *rejected* by the other codec's
//! envelope decoder (the direction bytes are disjoint by design).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::Bytes;
use rb_wire::codec::CodecKind;
use rb_wire::envelope::{CorrId, Envelope};
use rb_wire::ids::{DevId, MacAddr};
use rb_wire::messages::{BindPayload, ControlAction, DenyReason, Message, Response};
use rb_wire::tokens::{BindToken, SessionToken, UserId, UserPw, UserToken};

fn fixtures() -> Vec<(&'static str, Envelope)> {
    let dev_id = DevId::Mac(MacAddr::new([0x94, 0x10, 0x3e, 0x01, 0x02, 0x03]));
    vec![
        (
            "login",
            Envelope::Request {
                corr: CorrId(1),
                msg: Message::Login {
                    user_id: UserId::new("alice@example.com"),
                    user_pw: UserPw::new("hunter2"),
                },
            },
        ),
        (
            "bind_acl_app",
            Envelope::Request {
                corr: CorrId(2),
                msg: Message::Bind(BindPayload::AclApp {
                    dev_id: dev_id.clone(),
                    user_token: UserToken::from_bytes([7u8; 16]),
                }),
            },
        ),
        (
            "bind_capability",
            Envelope::Request {
                corr: CorrId(3),
                msg: Message::Bind(BindPayload::Capability {
                    bind_token: BindToken::from_bytes([9u8; 16]),
                }),
            },
        ),
        (
            "control",
            Envelope::Request {
                corr: CorrId(4),
                msg: Message::Control {
                    dev_id,
                    user_token: UserToken::from_bytes([7u8; 16]),
                    session: None,
                    action: ControlAction::TurnOn,
                },
            },
        ),
        (
            "login_ok",
            Envelope::Response {
                corr: CorrId(1),
                rsp: Response::LoginOk {
                    user_token: UserToken::from_bytes([7u8; 16]),
                },
            },
        ),
        (
            "bound_push",
            Envelope::push(Response::Bound {
                session: Some(SessionToken::from_bytes([3u8; 16])),
            }),
        ),
        (
            "denied",
            Envelope::Response {
                corr: CorrId(5),
                rsp: Response::Denied {
                    reason: DenyReason::NotBound,
                },
            },
        ),
    ]
}

/// `(fixture name, codec, expected hex)` — regenerate ONLY for the compact
/// codec, and only with a spec change to `WIRE-FORMAT.md`; classic entries
/// are frozen forever.
const GOLDEN: &[(&str, CodecKind, &str)] = &[
    (
        "login",
        CodecKind::Classic,
        "010000000000000001100011616c696365406578616d706c652e636f6d000768756e74657232",
    ),
    (
        "login",
        CodecKind::Compact,
        "c1011011616c696365406578616d706c652e636f6d0768756e74657232",
    ),
    (
        "bind_acl_app",
        CodecKind::Classic,
        "01000000000000000214010194103e01020307070707070707070707070707070707",
    ),
    (
        "bind_acl_app",
        CodecKind::Compact,
        "c10214010194103e01020307070707070707070707070707070707",
    ),
    (
        "bind_capability",
        CodecKind::Classic,
        "010000000000000003140309090909090909090909090909090909",
    ),
    (
        "bind_capability",
        CodecKind::Compact,
        "c103140309090909090909090909090909090909",
    ),
    (
        "control",
        CodecKind::Classic,
        "010000000000000004160194103e010203070707070707070707070707070707070001",
    ),
    (
        "control",
        CodecKind::Compact,
        "c104160194103e0102030707070707070707070707070707070701",
    ),
    (
        "login_ok",
        CodecKind::Classic,
        "0200000000000000012007070707070707070707070707070707",
    ),
    (
        "login_ok",
        CodecKind::Compact,
        "c2012007070707070707070707070707070707",
    ),
    (
        "bound_push",
        CodecKind::Classic,
        "020000000000000000240103030303030303030303030303030303",
    ),
    (
        "bound_push",
        CodecKind::Compact,
        "c20024011003030303030303030303030303030303",
    ),
    ("denied", CodecKind::Classic, "0200000000000000052b05"),
    ("denied", CodecKind::Compact, "c2052b05"),
];

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(hex: &str) -> Bytes {
    let raw: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("fixture hex"))
        .collect();
    Bytes::from(raw)
}

fn fixture(name: &str) -> Envelope {
    fixtures()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, env)| env)
        .expect("fixture name")
}

#[test]
fn every_fixture_has_goldens_for_every_codec() {
    for (name, _) in fixtures() {
        for kind in CodecKind::ALL {
            assert!(
                GOLDEN.iter().any(|(n, k, _)| *n == name && *k == kind),
                "missing golden for {name}/{kind}"
            );
        }
    }
}

#[test]
fn encoding_matches_golden_bytes() {
    for (name, kind, hex) in GOLDEN {
        let env = fixture(name);
        assert_eq!(
            to_hex(&env.encode_with(*kind)),
            *hex,
            "{name}/{kind}: wire format drifted"
        );
    }
}

#[test]
fn golden_bytes_decode_to_fixture() {
    for (name, kind, hex) in GOLDEN {
        let env = fixture(name);
        let bytes = from_hex(hex);
        assert_eq!(
            Envelope::decode_with(*kind, &bytes).expect("golden must decode"),
            env,
            "{name}/{kind}"
        );
    }
}

#[test]
fn goldens_are_rejected_by_the_other_codec() {
    for (name, kind, hex) in GOLDEN {
        let other = match kind {
            CodecKind::Classic => CodecKind::Compact,
            CodecKind::Compact => CodecKind::Classic,
        };
        let bytes = from_hex(hex);
        assert!(
            Envelope::decode_with(other, &bytes).is_err(),
            "{name}: {other} accepted a {kind} frame"
        );
    }
}

#[test]
fn compact_goldens_are_never_larger_than_classic() {
    for (name, _) in fixtures() {
        let classic = GOLDEN
            .iter()
            .find(|(n, k, _)| *n == name && *k == CodecKind::Classic)
            .expect("classic golden");
        let compact = GOLDEN
            .iter()
            .find(|(n, k, _)| *n == name && *k == CodecKind::Compact)
            .expect("compact golden");
        assert!(
            compact.2.len() <= classic.2.len(),
            "{name}: compact frame larger than classic"
        );
    }
}
