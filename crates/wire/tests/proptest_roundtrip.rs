//! Property-based roundtrip and robustness tests for the wire codec.

// Test code: panicking on unexpected state is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use rb_wire::codec::{decode_message, decode_response, encode_message, encode_response};
use rb_wire::envelope::{CorrId, Envelope};
use rb_wire::ids::{DevId, MacAddr};
use rb_wire::messages::{
    BindPayload, ControlAction, DenyReason, DeviceAttributes, Message, Response, StatusAuth,
    StatusKind, StatusPayload, UnbindPayload,
};
use rb_wire::telemetry::{ScheduleEntry, TelemetryFrame};
use rb_wire::tokens::{BindToken, DevToken, SessionToken, UserId, UserPw, UserToken};

fn arb_dev_id() -> impl Strategy<Value = DevId> {
    prop_oneof![
        any::<[u8; 6]>().prop_map(|b| DevId::Mac(MacAddr::new(b))),
        (any::<u16>(), any::<u64>()).prop_map(|(vendor, seq)| DevId::Serial { vendor, seq }),
        (1u8..=9).prop_flat_map(|width| {
            let max = 10u64.pow(u32::from(width)) - 1;
            (0..=max).prop_map(move |v| DevId::Digits {
                value: v as u32,
                width,
            })
        }),
        any::<u128>().prop_map(DevId::Uuid),
    ]
}

fn arb_telemetry() -> impl Strategy<Value = TelemetryFrame> {
    prop_oneof![
        any::<u64>().prop_map(TelemetryFrame::PowerMilliwatts),
        any::<i32>().prop_map(TelemetryFrame::TemperatureMilliC),
        any::<bool>().prop_map(|on| TelemetryFrame::SwitchState { on }),
        any::<u8>().prop_map(TelemetryFrame::Brightness),
        (any::<bool>(), any::<u64>())
            .prop_map(|(locked, at_tick)| TelemetryFrame::LockEvent { locked, at_tick }),
        any::<u8>().prop_map(|confidence| TelemetryFrame::Motion { confidence }),
        any::<bool>().prop_map(|triggered| TelemetryFrame::Alarm { triggered }),
    ]
}

fn arb_status_auth() -> impl Strategy<Value = StatusAuth> {
    prop_oneof![
        any::<u128>().prop_map(|e| StatusAuth::DevToken(DevToken::from_entropy(e))),
        arb_dev_id().prop_map(StatusAuth::DevId),
        (any::<u64>(), any::<u128>())
            .prop_map(|(key_id, signature)| StatusAuth::PublicKey { key_id, signature }),
    ]
}

fn arb_action() -> impl Strategy<Value = ControlAction> {
    prop_oneof![
        Just(ControlAction::TurnOn),
        Just(ControlAction::TurnOff),
        any::<u8>().prop_map(ControlAction::SetBrightness),
        (any::<u64>(), any::<bool>()).prop_map(|(at_tick, turn_on)| {
            ControlAction::SetSchedule(ScheduleEntry { at_tick, turn_on })
        }),
        Just(ControlAction::QuerySchedule),
        Just(ControlAction::QueryTelemetry),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    let status = (
        arb_status_auth(),
        arb_dev_id(),
        any::<bool>(),
        "[a-zA-Z0-9 _.-]{0,40}",
        "[a-zA-Z0-9._-]{0,20}",
        proptest::option::of(any::<u128>()),
        proptest::collection::vec(arb_telemetry(), 0..8),
        any::<bool>(),
    )
        .prop_map(
            |(auth, dev_id, hb, model, firmware, session, telemetry, button_pressed)| {
                Message::Status(StatusPayload {
                    auth,
                    dev_id,
                    kind: if hb {
                        StatusKind::Heartbeat
                    } else {
                        StatusKind::Register
                    },
                    attributes: DeviceAttributes::new(model, firmware),
                    session: session.map(SessionToken::from_entropy),
                    telemetry,
                    button_pressed,
                })
            },
        );
    let bind = prop_oneof![
        (arb_dev_id(), any::<u128>()).prop_map(|(dev_id, t)| Message::Bind(BindPayload::AclApp {
            dev_id,
            user_token: UserToken::from_entropy(t),
        })),
        (arb_dev_id(), "[a-z0-9@.]{1,30}", "[!-~]{0,30}").prop_map(|(dev_id, uid, pw)| {
            Message::Bind(BindPayload::AclDevice {
                dev_id,
                user_id: UserId::new(uid),
                user_pw: UserPw::new(pw),
            })
        }),
        any::<u128>().prop_map(|t| Message::Bind(BindPayload::Capability {
            bind_token: BindToken::from_entropy(t),
        })),
    ];
    let unbind = prop_oneof![
        (arb_dev_id(), any::<u128>()).prop_map(|(dev_id, t)| {
            Message::Unbind(UnbindPayload::DevIdUserToken {
                dev_id,
                user_token: UserToken::from_entropy(t),
            })
        }),
        arb_dev_id().prop_map(|dev_id| Message::Unbind(UnbindPayload::DevIdOnly { dev_id })),
    ];
    prop_oneof![
        ("[a-z0-9@.]{1,30}", "[!-~]{0,30}").prop_map(|(u, p)| Message::Login {
            user_id: UserId::new(u),
            user_pw: UserPw::new(p),
        }),
        any::<u128>().prop_map(|t| Message::RequestDevToken {
            user_token: UserToken::from_entropy(t)
        }),
        any::<u128>().prop_map(|t| Message::RequestBindToken {
            user_token: UserToken::from_entropy(t)
        }),
        status,
        bind,
        unbind,
        (
            arb_dev_id(),
            any::<u128>(),
            proptest::option::of(any::<u128>()),
            arb_action()
        )
            .prop_map(|(dev_id, t, session, action)| Message::Control {
                dev_id,
                user_token: UserToken::from_entropy(t),
                session: session.map(SessionToken::from_entropy),
                action,
            }),
        arb_dev_id().prop_map(|dev_id| Message::QueryShadow { dev_id }),
    ]
}

fn arb_deny() -> impl Strategy<Value = DenyReason> {
    prop_oneof![
        Just(DenyReason::BadCredentials),
        Just(DenyReason::InvalidUserToken),
        Just(DenyReason::DeviceAuthFailed),
        Just(DenyReason::AlreadyBound),
        Just(DenyReason::NotBoundUser),
        Just(DenyReason::NotBound),
        Just(DenyReason::InvalidBindToken),
        Just(DenyReason::BadSession),
        Just(DenyReason::OwnershipProofFailed),
        Just(DenyReason::DeviceOffline),
        Just(DenyReason::UnknownDevice),
        Just(DenyReason::UnsupportedOperation),
        Just(DenyReason::RateLimited),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u128>().prop_map(|t| Response::LoginOk {
            user_token: UserToken::from_entropy(t)
        }),
        any::<u128>().prop_map(|t| Response::DevTokenIssued {
            dev_token: DevToken::from_entropy(t)
        }),
        any::<u128>().prop_map(|t| Response::BindTokenIssued {
            bind_token: BindToken::from_entropy(t)
        }),
        proptest::option::of(any::<u128>()).prop_map(|s| Response::StatusAccepted {
            session: s.map(SessionToken::from_entropy),
        }),
        proptest::option::of(any::<u128>()).prop_map(|s| Response::Bound {
            session: s.map(SessionToken::from_entropy)
        }),
        Just(Response::Unbound),
        (
            proptest::collection::vec(
                (any::<u64>(), any::<bool>())
                    .prop_map(|(at_tick, turn_on)| ScheduleEntry { at_tick, turn_on }),
                0..5
            ),
            proptest::collection::vec(arb_telemetry(), 0..5)
        )
            .prop_map(|(schedule, telemetry)| Response::ControlOk {
                schedule,
                telemetry
            }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(online, bound)| Response::ShadowState { online, bound }),
        (
            arb_dev_id(),
            proptest::collection::vec(arb_telemetry(), 0..5)
        )
            .prop_map(|(dev_id, telemetry)| Response::TelemetryPush { dev_id, telemetry }),
        (arb_action(), proptest::option::of(any::<u128>())).prop_map(|(action, s)| {
            Response::ControlPush {
                action,
                session: s.map(SessionToken::from_entropy),
            }
        }),
        Just(Response::BindingRevoked),
        arb_deny().prop_map(|reason| Response::Denied { reason }),
    ]
}

proptest! {
    #[test]
    fn message_encode_decode_roundtrip(msg in arb_message()) {
        let bytes = encode_message(&msg);
        let back = decode_message(&bytes).expect("well-formed message must decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn response_encode_decode_roundtrip(rsp in arb_response()) {
        let bytes = encode_response(&rsp);
        let back = decode_response(&bytes).expect("well-formed response must decode");
        prop_assert_eq!(back, rsp);
    }

    #[test]
    fn envelope_roundtrip(corr in any::<u64>(), msg in arb_message()) {
        let env = Envelope::Request { corr: CorrId(corr), msg };
        prop_assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz-style robustness: arbitrary bytes must produce Ok or Err,
        // never a panic.
        let _ = decode_message(&bytes);
        let _ = decode_response(&bytes);
        let _ = Envelope::decode(&bytes);
    }

    #[test]
    fn truncation_never_panics(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_message(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = decode_message(&bytes[..cut]);
    }

    #[test]
    fn encoding_is_deterministic(msg in arb_message()) {
        prop_assert_eq!(encode_message(&msg), encode_message(&msg));
    }
}

proptest! {
    /// `DevId::short` is injective: distinct identifiers never collide in
    /// their printed form (labels, logs, and the provisioning parser all
    /// rely on it).
    #[test]
    fn dev_id_short_is_injective(a in arb_dev_id(), b in arb_dev_id()) {
        if a != b {
            prop_assert_ne!(a.short(), b.short(), "{:?} vs {:?}", a, b);
        } else {
            prop_assert_eq!(a.short(), b.short());
        }
    }
}
