//! Property-based roundtrip and robustness tests for the wire codecs.
//!
//! Every generated message/response/envelope must round-trip through BOTH
//! codecs behind the [`Codec`] trait, the classic trait impl must agree
//! byte-for-byte with the free functions, and the compact decoder must
//! survive garbage, truncation, and mutation without panicking.

// Test code: panicking on unexpected state is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::Bytes;
use proptest::prelude::*;

use rb_wire::codec::{
    decode_message, decode_response, encode_message, encode_response, Codec, CodecKind,
};
use rb_wire::compact::CompactCodec;
use rb_wire::envelope::{CorrId, Envelope};
use rb_wire::ids::{DevId, MacAddr};
use rb_wire::messages::{
    AutomationRule, BindPayload, ControlAction, DenyReason, DeviceAttributes, Message, Response,
    StatusAuth, StatusKind, StatusPayload, UnbindPayload,
};
use rb_wire::telemetry::{RuleTrigger, ScheduleEntry, TelemetryFrame};
use rb_wire::tokens::{BindToken, DevToken, SessionToken, UserId, UserPw, UserToken};

fn arb_dev_id() -> impl Strategy<Value = DevId> {
    prop_oneof![
        any::<[u8; 6]>().prop_map(|b| DevId::Mac(MacAddr::new(b))),
        (any::<u16>(), any::<u64>()).prop_map(|(vendor, seq)| DevId::Serial { vendor, seq }),
        (1u8..=9).prop_flat_map(|width| {
            let max = 10u64.pow(u32::from(width)) - 1;
            (0..=max).prop_map(move |v| DevId::Digits {
                value: v as u32,
                width,
            })
        }),
        any::<u128>().prop_map(DevId::Uuid),
    ]
}

fn arb_telemetry() -> impl Strategy<Value = TelemetryFrame> {
    prop_oneof![
        any::<u64>().prop_map(TelemetryFrame::PowerMilliwatts),
        any::<i32>().prop_map(TelemetryFrame::TemperatureMilliC),
        any::<bool>().prop_map(|on| TelemetryFrame::SwitchState { on }),
        any::<u8>().prop_map(TelemetryFrame::Brightness),
        (any::<bool>(), any::<u64>())
            .prop_map(|(locked, at_tick)| TelemetryFrame::LockEvent { locked, at_tick }),
        any::<u8>().prop_map(|confidence| TelemetryFrame::Motion { confidence }),
        any::<bool>().prop_map(|triggered| TelemetryFrame::Alarm { triggered }),
    ]
}

fn arb_status_auth() -> impl Strategy<Value = StatusAuth> {
    prop_oneof![
        any::<u128>().prop_map(|e| StatusAuth::DevToken(DevToken::from_entropy(e))),
        arb_dev_id().prop_map(StatusAuth::DevId),
        (any::<u64>(), any::<u128>())
            .prop_map(|(key_id, signature)| StatusAuth::PublicKey { key_id, signature }),
    ]
}

fn arb_action() -> impl Strategy<Value = ControlAction> {
    prop_oneof![
        Just(ControlAction::TurnOn),
        Just(ControlAction::TurnOff),
        any::<u8>().prop_map(ControlAction::SetBrightness),
        (any::<u64>(), any::<bool>()).prop_map(|(at_tick, turn_on)| {
            ControlAction::SetSchedule(ScheduleEntry { at_tick, turn_on })
        }),
        Just(ControlAction::QuerySchedule),
        Just(ControlAction::QueryTelemetry),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    let status = (
        arb_status_auth(),
        arb_dev_id(),
        any::<bool>(),
        "[a-zA-Z0-9 _.-]{0,40}",
        "[a-zA-Z0-9._-]{0,20}",
        proptest::option::of(any::<u128>()),
        proptest::collection::vec(arb_telemetry(), 0..8),
        any::<bool>(),
    )
        .prop_map(
            |(auth, dev_id, hb, model, firmware, session, telemetry, button_pressed)| {
                Message::Status(StatusPayload {
                    auth,
                    dev_id,
                    kind: if hb {
                        StatusKind::Heartbeat
                    } else {
                        StatusKind::Register
                    },
                    attributes: DeviceAttributes::new(model, firmware),
                    session: session.map(SessionToken::from_entropy),
                    telemetry,
                    button_pressed,
                })
            },
        );
    let bind = prop_oneof![
        (arb_dev_id(), any::<u128>()).prop_map(|(dev_id, t)| Message::Bind(BindPayload::AclApp {
            dev_id,
            user_token: UserToken::from_entropy(t),
        })),
        (arb_dev_id(), "[a-z0-9@.]{1,30}", "[!-~]{0,30}").prop_map(|(dev_id, uid, pw)| {
            Message::Bind(BindPayload::AclDevice {
                dev_id,
                user_id: UserId::new(uid),
                user_pw: UserPw::new(pw),
            })
        }),
        any::<u128>().prop_map(|t| Message::Bind(BindPayload::Capability {
            bind_token: BindToken::from_entropy(t),
        })),
    ];
    let unbind = prop_oneof![
        (arb_dev_id(), any::<u128>()).prop_map(|(dev_id, t)| {
            Message::Unbind(UnbindPayload::DevIdUserToken {
                dev_id,
                user_token: UserToken::from_entropy(t),
            })
        }),
        arb_dev_id().prop_map(|dev_id| Message::Unbind(UnbindPayload::DevIdOnly { dev_id })),
    ];
    prop_oneof![
        ("[a-z0-9@.]{1,30}", "[!-~]{0,30}").prop_map(|(u, p)| Message::Login {
            user_id: UserId::new(u),
            user_pw: UserPw::new(p),
        }),
        any::<u128>().prop_map(|t| Message::RequestDevToken {
            user_token: UserToken::from_entropy(t)
        }),
        any::<u128>().prop_map(|t| Message::RequestBindToken {
            user_token: UserToken::from_entropy(t)
        }),
        status,
        bind,
        unbind,
        (
            arb_dev_id(),
            any::<u128>(),
            proptest::option::of(any::<u128>()),
            arb_action()
        )
            .prop_map(|(dev_id, t, session, action)| Message::Control {
                dev_id,
                user_token: UserToken::from_entropy(t),
                session: session.map(SessionToken::from_entropy),
                action,
            }),
        arb_dev_id().prop_map(|dev_id| Message::QueryShadow { dev_id }),
        (arb_dev_id(), any::<u128>(), "[a-z0-9@.]{1,30}").prop_map(|(dev_id, t, g)| {
            Message::Share {
                dev_id,
                user_token: UserToken::from_entropy(t),
                grantee: UserId::new(g),
            }
        }),
        (arb_dev_id(), any::<u128>(), "[a-z0-9@.]{1,30}").prop_map(|(dev_id, t, g)| {
            Message::Unshare {
                dev_id,
                user_token: UserToken::from_entropy(t),
                grantee: UserId::new(g),
            }
        }),
        (
            any::<u128>(),
            arb_dev_id(),
            arb_trigger(),
            arb_dev_id(),
            arb_action()
        )
            .prop_map(
                |(t, trigger_dev, trigger, action_dev, action)| Message::SetRule {
                    user_token: UserToken::from_entropy(t),
                    rule: AutomationRule {
                        trigger_dev,
                        trigger,
                        action_dev,
                        action,
                    },
                }
            ),
    ]
}

fn arb_trigger() -> impl Strategy<Value = RuleTrigger> {
    prop_oneof![
        any::<i32>().prop_map(RuleTrigger::TemperatureAbove),
        any::<i32>().prop_map(RuleTrigger::TemperatureBelow),
        Just(RuleTrigger::AlarmTriggered),
        any::<u8>().prop_map(RuleTrigger::MotionAtLeast),
        any::<u64>().prop_map(RuleTrigger::PowerAbove),
    ]
}

fn arb_deny() -> impl Strategy<Value = DenyReason> {
    prop_oneof![
        Just(DenyReason::BadCredentials),
        Just(DenyReason::InvalidUserToken),
        Just(DenyReason::DeviceAuthFailed),
        Just(DenyReason::AlreadyBound),
        Just(DenyReason::NotBoundUser),
        Just(DenyReason::NotBound),
        Just(DenyReason::InvalidBindToken),
        Just(DenyReason::BadSession),
        Just(DenyReason::OwnershipProofFailed),
        Just(DenyReason::DeviceOffline),
        Just(DenyReason::UnknownDevice),
        Just(DenyReason::UnsupportedOperation),
        Just(DenyReason::RateLimited),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u128>().prop_map(|t| Response::LoginOk {
            user_token: UserToken::from_entropy(t)
        }),
        any::<u128>().prop_map(|t| Response::DevTokenIssued {
            dev_token: DevToken::from_entropy(t)
        }),
        any::<u128>().prop_map(|t| Response::BindTokenIssued {
            bind_token: BindToken::from_entropy(t)
        }),
        proptest::option::of(any::<u128>()).prop_map(|s| Response::StatusAccepted {
            session: s.map(SessionToken::from_entropy),
        }),
        proptest::option::of(any::<u128>()).prop_map(|s| Response::Bound {
            session: s.map(SessionToken::from_entropy)
        }),
        Just(Response::Unbound),
        (
            proptest::collection::vec(
                (any::<u64>(), any::<bool>())
                    .prop_map(|(at_tick, turn_on)| ScheduleEntry { at_tick, turn_on }),
                0..5
            ),
            proptest::collection::vec(arb_telemetry(), 0..5)
        )
            .prop_map(|(schedule, telemetry)| Response::ControlOk {
                schedule,
                telemetry
            }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(online, bound)| Response::ShadowState { online, bound }),
        (
            arb_dev_id(),
            proptest::collection::vec(arb_telemetry(), 0..5)
        )
            .prop_map(|(dev_id, telemetry)| Response::TelemetryPush { dev_id, telemetry }),
        (arb_action(), proptest::option::of(any::<u128>())).prop_map(|(action, s)| {
            Response::ControlPush {
                action,
                session: s.map(SessionToken::from_entropy),
            }
        }),
        Just(Response::BindingRevoked),
        any::<u16>().prop_map(|count| Response::RuleSet { count }),
        (proptest::option::of(any::<u128>()), any::<u16>()).prop_map(|(s, guests)| {
            Response::ShareOk {
                session: s.map(SessionToken::from_entropy),
                guests,
            }
        }),
        arb_deny().prop_map(|reason| Response::Denied { reason }),
    ]
}

proptest! {
    #[test]
    fn message_encode_decode_roundtrip(msg in arb_message()) {
        let bytes = encode_message(&msg);
        let back = decode_message(&bytes).expect("well-formed message must decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn response_encode_decode_roundtrip(rsp in arb_response()) {
        let bytes = encode_response(&rsp);
        let back = decode_response(&bytes).expect("well-formed response must decode");
        prop_assert_eq!(back, rsp);
    }

    #[test]
    fn envelope_roundtrip(corr in any::<u64>(), msg in arb_message()) {
        let env = Envelope::Request { corr: CorrId(corr), msg };
        prop_assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz-style robustness: arbitrary bytes must produce Ok or Err,
        // never a panic.
        let _ = decode_message(&bytes);
        let _ = decode_response(&bytes);
        let _ = Envelope::decode(&bytes);
    }

    #[test]
    fn truncation_never_panics(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_message(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = decode_message(&bytes[..cut]);
    }

    #[test]
    fn encoding_is_deterministic(msg in arb_message()) {
        prop_assert_eq!(encode_message(&msg), encode_message(&msg));
    }
}

proptest! {
    /// Every value round-trips through every codec behind the trait.
    #[test]
    fn all_codecs_roundtrip_messages(msg in arb_message()) {
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            let bytes = codec.encode_message(&msg);
            let back = codec.decode_message(&bytes).expect("well-formed message must decode");
            prop_assert_eq!(&back, &msg, "codec {}", kind);
        }
    }

    #[test]
    fn all_codecs_roundtrip_responses(rsp in arb_response()) {
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            let bytes = codec.encode_response(&rsp);
            let back = codec.decode_response(&bytes).expect("well-formed response must decode");
            prop_assert_eq!(&back, &rsp, "codec {}", kind);
        }
    }

    #[test]
    fn all_codecs_roundtrip_envelopes(corr in any::<u64>(), msg in arb_message()) {
        let env = Envelope::Request { corr: CorrId(corr), msg };
        for kind in CodecKind::ALL {
            let bytes = env.encode_with(kind);
            let back = Envelope::decode_with(kind, &bytes).expect("envelope must decode");
            prop_assert_eq!(&back, &env, "codec {}", kind);
        }
    }

    /// The classic trait impl IS the free-function format, byte for byte —
    /// the pin that keeps every pre-trait golden valid.
    #[test]
    fn classic_trait_matches_free_functions(msg in arb_message(), rsp in arb_response()) {
        let classic = CodecKind::Classic.codec();
        prop_assert_eq!(classic.encode_message(&msg).as_ref(), encode_message(&msg).as_ref());
        prop_assert_eq!(classic.encode_response(&rsp).as_ref(), encode_response(&rsp).as_ref());
    }

    /// Fuzz-style robustness for the compact decoder: arbitrary bytes must
    /// produce Ok or Err, never a panic.
    #[test]
    fn compact_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes = Bytes::from(bytes);
        let _ = CompactCodec.decode_message(&bytes);
        let _ = CompactCodec.decode_response(&bytes);
        let _ = CompactCodec.decode_envelope(&bytes);
    }

    /// Truncating a compact frame anywhere either fails cleanly or yields
    /// a canonical shorter message (omit-default tails make some prefixes
    /// legal) — it never panics and never decodes non-canonically.
    #[test]
    fn compact_truncation_never_panics(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = CompactCodec.encode_message(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let prefix = bytes.slice(..cut);
        if let Ok(decoded) = CompactCodec.decode_message(&prefix) {
            prop_assert_eq!(CompactCodec.encode_message(&decoded), prefix);
        }
    }

    /// Flipping any single byte of a compact frame must never panic, and
    /// if it still decodes, re-encoding must be canonical.
    #[test]
    fn compact_single_byte_mutation_never_panics(
        msg in arb_message(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let bytes = CompactCodec.encode_message(&msg);
        let mut mutated = bytes.to_vec();
        let pos = ((mutated.len() as f64) * pos_frac) as usize;
        let pos = pos.min(mutated.len().saturating_sub(1));
        if !mutated.is_empty() {
            mutated[pos] ^= flip;
        }
        let mutated = Bytes::from(mutated);
        let _ = CompactCodec.decode_message(&mutated);
    }

    #[test]
    fn compact_encoding_is_deterministic(msg in arb_message()) {
        prop_assert_eq!(
            CompactCodec.encode_message(&msg),
            CompactCodec.encode_message(&msg)
        );
    }
}

proptest! {
    /// `DevId::short` is injective: distinct identifiers never collide in
    /// their printed form (labels, logs, and the provisioning parser all
    /// rely on it).
    #[test]
    fn dev_id_short_is_injective(a in arb_dev_id(), b in arb_dev_id()) {
        if a != b {
            prop_assert_ne!(a.short(), b.short(), "{:?} vs {:?}", a, b);
        } else {
            prop_assert_eq!(a.short(), b.short());
        }
    }
}
