//! Telemetry payloads reported by devices and consumed by users.
//!
//! Attack A1 (data injection and stealing) forges `Status` messages carrying
//! telemetry: the paper's examples are fake power-consumption readings on a
//! smart plug, fake temperature readings cascading into IFTTT-style rules,
//! and exfiltrating the open/close schedule of a smart lock. The frame types
//! here give those attacks concrete payloads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One telemetry sample produced by (or forged on behalf of) a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryFrame {
    /// Instantaneous power draw of a plug/socket, in milliwatts.
    PowerMilliwatts(u64),
    /// Ambient temperature in milli-degrees Celsius (can be negative).
    TemperatureMilliC(i32),
    /// Relay/switch state of a plug or bulb.
    SwitchState {
        /// Whether the load is powered.
        on: bool,
    },
    /// Brightness of a bulb, 0–100.
    Brightness(u8),
    /// A lock event with its timestamp (simulation ticks).
    LockEvent {
        /// True if the lock engaged, false if it opened.
        locked: bool,
        /// Simulation time of the event.
        at_tick: u64,
    },
    /// Motion detected by a camera.
    Motion {
        /// Detection confidence, 0–100.
        confidence: u8,
    },
    /// Smoke/fire alarm state.
    Alarm {
        /// Whether the alarm is currently triggered.
        triggered: bool,
    },
}

impl TelemetryFrame {
    /// Whether a frame is *alarming* — the kind that triggers rules or user
    /// notifications, which is what makes injection attacks consequential.
    pub fn is_alarming(&self) -> bool {
        match self {
            TelemetryFrame::Alarm { triggered } => *triggered,
            TelemetryFrame::Motion { confidence } => *confidence >= 50,
            TelemetryFrame::TemperatureMilliC(t) => *t >= 60_000 || *t <= -20_000,
            _ => false,
        }
    }

    /// A one-line rendering for traces and tables.
    pub fn describe(&self) -> String {
        match self {
            TelemetryFrame::PowerMilliwatts(mw) => format!("power={}.{:03}W", mw / 1000, mw % 1000),
            TelemetryFrame::TemperatureMilliC(t) => {
                format!("temp={}.{:03}C", t / 1000, (t % 1000).abs())
            }
            TelemetryFrame::SwitchState { on } => {
                format!("switch={}", if *on { "on" } else { "off" })
            }
            TelemetryFrame::Brightness(b) => format!("brightness={b}%"),
            TelemetryFrame::LockEvent { locked, at_tick } => {
                format!(
                    "lock={} @t{at_tick}",
                    if *locked { "locked" } else { "open" }
                )
            }
            TelemetryFrame::Motion { confidence } => format!("motion={confidence}%"),
            TelemetryFrame::Alarm { triggered } => format!("alarm={triggered}"),
        }
    }
}

impl fmt::Display for TelemetryFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A trigger condition for an automation rule (IFTTT-style, paper §V-B:
/// "it will have a cascade effect when data from the device is involved in
/// rules").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleTrigger {
    /// Temperature above a threshold (milli-°C).
    TemperatureAbove(i32),
    /// Temperature below a threshold (milli-°C).
    TemperatureBelow(i32),
    /// Any triggered alarm frame.
    AlarmTriggered,
    /// Motion confidence at or above a threshold.
    MotionAtLeast(u8),
    /// Power draw above a threshold (milliwatts).
    PowerAbove(u64),
}

impl RuleTrigger {
    /// Whether a telemetry frame satisfies the trigger.
    pub fn matches(&self, frame: &TelemetryFrame) -> bool {
        match (self, frame) {
            (RuleTrigger::TemperatureAbove(t), TelemetryFrame::TemperatureMilliC(v)) => v > t,
            (RuleTrigger::TemperatureBelow(t), TelemetryFrame::TemperatureMilliC(v)) => v < t,
            (RuleTrigger::AlarmTriggered, TelemetryFrame::Alarm { triggered }) => *triggered,
            (RuleTrigger::MotionAtLeast(c), TelemetryFrame::Motion { confidence }) => {
                confidence >= c
            }
            (RuleTrigger::PowerAbove(p), TelemetryFrame::PowerMilliwatts(v)) => v > p,
            _ => false,
        }
    }
}

impl fmt::Display for RuleTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleTrigger::TemperatureAbove(t) => {
                write!(f, "temp > {}.{:03}C", t / 1000, (t % 1000).abs())
            }
            RuleTrigger::TemperatureBelow(t) => {
                write!(f, "temp < {}.{:03}C", t / 1000, (t % 1000).abs())
            }
            RuleTrigger::AlarmTriggered => f.write_str("alarm triggered"),
            RuleTrigger::MotionAtLeast(c) => write!(f, "motion >= {c}%"),
            RuleTrigger::PowerAbove(p) => write!(f, "power > {p}mW"),
        }
    }
}

/// A user-configured schedule entry stored cloud-side — the private data the
/// paper's A1 *stealing* variant exfiltrates ("the attacker is able to
/// obtain the opening and closing time of the door").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Tick (simulation time) at which the action fires.
    pub at_tick: u64,
    /// Whether the action turns the device on (unlocks) or off (locks).
    pub turn_on: bool,
}

impl fmt::Display for ScheduleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{}:{}",
            self.at_tick,
            if self.turn_on { "on" } else { "off" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alarming_frames_are_classified() {
        assert!(TelemetryFrame::Alarm { triggered: true }.is_alarming());
        assert!(!TelemetryFrame::Alarm { triggered: false }.is_alarming());
        assert!(TelemetryFrame::Motion { confidence: 90 }.is_alarming());
        assert!(!TelemetryFrame::Motion { confidence: 10 }.is_alarming());
        assert!(TelemetryFrame::TemperatureMilliC(70_000).is_alarming());
        assert!(TelemetryFrame::TemperatureMilliC(-25_000).is_alarming());
        assert!(!TelemetryFrame::TemperatureMilliC(21_000).is_alarming());
        assert!(!TelemetryFrame::PowerMilliwatts(1500).is_alarming());
    }

    #[test]
    fn describe_is_compact_and_lossless_enough() {
        assert_eq!(
            TelemetryFrame::PowerMilliwatts(2534).describe(),
            "power=2.534W"
        );
        assert_eq!(
            TelemetryFrame::LockEvent {
                locked: false,
                at_tick: 7
            }
            .describe(),
            "lock=open @t7"
        );
        assert_eq!(
            TelemetryFrame::TemperatureMilliC(-1500).describe(),
            "temp=-1.500C"
        );
    }

    #[test]
    fn rule_triggers_match_the_right_frames() {
        assert!(RuleTrigger::TemperatureAbove(30_000)
            .matches(&TelemetryFrame::TemperatureMilliC(31_000)));
        assert!(!RuleTrigger::TemperatureAbove(30_000)
            .matches(&TelemetryFrame::TemperatureMilliC(30_000)));
        assert!(RuleTrigger::TemperatureBelow(0).matches(&TelemetryFrame::TemperatureMilliC(-1)));
        assert!(RuleTrigger::AlarmTriggered.matches(&TelemetryFrame::Alarm { triggered: true }));
        assert!(!RuleTrigger::AlarmTriggered.matches(&TelemetryFrame::Alarm { triggered: false }));
        assert!(RuleTrigger::MotionAtLeast(50).matches(&TelemetryFrame::Motion { confidence: 50 }));
        assert!(RuleTrigger::PowerAbove(100).matches(&TelemetryFrame::PowerMilliwatts(101)));
        // Cross-kind frames never match.
        assert!(!RuleTrigger::PowerAbove(0).matches(&TelemetryFrame::Brightness(5)));
    }

    #[test]
    fn rule_trigger_display() {
        assert_eq!(
            RuleTrigger::TemperatureAbove(30_500).to_string(),
            "temp > 30.500C"
        );
        assert_eq!(RuleTrigger::MotionAtLeast(7).to_string(), "motion >= 7%");
    }

    #[test]
    fn schedule_entry_display() {
        let e = ScheduleEntry {
            at_tick: 42,
            turn_on: true,
        };
        assert_eq!(e.to_string(), "t42:on");
    }
}
