//! Error types for wire-level parsing and validation.

use std::error::Error;
use std::fmt;

/// Error produced while decoding or validating wire data.
///
/// Every variant names the offending construct so that forged or corrupted
/// messages produce actionable diagnostics in experiment logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value being decoded was complete.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A tag byte did not correspond to any known variant.
    UnknownTag {
        /// What kind of value the tag was selecting.
        context: &'static str,
        /// The unrecognized tag value.
        tag: u8,
    },
    /// A length prefix exceeded the bound allowed for its field.
    LengthOutOfRange {
        /// What field carried the bad length.
        context: &'static str,
        /// The length found on the wire.
        len: usize,
        /// The maximum permitted length.
        max: usize,
    },
    /// A string field contained invalid UTF-8.
    InvalidUtf8 {
        /// What field contained the bad bytes.
        context: &'static str,
    },
    /// A numeric field was outside its valid domain (e.g. a 6-digit device
    /// id with more than 6 digits).
    ValueOutOfRange {
        /// What field contained the bad value.
        context: &'static str,
    },
    /// Trailing bytes remained after a complete message was decoded.
    TrailingBytes {
        /// Number of bytes left over.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "truncated buffer while decoding {context}")
            }
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} for {context}")
            }
            WireError::LengthOutOfRange { context, len, max } => {
                write!(f, "length {len} exceeds maximum {max} for {context}")
            }
            WireError::InvalidUtf8 { context } => {
                write!(f, "invalid utf-8 in {context}")
            }
            WireError::ValueOutOfRange { context } => {
                write!(f, "value out of range for {context}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = WireError::Truncated { context: "DevId" };
        assert_eq!(e.to_string(), "truncated buffer while decoding DevId");
        let e = WireError::UnknownTag {
            context: "Message",
            tag: 0xff,
        };
        assert_eq!(e.to_string(), "unknown tag 0xff for Message");
        let e = WireError::LengthOutOfRange {
            context: "UserId",
            len: 999,
            max: 256,
        };
        assert!(e.to_string().contains("999"));
        assert!(e.to_string().contains("256"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn Error> = Box::new(WireError::TrailingBytes { remaining: 3 });
        assert!(e.to_string().contains("3 trailing bytes"));
    }
}
