//! Wire codecs: the object-safe [`Codec`] trait, the self-describing
//! big-endian [`ClassicCodec`], and the [`CodecKind`] selector.
//!
//! The experiments forge messages at the byte level — the same vantage point
//! the paper's authors had with a MITM proxy, Postman, and raw OpenSSL
//! sockets — so the codecs are real serializers, not facades over `serde`.
//! Two formats coexist behind the trait (byte-level layouts in
//! `WIRE-FORMAT.md` at the repository root):
//!
//! * [`ClassicCodec`] — the original format, and the default everywhere:
//!   one tag byte per enum variant, big-endian fixed-width integers,
//!   `u16`-length-prefixed strings, `u16` element counts. Its output is
//!   pinned by hex goldens: it never drifts.
//! * [`CompactCodec`](crate::compact::CompactCodec) — varint/TLV framing
//!   with a zero-copy decode path (decoded strings borrow the packet
//!   buffer).
//!
//! The free functions [`encode_message`] / [`decode_message`] /
//! [`encode_response`] / [`decode_response`] *are* the classic format;
//! [`ClassicCodec`] forwards to them, so pre-trait call sites and the trait
//! produce identical bytes. All decoders reject trailing bytes, unknown
//! tags, and out-of-range lengths with precise [`WireError`]s.
//!
//! # Example
//!
//! ```rust
//! use rb_wire::codec::{Codec, CodecKind};
//! use rb_wire::envelope::{CorrId, Envelope};
//! use rb_wire::ids::{DevId, MacAddr};
//! use rb_wire::messages::{BindPayload, Message};
//! use rb_wire::tokens::UserToken;
//!
//! # fn main() -> Result<(), rb_wire::WireError> {
//! let env = Envelope::Request {
//!     corr: CorrId(7),
//!     msg: Message::Bind(BindPayload::AclApp {
//!         dev_id: DevId::Mac(MacAddr::new([0x94, 0x10, 0x3e, 1, 2, 3])),
//!         user_token: UserToken::from_entropy(42),
//!     }),
//! };
//! // Every codec round-trips every envelope; the wire bytes differ.
//! for kind in CodecKind::ALL {
//!     let codec: &dyn Codec = kind.codec();
//!     let bytes = codec.encode_envelope(&env);
//!     assert_eq!(codec.decode_envelope(&bytes)?, env);
//! }
//! assert!(CodecKind::default() == CodecKind::Classic);
//! # Ok(())
//! # }
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::envelope::Envelope;

use crate::error::WireError;
use crate::ids::{DevId, MacAddr};
use crate::messages::{
    AutomationRule, BindPayload, ControlAction, DenyReason, DeviceAttributes, Message, Response,
    StatusAuth, StatusKind, StatusPayload, UnbindPayload,
};
use crate::telemetry::{RuleTrigger, ScheduleEntry, TelemetryFrame};
use crate::tokens::{BindToken, DevToken, SessionToken, UserId, UserPw, UserToken};

/// Maximum accepted string length on the wire.
pub const MAX_STR: usize = 1024;
/// Maximum accepted sequence length on the wire.
pub const MAX_SEQ: usize = 4096;

// ---------------------------------------------------------------------------
// The pluggable codec abstraction.
// ---------------------------------------------------------------------------

/// An object-safe wire codec: encode/decode for the three framed value
/// kinds ([`Envelope`], [`Message`], [`Response`]).
///
/// Implementations are stateless unit structs, so a codec is selected once
/// (per agent, or for a whole simulated world via
/// `WorldBuilder::with_codec`) and shared as a `&'static dyn Codec`.
/// Decoders take [`Bytes`] rather than `&[u8]` so a zero-copy
/// implementation can return values that borrow the packet buffer — a
/// refcount bump instead of a per-field allocation.
///
/// Both built-in codecs satisfy, for every value `v`:
/// `decode(encode(v)) == Ok(v)` (the cross-codec property tests pin this),
/// and reject malformed input with a [`WireError`] instead of panicking.
pub trait Codec: Send + Sync {
    /// Short stable name for reports, traces, and CLI flags.
    fn name(&self) -> &'static str;

    /// Serializes a [`Message`].
    fn encode_message(&self, msg: &Message) -> Bytes;

    /// Deserializes a [`Message`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, unknown tags, invalid UTF-8,
    /// out-of-range values, or trailing bytes.
    fn decode_message(&self, bytes: &Bytes) -> Result<Message, WireError>;

    /// Serializes a [`Response`].
    fn encode_response(&self, rsp: &Response) -> Bytes;

    /// Deserializes a [`Response`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is malformed.
    fn decode_response(&self, bytes: &Bytes) -> Result<Response, WireError>;

    /// Serializes an [`Envelope`] (direction + correlation id + body).
    fn encode_envelope(&self, env: &Envelope) -> Bytes;

    /// Deserializes an [`Envelope`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is malformed.
    fn decode_envelope(&self, bytes: &Bytes) -> Result<Envelope, WireError>;
}

/// The original self-describing big-endian format (see `WIRE-FORMAT.md`
/// §2): one tag byte per enum variant, fixed-width integers, `u16`
/// length-prefixed strings. The default codec; its byte output is pinned
/// by committed hex goldens and must never change.
///
/// ```rust
/// use rb_wire::codec::{ClassicCodec, Codec, encode_message};
/// use rb_wire::messages::Message;
/// use rb_wire::tokens::{UserId, UserPw};
///
/// let msg = Message::Login {
///     user_id: UserId::new("alice@example.com"),
///     user_pw: UserPw::new("s3cret"),
/// };
/// // The trait and the pre-trait free functions agree byte for byte.
/// let via_trait = ClassicCodec.encode_message(&msg);
/// assert_eq!(via_trait, encode_message(&msg));
/// assert_eq!(ClassicCodec.decode_message(&via_trait), Ok(msg));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClassicCodec;

impl Codec for ClassicCodec {
    fn name(&self) -> &'static str {
        "classic"
    }

    fn encode_message(&self, msg: &Message) -> Bytes {
        encode_message(msg)
    }

    fn decode_message(&self, bytes: &Bytes) -> Result<Message, WireError> {
        decode_message(bytes)
    }

    fn encode_response(&self, rsp: &Response) -> Bytes {
        encode_response(rsp)
    }

    fn decode_response(&self, bytes: &Bytes) -> Result<Response, WireError> {
        decode_response(bytes)
    }

    fn encode_envelope(&self, env: &Envelope) -> Bytes {
        env.encode()
    }

    fn decode_envelope(&self, bytes: &Bytes) -> Result<Envelope, WireError> {
        Envelope::decode(bytes)
    }
}

/// Selects one of the built-in codecs. `Copy`, so it threads through
/// configuration structs ([`Default`] is [`CodecKind::Classic`]); call
/// [`CodecKind::codec`] at the byte boundary to get the implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodecKind {
    /// The pinned self-describing big-endian format ([`ClassicCodec`]).
    #[default]
    Classic,
    /// The varint/TLV zero-copy format
    /// ([`CompactCodec`](crate::compact::CompactCodec)).
    Compact,
}

impl CodecKind {
    /// Every built-in codec, for sweeps and cross-codec tests.
    pub const ALL: [CodecKind; 2] = [CodecKind::Classic, CodecKind::Compact];

    /// The codec implementation.
    pub fn codec(self) -> &'static dyn Codec {
        match self {
            CodecKind::Classic => &ClassicCodec,
            CodecKind::Compact => &crate::compact::CompactCodec,
        }
    }

    /// Stable name (`"classic"` / `"compact"`), matching
    /// [`Codec::name`].
    pub fn name(self) -> &'static str {
        self.codec().name()
    }

    /// Parses a [`CodecKind::name`] back (CLI flags, config files).
    pub fn from_name(name: &str) -> Option<CodecKind> {
        CodecKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Low-level reader with context-carrying errors.
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        if self.buf.remaining() < 1 {
            return Err(WireError::Truncated { context });
        }
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        if self.buf.remaining() < 2 {
            return Err(WireError::Truncated { context });
        }
        Ok(self.buf.get_u16())
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        if self.buf.remaining() < 4 {
            return Err(WireError::Truncated { context });
        }
        Ok(self.buf.get_u32())
    }

    fn i32(&mut self, context: &'static str) -> Result<i32, WireError> {
        Ok(self.u32(context)? as i32)
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::Truncated { context });
        }
        Ok(self.buf.get_u64())
    }

    fn u128(&mut self, context: &'static str) -> Result<u128, WireError> {
        if self.buf.remaining() < 16 {
            return Err(WireError::Truncated { context });
        }
        Ok(self.buf.get_u128())
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }

    fn bytes16(&mut self, context: &'static str) -> Result<[u8; 16], WireError> {
        if self.buf.remaining() < 16 {
            return Err(WireError::Truncated { context });
        }
        let mut out = [0u8; 16];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    fn string(&mut self, context: &'static str) -> Result<String, WireError> {
        let len = self.u16(context)? as usize;
        if len > MAX_STR {
            return Err(WireError::LengthOutOfRange {
                context,
                len,
                max: MAX_STR,
            });
        }
        if self.buf.remaining() < len {
            return Err(WireError::Truncated { context });
        }
        let raw = self.buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8 { context })
    }

    fn seq_len(&mut self, context: &'static str) -> Result<usize, WireError> {
        let len = self.u16(context)? as usize;
        if len > MAX_SEQ {
            return Err(WireError::LengthOutOfRange {
                context,
                len,
                max: MAX_SEQ,
            });
        }
        Ok(len)
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(MAX_STR);
    buf.put_u16(len as u16);
    buf.put_slice(&bytes[..len]);
}

// ---------------------------------------------------------------------------
// DevId
// ---------------------------------------------------------------------------

pub(crate) const DEVID_MAC: u8 = 0x01;
pub(crate) const DEVID_SERIAL: u8 = 0x02;
pub(crate) const DEVID_DIGITS: u8 = 0x03;
pub(crate) const DEVID_UUID: u8 = 0x04;

fn put_dev_id(buf: &mut BytesMut, id: &DevId) {
    match id {
        DevId::Mac(mac) => {
            buf.put_u8(DEVID_MAC);
            buf.put_slice(&mac.octets());
        }
        DevId::Serial { vendor, seq } => {
            buf.put_u8(DEVID_SERIAL);
            buf.put_u16(*vendor);
            buf.put_u64(*seq);
        }
        DevId::Digits { value, width } => {
            buf.put_u8(DEVID_DIGITS);
            buf.put_u32(*value);
            buf.put_u8(*width);
        }
        DevId::Uuid(u) => {
            buf.put_u8(DEVID_UUID);
            buf.put_u128(*u);
        }
    }
}

fn get_dev_id(r: &mut Reader<'_>) -> Result<DevId, WireError> {
    match r.u8("DevId tag")? {
        DEVID_MAC => {
            if r.remaining() < 6 {
                return Err(WireError::Truncated {
                    context: "DevId::Mac",
                });
            }
            let mut o = [0u8; 6];
            for b in &mut o {
                *b = r.u8("DevId::Mac")?;
            }
            Ok(DevId::Mac(MacAddr::new(o)))
        }
        DEVID_SERIAL => Ok(DevId::Serial {
            vendor: r.u16("DevId::Serial vendor")?,
            seq: r.u64("DevId::Serial seq")?,
        }),
        DEVID_DIGITS => {
            let id = DevId::Digits {
                value: r.u32("DevId::Digits value")?,
                width: r.u8("DevId::Digits width")?,
            };
            id.validate()?;
            Ok(id)
        }
        DEVID_UUID => Ok(DevId::Uuid(r.u128("DevId::Uuid")?)),
        tag => Err(WireError::UnknownTag {
            context: "DevId",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// StatusAuth / StatusPayload
// ---------------------------------------------------------------------------

pub(crate) const AUTH_DEVTOKEN: u8 = 0x01;
pub(crate) const AUTH_DEVID: u8 = 0x02;
pub(crate) const AUTH_PUBKEY: u8 = 0x03;

fn put_status_auth(buf: &mut BytesMut, auth: &StatusAuth) {
    match auth {
        StatusAuth::DevToken(t) => {
            buf.put_u8(AUTH_DEVTOKEN);
            buf.put_slice(t.as_bytes());
        }
        StatusAuth::DevId(id) => {
            buf.put_u8(AUTH_DEVID);
            put_dev_id(buf, id);
        }
        StatusAuth::PublicKey { key_id, signature } => {
            buf.put_u8(AUTH_PUBKEY);
            buf.put_u64(*key_id);
            buf.put_u128(*signature);
        }
    }
}

fn get_status_auth(r: &mut Reader<'_>) -> Result<StatusAuth, WireError> {
    match r.u8("StatusAuth tag")? {
        AUTH_DEVTOKEN => Ok(StatusAuth::DevToken(DevToken::from_bytes(
            r.bytes16("DevToken")?,
        ))),
        AUTH_DEVID => Ok(StatusAuth::DevId(get_dev_id(r)?)),
        AUTH_PUBKEY => Ok(StatusAuth::PublicKey {
            key_id: r.u64("PublicKey key_id")?,
            signature: r.u128("PublicKey signature")?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "StatusAuth",
            tag,
        }),
    }
}

pub(crate) const TEL_POWER: u8 = 0x01;
pub(crate) const TEL_TEMP: u8 = 0x02;
pub(crate) const TEL_SWITCH: u8 = 0x03;
pub(crate) const TEL_BRIGHT: u8 = 0x04;
pub(crate) const TEL_LOCK: u8 = 0x05;
pub(crate) const TEL_MOTION: u8 = 0x06;
pub(crate) const TEL_ALARM: u8 = 0x07;

fn put_telemetry(buf: &mut BytesMut, t: &TelemetryFrame) {
    match t {
        TelemetryFrame::PowerMilliwatts(mw) => {
            buf.put_u8(TEL_POWER);
            buf.put_u64(*mw);
        }
        TelemetryFrame::TemperatureMilliC(c) => {
            buf.put_u8(TEL_TEMP);
            buf.put_u32(*c as u32);
        }
        TelemetryFrame::SwitchState { on } => {
            buf.put_u8(TEL_SWITCH);
            buf.put_u8(u8::from(*on));
        }
        TelemetryFrame::Brightness(b) => {
            buf.put_u8(TEL_BRIGHT);
            buf.put_u8(*b);
        }
        TelemetryFrame::LockEvent { locked, at_tick } => {
            buf.put_u8(TEL_LOCK);
            buf.put_u8(u8::from(*locked));
            buf.put_u64(*at_tick);
        }
        TelemetryFrame::Motion { confidence } => {
            buf.put_u8(TEL_MOTION);
            buf.put_u8(*confidence);
        }
        TelemetryFrame::Alarm { triggered } => {
            buf.put_u8(TEL_ALARM);
            buf.put_u8(u8::from(*triggered));
        }
    }
}

fn get_telemetry(r: &mut Reader<'_>) -> Result<TelemetryFrame, WireError> {
    match r.u8("TelemetryFrame tag")? {
        TEL_POWER => Ok(TelemetryFrame::PowerMilliwatts(r.u64("Power")?)),
        TEL_TEMP => Ok(TelemetryFrame::TemperatureMilliC(r.i32("Temperature")?)),
        TEL_SWITCH => Ok(TelemetryFrame::SwitchState {
            on: r.bool("SwitchState")?,
        }),
        TEL_BRIGHT => Ok(TelemetryFrame::Brightness(r.u8("Brightness")?)),
        TEL_LOCK => Ok(TelemetryFrame::LockEvent {
            locked: r.bool("LockEvent locked")?,
            at_tick: r.u64("LockEvent at_tick")?,
        }),
        TEL_MOTION => Ok(TelemetryFrame::Motion {
            confidence: r.u8("Motion")?,
        }),
        TEL_ALARM => Ok(TelemetryFrame::Alarm {
            triggered: r.bool("Alarm")?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "TelemetryFrame",
            tag,
        }),
    }
}

fn put_option_session(buf: &mut BytesMut, s: &Option<SessionToken>) {
    match s {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            buf.put_slice(t.as_bytes());
        }
    }
}

fn get_option_session(r: &mut Reader<'_>) -> Result<Option<SessionToken>, WireError> {
    if r.bool("Option<SessionToken>")? {
        Ok(Some(SessionToken::from_bytes(r.bytes16("SessionToken")?)))
    } else {
        Ok(None)
    }
}

fn put_status(buf: &mut BytesMut, s: &StatusPayload) {
    put_status_auth(buf, &s.auth);
    put_dev_id(buf, &s.dev_id);
    buf.put_u8(match s.kind {
        StatusKind::Register => 0,
        StatusKind::Heartbeat => 1,
    });
    put_string(buf, &s.attributes.model);
    put_string(buf, &s.attributes.firmware);
    put_option_session(buf, &s.session);
    buf.put_u16(s.telemetry.len().min(MAX_SEQ) as u16);
    for t in s.telemetry.iter().take(MAX_SEQ) {
        put_telemetry(buf, t);
    }
    buf.put_u8(u8::from(s.button_pressed));
}

fn get_status(r: &mut Reader<'_>) -> Result<StatusPayload, WireError> {
    let auth = get_status_auth(r)?;
    let dev_id = get_dev_id(r)?;
    let kind = match r.u8("StatusKind")? {
        0 => StatusKind::Register,
        1 => StatusKind::Heartbeat,
        tag => {
            return Err(WireError::UnknownTag {
                context: "StatusKind",
                tag,
            })
        }
    };
    let model = r.string("attributes.model")?;
    let firmware = r.string("attributes.firmware")?;
    let session = get_option_session(r)?;
    let n = r.seq_len("telemetry")?;
    let mut telemetry = Vec::with_capacity(n);
    for _ in 0..n {
        telemetry.push(get_telemetry(r)?);
    }
    let button_pressed = r.bool("button_pressed")?;
    Ok(StatusPayload {
        auth,
        dev_id,
        kind,
        attributes: DeviceAttributes::new(model, firmware),
        session,
        telemetry,
        button_pressed,
    })
}

// ---------------------------------------------------------------------------
// Bind / Unbind / Control
// ---------------------------------------------------------------------------

pub(crate) const BIND_ACL_APP: u8 = 0x01;
pub(crate) const BIND_ACL_DEVICE: u8 = 0x02;
pub(crate) const BIND_CAPABILITY: u8 = 0x03;

fn put_bind(buf: &mut BytesMut, b: &BindPayload) {
    match b {
        BindPayload::AclApp { dev_id, user_token } => {
            buf.put_u8(BIND_ACL_APP);
            put_dev_id(buf, dev_id);
            buf.put_slice(user_token.as_bytes());
        }
        BindPayload::AclDevice {
            dev_id,
            user_id,
            user_pw,
        } => {
            buf.put_u8(BIND_ACL_DEVICE);
            put_dev_id(buf, dev_id);
            put_string(buf, user_id.as_str());
            put_string(buf, user_pw.expose());
        }
        BindPayload::Capability { bind_token } => {
            buf.put_u8(BIND_CAPABILITY);
            buf.put_slice(bind_token.as_bytes());
        }
    }
}

fn get_bind(r: &mut Reader<'_>) -> Result<BindPayload, WireError> {
    match r.u8("BindPayload tag")? {
        BIND_ACL_APP => Ok(BindPayload::AclApp {
            dev_id: get_dev_id(r)?,
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
        }),
        BIND_ACL_DEVICE => Ok(BindPayload::AclDevice {
            dev_id: get_dev_id(r)?,
            user_id: UserId::new(r.string("UserId")?),
            user_pw: UserPw::new(r.string("UserPw")?),
        }),
        BIND_CAPABILITY => Ok(BindPayload::Capability {
            bind_token: BindToken::from_bytes(r.bytes16("BindToken")?),
        }),
        tag => Err(WireError::UnknownTag {
            context: "BindPayload",
            tag,
        }),
    }
}

pub(crate) const UNBIND_ID_TOKEN: u8 = 0x01;
pub(crate) const UNBIND_ID_ONLY: u8 = 0x02;

fn put_unbind(buf: &mut BytesMut, u: &UnbindPayload) {
    match u {
        UnbindPayload::DevIdUserToken { dev_id, user_token } => {
            buf.put_u8(UNBIND_ID_TOKEN);
            put_dev_id(buf, dev_id);
            buf.put_slice(user_token.as_bytes());
        }
        UnbindPayload::DevIdOnly { dev_id } => {
            buf.put_u8(UNBIND_ID_ONLY);
            put_dev_id(buf, dev_id);
        }
    }
}

fn get_unbind(r: &mut Reader<'_>) -> Result<UnbindPayload, WireError> {
    match r.u8("UnbindPayload tag")? {
        UNBIND_ID_TOKEN => Ok(UnbindPayload::DevIdUserToken {
            dev_id: get_dev_id(r)?,
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
        }),
        UNBIND_ID_ONLY => Ok(UnbindPayload::DevIdOnly {
            dev_id: get_dev_id(r)?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "UnbindPayload",
            tag,
        }),
    }
}

pub(crate) const ACT_ON: u8 = 0x01;
pub(crate) const ACT_OFF: u8 = 0x02;
pub(crate) const ACT_BRIGHT: u8 = 0x03;
pub(crate) const ACT_SET_SCHED: u8 = 0x04;
pub(crate) const ACT_QUERY_SCHED: u8 = 0x05;
pub(crate) const ACT_QUERY_TEL: u8 = 0x06;

fn put_action(buf: &mut BytesMut, a: &ControlAction) {
    match a {
        ControlAction::TurnOn => buf.put_u8(ACT_ON),
        ControlAction::TurnOff => buf.put_u8(ACT_OFF),
        ControlAction::SetBrightness(b) => {
            buf.put_u8(ACT_BRIGHT);
            buf.put_u8(*b);
        }
        ControlAction::SetSchedule(e) => {
            buf.put_u8(ACT_SET_SCHED);
            buf.put_u64(e.at_tick);
            buf.put_u8(u8::from(e.turn_on));
        }
        ControlAction::QuerySchedule => buf.put_u8(ACT_QUERY_SCHED),
        ControlAction::QueryTelemetry => buf.put_u8(ACT_QUERY_TEL),
    }
}

fn get_action(r: &mut Reader<'_>) -> Result<ControlAction, WireError> {
    match r.u8("ControlAction tag")? {
        ACT_ON => Ok(ControlAction::TurnOn),
        ACT_OFF => Ok(ControlAction::TurnOff),
        ACT_BRIGHT => Ok(ControlAction::SetBrightness(r.u8("Brightness")?)),
        ACT_SET_SCHED => Ok(ControlAction::SetSchedule(ScheduleEntry {
            at_tick: r.u64("ScheduleEntry at_tick")?,
            turn_on: r.bool("ScheduleEntry turn_on")?,
        })),
        ACT_QUERY_SCHED => Ok(ControlAction::QuerySchedule),
        ACT_QUERY_TEL => Ok(ControlAction::QueryTelemetry),
        tag => Err(WireError::UnknownTag {
            context: "ControlAction",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Message
// ---------------------------------------------------------------------------

pub(crate) const MSG_LOGIN: u8 = 0x10;
pub(crate) const MSG_REQ_DEVTOKEN: u8 = 0x11;
pub(crate) const MSG_REQ_BINDTOKEN: u8 = 0x12;
pub(crate) const MSG_STATUS: u8 = 0x13;
pub(crate) const MSG_BIND: u8 = 0x14;
pub(crate) const MSG_UNBIND: u8 = 0x15;
pub(crate) const MSG_CONTROL: u8 = 0x16;
pub(crate) const MSG_QUERY_SHADOW: u8 = 0x17;
pub(crate) const MSG_SHARE: u8 = 0x18;
pub(crate) const MSG_UNSHARE: u8 = 0x19;
pub(crate) const MSG_SET_RULE: u8 = 0x1a;

pub(crate) const TRG_TEMP_ABOVE: u8 = 0x01;
pub(crate) const TRG_TEMP_BELOW: u8 = 0x02;
pub(crate) const TRG_ALARM: u8 = 0x03;
pub(crate) const TRG_MOTION: u8 = 0x04;
pub(crate) const TRG_POWER: u8 = 0x05;

fn put_trigger(buf: &mut BytesMut, t: &RuleTrigger) {
    match t {
        RuleTrigger::TemperatureAbove(v) => {
            buf.put_u8(TRG_TEMP_ABOVE);
            buf.put_u32(*v as u32);
        }
        RuleTrigger::TemperatureBelow(v) => {
            buf.put_u8(TRG_TEMP_BELOW);
            buf.put_u32(*v as u32);
        }
        RuleTrigger::AlarmTriggered => buf.put_u8(TRG_ALARM),
        RuleTrigger::MotionAtLeast(c) => {
            buf.put_u8(TRG_MOTION);
            buf.put_u8(*c);
        }
        RuleTrigger::PowerAbove(p) => {
            buf.put_u8(TRG_POWER);
            buf.put_u64(*p);
        }
    }
}

fn get_trigger(r: &mut Reader<'_>) -> Result<RuleTrigger, WireError> {
    match r.u8("RuleTrigger tag")? {
        TRG_TEMP_ABOVE => Ok(RuleTrigger::TemperatureAbove(r.i32("TemperatureAbove")?)),
        TRG_TEMP_BELOW => Ok(RuleTrigger::TemperatureBelow(r.i32("TemperatureBelow")?)),
        TRG_ALARM => Ok(RuleTrigger::AlarmTriggered),
        TRG_MOTION => Ok(RuleTrigger::MotionAtLeast(r.u8("MotionAtLeast")?)),
        TRG_POWER => Ok(RuleTrigger::PowerAbove(r.u64("PowerAbove")?)),
        tag => Err(WireError::UnknownTag {
            context: "RuleTrigger",
            tag,
        }),
    }
}

/// Encodes a [`Message`] to bytes.
pub fn encode_message(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match msg {
        Message::Login { user_id, user_pw } => {
            buf.put_u8(MSG_LOGIN);
            put_string(&mut buf, user_id.as_str());
            put_string(&mut buf, user_pw.expose());
        }
        Message::RequestDevToken { user_token } => {
            buf.put_u8(MSG_REQ_DEVTOKEN);
            buf.put_slice(user_token.as_bytes());
        }
        Message::RequestBindToken { user_token } => {
            buf.put_u8(MSG_REQ_BINDTOKEN);
            buf.put_slice(user_token.as_bytes());
        }
        Message::Status(s) => {
            buf.put_u8(MSG_STATUS);
            put_status(&mut buf, s);
        }
        Message::Bind(b) => {
            buf.put_u8(MSG_BIND);
            put_bind(&mut buf, b);
        }
        Message::Unbind(u) => {
            buf.put_u8(MSG_UNBIND);
            put_unbind(&mut buf, u);
        }
        Message::Control {
            dev_id,
            user_token,
            session,
            action,
        } => {
            buf.put_u8(MSG_CONTROL);
            put_dev_id(&mut buf, dev_id);
            buf.put_slice(user_token.as_bytes());
            put_option_session(&mut buf, session);
            put_action(&mut buf, action);
        }
        Message::QueryShadow { dev_id } => {
            buf.put_u8(MSG_QUERY_SHADOW);
            put_dev_id(&mut buf, dev_id);
        }
        Message::Share {
            dev_id,
            user_token,
            grantee,
        } => {
            buf.put_u8(MSG_SHARE);
            put_dev_id(&mut buf, dev_id);
            buf.put_slice(user_token.as_bytes());
            put_string(&mut buf, grantee.as_str());
        }
        Message::Unshare {
            dev_id,
            user_token,
            grantee,
        } => {
            buf.put_u8(MSG_UNSHARE);
            put_dev_id(&mut buf, dev_id);
            buf.put_slice(user_token.as_bytes());
            put_string(&mut buf, grantee.as_str());
        }
        Message::SetRule { user_token, rule } => {
            buf.put_u8(MSG_SET_RULE);
            buf.put_slice(user_token.as_bytes());
            put_dev_id(&mut buf, &rule.trigger_dev);
            put_trigger(&mut buf, &rule.trigger);
            put_dev_id(&mut buf, &rule.action_dev);
            put_action(&mut buf, &rule.action);
        }
    }
    buf.freeze()
}

/// Decodes a [`Message`] from bytes.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, unknown tags, invalid UTF-8,
/// out-of-range values, or trailing bytes.
pub fn decode_message(bytes: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(bytes);
    let msg = match r.u8("Message tag")? {
        MSG_LOGIN => Message::Login {
            user_id: UserId::new(r.string("UserId")?),
            user_pw: UserPw::new(r.string("UserPw")?),
        },
        MSG_REQ_DEVTOKEN => Message::RequestDevToken {
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
        },
        MSG_REQ_BINDTOKEN => Message::RequestBindToken {
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
        },
        MSG_STATUS => Message::Status(get_status(&mut r)?),
        MSG_BIND => Message::Bind(get_bind(&mut r)?),
        MSG_UNBIND => Message::Unbind(get_unbind(&mut r)?),
        MSG_CONTROL => Message::Control {
            dev_id: get_dev_id(&mut r)?,
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
            session: get_option_session(&mut r)?,
            action: get_action(&mut r)?,
        },
        MSG_QUERY_SHADOW => Message::QueryShadow {
            dev_id: get_dev_id(&mut r)?,
        },
        MSG_SHARE => Message::Share {
            dev_id: get_dev_id(&mut r)?,
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
            grantee: UserId::new(r.string("grantee")?),
        },
        MSG_UNSHARE => Message::Unshare {
            dev_id: get_dev_id(&mut r)?,
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
            grantee: UserId::new(r.string("grantee")?),
        },
        MSG_SET_RULE => Message::SetRule {
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
            rule: AutomationRule {
                trigger_dev: get_dev_id(&mut r)?,
                trigger: get_trigger(&mut r)?,
                action_dev: get_dev_id(&mut r)?,
                action: get_action(&mut r)?,
            },
        },
        tag => {
            return Err(WireError::UnknownTag {
                context: "Message",
                tag,
            })
        }
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Response
// ---------------------------------------------------------------------------

pub(crate) const RSP_LOGIN_OK: u8 = 0x20;
pub(crate) const RSP_DEVTOKEN: u8 = 0x21;
pub(crate) const RSP_BINDTOKEN: u8 = 0x22;
pub(crate) const RSP_STATUS_ACCEPTED: u8 = 0x23;
pub(crate) const RSP_BOUND: u8 = 0x24;
pub(crate) const RSP_UNBOUND: u8 = 0x25;
pub(crate) const RSP_CONTROL_OK: u8 = 0x26;
pub(crate) const RSP_SHADOW: u8 = 0x27;
pub(crate) const RSP_TEL_PUSH: u8 = 0x28;
pub(crate) const RSP_CTRL_PUSH: u8 = 0x29;
pub(crate) const RSP_REVOKED: u8 = 0x2a;
pub(crate) const RSP_DENIED: u8 = 0x2b;
pub(crate) const RSP_SHARE_OK: u8 = 0x2c;
pub(crate) const RSP_RULE_SET: u8 = 0x2d;

pub(crate) fn deny_to_u8(d: DenyReason) -> u8 {
    match d {
        DenyReason::UnknownUser => 13,
        DenyReason::BadCredentials => 0,
        DenyReason::InvalidUserToken => 1,
        DenyReason::DeviceAuthFailed => 2,
        DenyReason::AlreadyBound => 3,
        DenyReason::NotBoundUser => 4,
        DenyReason::NotBound => 5,
        DenyReason::InvalidBindToken => 6,
        DenyReason::BadSession => 7,
        DenyReason::OwnershipProofFailed => 8,
        DenyReason::DeviceOffline => 9,
        DenyReason::UnknownDevice => 10,
        DenyReason::UnsupportedOperation => 11,
        DenyReason::RateLimited => 12,
    }
}

pub(crate) fn deny_from_u8(v: u8) -> Result<DenyReason, WireError> {
    Ok(match v {
        0 => DenyReason::BadCredentials,
        1 => DenyReason::InvalidUserToken,
        2 => DenyReason::DeviceAuthFailed,
        3 => DenyReason::AlreadyBound,
        4 => DenyReason::NotBoundUser,
        5 => DenyReason::NotBound,
        6 => DenyReason::InvalidBindToken,
        7 => DenyReason::BadSession,
        8 => DenyReason::OwnershipProofFailed,
        9 => DenyReason::DeviceOffline,
        10 => DenyReason::UnknownDevice,
        11 => DenyReason::UnsupportedOperation,
        12 => DenyReason::RateLimited,
        13 => DenyReason::UnknownUser,
        tag => {
            return Err(WireError::UnknownTag {
                context: "DenyReason",
                tag,
            })
        }
    })
}

fn put_schedule(buf: &mut BytesMut, entries: &[ScheduleEntry]) {
    buf.put_u16(entries.len().min(MAX_SEQ) as u16);
    for e in entries.iter().take(MAX_SEQ) {
        buf.put_u64(e.at_tick);
        buf.put_u8(u8::from(e.turn_on));
    }
}

fn get_schedule(r: &mut Reader<'_>) -> Result<Vec<ScheduleEntry>, WireError> {
    let n = r.seq_len("schedule")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(ScheduleEntry {
            at_tick: r.u64("ScheduleEntry at_tick")?,
            turn_on: r.bool("ScheduleEntry turn_on")?,
        });
    }
    Ok(out)
}

fn put_telemetry_vec(buf: &mut BytesMut, tel: &[TelemetryFrame]) {
    buf.put_u16(tel.len().min(MAX_SEQ) as u16);
    for t in tel.iter().take(MAX_SEQ) {
        put_telemetry(buf, t);
    }
}

fn get_telemetry_vec(r: &mut Reader<'_>) -> Result<Vec<TelemetryFrame>, WireError> {
    let n = r.seq_len("telemetry")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_telemetry(r)?);
    }
    Ok(out)
}

/// Encodes a [`Response`] to bytes.
pub fn encode_response(rsp: &Response) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    match rsp {
        Response::LoginOk { user_token } => {
            buf.put_u8(RSP_LOGIN_OK);
            buf.put_slice(user_token.as_bytes());
        }
        Response::DevTokenIssued { dev_token } => {
            buf.put_u8(RSP_DEVTOKEN);
            buf.put_slice(dev_token.as_bytes());
        }
        Response::BindTokenIssued { bind_token } => {
            buf.put_u8(RSP_BINDTOKEN);
            buf.put_slice(bind_token.as_bytes());
        }
        Response::StatusAccepted { session } => {
            buf.put_u8(RSP_STATUS_ACCEPTED);
            put_option_session(&mut buf, session);
        }
        Response::Bound { session } => {
            buf.put_u8(RSP_BOUND);
            put_option_session(&mut buf, session);
        }
        Response::Unbound => buf.put_u8(RSP_UNBOUND),
        Response::ControlOk {
            schedule,
            telemetry,
        } => {
            buf.put_u8(RSP_CONTROL_OK);
            put_schedule(&mut buf, schedule);
            put_telemetry_vec(&mut buf, telemetry);
        }
        Response::ShadowState { online, bound } => {
            buf.put_u8(RSP_SHADOW);
            buf.put_u8(u8::from(*online));
            buf.put_u8(u8::from(*bound));
        }
        Response::TelemetryPush { dev_id, telemetry } => {
            buf.put_u8(RSP_TEL_PUSH);
            put_dev_id(&mut buf, dev_id);
            put_telemetry_vec(&mut buf, telemetry);
        }
        Response::ControlPush { action, session } => {
            buf.put_u8(RSP_CTRL_PUSH);
            put_action(&mut buf, action);
            put_option_session(&mut buf, session);
        }
        Response::BindingRevoked => buf.put_u8(RSP_REVOKED),
        Response::ShareOk { session, guests } => {
            buf.put_u8(RSP_SHARE_OK);
            put_option_session(&mut buf, session);
            buf.put_u16(*guests);
        }
        Response::RuleSet { count } => {
            buf.put_u8(RSP_RULE_SET);
            buf.put_u16(*count);
        }
        Response::Denied { reason } => {
            buf.put_u8(RSP_DENIED);
            buf.put_u8(deny_to_u8(*reason));
        }
    }
    buf.freeze()
}

/// Decodes a [`Response`] from bytes.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, unknown tags, or trailing bytes.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(bytes);
    let rsp = match r.u8("Response tag")? {
        RSP_LOGIN_OK => Response::LoginOk {
            user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
        },
        RSP_DEVTOKEN => Response::DevTokenIssued {
            dev_token: DevToken::from_bytes(r.bytes16("DevToken")?),
        },
        RSP_BINDTOKEN => Response::BindTokenIssued {
            bind_token: BindToken::from_bytes(r.bytes16("BindToken")?),
        },
        RSP_STATUS_ACCEPTED => Response::StatusAccepted {
            session: get_option_session(&mut r)?,
        },
        RSP_BOUND => Response::Bound {
            session: get_option_session(&mut r)?,
        },
        RSP_UNBOUND => Response::Unbound,
        RSP_CONTROL_OK => Response::ControlOk {
            schedule: get_schedule(&mut r)?,
            telemetry: get_telemetry_vec(&mut r)?,
        },
        RSP_SHADOW => Response::ShadowState {
            online: r.bool("ShadowState online")?,
            bound: r.bool("ShadowState bound")?,
        },
        RSP_TEL_PUSH => Response::TelemetryPush {
            dev_id: get_dev_id(&mut r)?,
            telemetry: get_telemetry_vec(&mut r)?,
        },
        RSP_CTRL_PUSH => Response::ControlPush {
            action: get_action(&mut r)?,
            session: get_option_session(&mut r)?,
        },
        RSP_REVOKED => Response::BindingRevoked,
        RSP_SHARE_OK => Response::ShareOk {
            session: get_option_session(&mut r)?,
            guests: r.u16("ShareOk guests")?,
        },
        RSP_RULE_SET => Response::RuleSet {
            count: r.u16("RuleSet count")?,
        },
        RSP_DENIED => Response::Denied {
            reason: deny_from_u8(r.u8("DenyReason")?)?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                context: "Response",
                tag,
            })
        }
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(rsp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MacAddr;
    use crate::messages::StatusPayload;

    fn sample_dev_id() -> DevId {
        DevId::Mac(MacAddr::from_oui([0xa0, 0xb1, 0xc2], 0x123456))
    }

    #[test]
    fn message_roundtrips() {
        let msgs = vec![
            Message::Login {
                user_id: UserId::new("alice@example.com"),
                user_pw: UserPw::new("s3cret"),
            },
            Message::RequestDevToken {
                user_token: UserToken::from_entropy(42),
            },
            Message::RequestBindToken {
                user_token: UserToken::from_entropy(43),
            },
            Message::Status(StatusPayload {
                auth: StatusAuth::DevToken(DevToken::from_entropy(9)),
                dev_id: sample_dev_id(),
                kind: StatusKind::Register,
                attributes: DeviceAttributes::new("HS100", "1.2.3"),
                session: Some(SessionToken::from_entropy(7)),
                telemetry: vec![
                    TelemetryFrame::PowerMilliwatts(1234),
                    TelemetryFrame::TemperatureMilliC(-2500),
                    TelemetryFrame::LockEvent {
                        locked: true,
                        at_tick: 99,
                    },
                ],
                button_pressed: true,
            }),
            Message::Bind(BindPayload::AclDevice {
                dev_id: DevId::Digits {
                    value: 123456,
                    width: 6,
                },
                user_id: UserId::new("bob"),
                user_pw: UserPw::new("pw"),
            }),
            Message::Bind(BindPayload::Capability {
                bind_token: BindToken::from_entropy(5),
            }),
            Message::Unbind(UnbindPayload::DevIdOnly {
                dev_id: DevId::Uuid(77),
            }),
            Message::Unbind(UnbindPayload::DevIdUserToken {
                dev_id: DevId::Serial {
                    vendor: 3,
                    seq: 1000,
                },
                user_token: UserToken::from_entropy(2),
            }),
            Message::Control {
                dev_id: sample_dev_id(),
                user_token: UserToken::from_entropy(1),
                session: None,
                action: ControlAction::SetSchedule(ScheduleEntry {
                    at_tick: 5,
                    turn_on: false,
                }),
            },
            Message::QueryShadow {
                dev_id: sample_dev_id(),
            },
            Message::Share {
                dev_id: sample_dev_id(),
                user_token: UserToken::from_entropy(8),
                grantee: UserId::new("guest@example.com"),
            },
            Message::Unshare {
                dev_id: sample_dev_id(),
                user_token: UserToken::from_entropy(8),
                grantee: UserId::new("guest@example.com"),
            },
            Message::SetRule {
                user_token: UserToken::from_entropy(9),
                rule: AutomationRule {
                    trigger_dev: sample_dev_id(),
                    trigger: RuleTrigger::TemperatureAbove(30_000),
                    action_dev: DevId::Digits {
                        value: 42,
                        width: 6,
                    },
                    action: ControlAction::TurnOn,
                },
            },
            Message::SetRule {
                user_token: UserToken::from_entropy(9),
                rule: AutomationRule {
                    trigger_dev: sample_dev_id(),
                    trigger: RuleTrigger::AlarmTriggered,
                    action_dev: sample_dev_id(),
                    action: ControlAction::TurnOff,
                },
            },
        ];
        for msg in msgs {
            let bytes = encode_message(&msg);
            let back = decode_message(&bytes).unwrap_or_else(|e| panic!("{msg}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn response_roundtrips() {
        let rsps = vec![
            Response::LoginOk {
                user_token: UserToken::from_entropy(1),
            },
            Response::DevTokenIssued {
                dev_token: DevToken::from_entropy(2),
            },
            Response::BindTokenIssued {
                bind_token: BindToken::from_entropy(3),
            },
            Response::StatusAccepted {
                session: Some(SessionToken::from_entropy(4)),
            },
            Response::Bound { session: None },
            Response::Unbound,
            Response::ControlOk {
                schedule: vec![ScheduleEntry {
                    at_tick: 1,
                    turn_on: true,
                }],
                telemetry: vec![TelemetryFrame::Alarm { triggered: true }],
            },
            Response::ShadowState {
                online: true,
                bound: false,
            },
            Response::TelemetryPush {
                dev_id: sample_dev_id(),
                telemetry: vec![TelemetryFrame::Motion { confidence: 80 }],
            },
            Response::ControlPush {
                action: ControlAction::TurnOn,
                session: None,
            },
            Response::BindingRevoked,
            Response::ShareOk {
                session: Some(SessionToken::from_entropy(6)),
                guests: 2,
            },
            Response::RuleSet { count: 3 },
            Response::Denied {
                reason: DenyReason::NotBoundUser,
            },
        ];
        for rsp in rsps {
            let bytes = encode_response(&rsp);
            assert_eq!(decode_response(&bytes).unwrap(), rsp);
        }
    }

    #[test]
    fn all_deny_reasons_roundtrip() {
        for v in 0..=13u8 {
            let reason = deny_from_u8(v).unwrap();
            assert_eq!(deny_to_u8(reason), v);
        }
        assert!(deny_from_u8(14).is_err());
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = encode_message(&Message::QueryShadow {
            dev_id: sample_dev_id(),
        })
        .to_vec();
        bytes.push(0xde);
        assert_eq!(
            decode_message(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn decode_rejects_unknown_message_tag() {
        assert_eq!(
            decode_message(&[0xee]),
            Err(WireError::UnknownTag {
                context: "Message",
                tag: 0xee
            })
        );
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let full = encode_message(&Message::Status(StatusPayload::register(
            StatusAuth::DevId(sample_dev_id()),
            sample_dev_id(),
            DeviceAttributes::new("model", "fw"),
        )));
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..full.len() {
            assert!(
                decode_message(&full[..cut]).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_invalid_digit_width() {
        // Hand-craft a Digits DevId with width 12 inside a QueryShadow.
        let mut buf = vec![MSG_QUERY_SHADOW, DEVID_DIGITS];
        buf.extend_from_slice(&123u32.to_be_bytes());
        buf.push(12);
        assert_eq!(
            decode_message(&buf),
            Err(WireError::ValueOutOfRange {
                context: "DevId::Digits width"
            })
        );
    }

    #[test]
    fn decode_rejects_bad_bool() {
        // ShadowState with online = 7.
        let buf = [RSP_SHADOW, 7, 0];
        assert!(matches!(
            decode_response(&buf),
            Err(WireError::UnknownTag {
                context: "ShadowState online",
                tag: 7
            })
        ));
    }

    #[test]
    fn oversized_string_is_rejected() {
        let mut buf = vec![MSG_LOGIN];
        buf.extend_from_slice(&(MAX_STR as u16 + 1).to_be_bytes());
        assert!(matches!(
            decode_message(&buf),
            Err(WireError::LengthOutOfRange { .. })
        ));
    }

    #[test]
    fn forged_message_is_bit_identical_to_honest_one() {
        // The essence of the paper's attacks: a forged Bind with the victim's
        // DevId is indistinguishable on the wire from the app's own.
        let victim_id = sample_dev_id();
        let attacker_token = UserToken::from_entropy(0xbad);
        let honest = encode_message(&Message::Bind(BindPayload::AclApp {
            dev_id: victim_id.clone(),
            user_token: attacker_token,
        }));
        let forged = encode_message(&Message::Bind(BindPayload::AclApp {
            dev_id: victim_id,
            user_token: attacker_token,
        }));
        assert_eq!(honest, forged);
    }
}
