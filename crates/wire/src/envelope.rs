//! Request/response envelopes with correlation ids.
//!
//! The network simulator delivers opaque byte payloads; an [`Envelope`] adds
//! the correlation id that lets a party match a [`Response`] to the
//! [`Message`] it sent, and a direction discriminator so one byte stream can
//! carry both.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::codec::{decode_message, decode_response, encode_message, encode_response, CodecKind};
use crate::error::WireError;
use crate::messages::{Message, Response};

/// Correlation id matching responses to requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CorrId(pub u64);

/// A framed request or response travelling over the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// A party → cloud request.
    Request {
        /// Correlation id chosen by the sender.
        corr: CorrId,
        /// The request body.
        msg: Message,
    },
    /// A cloud → party response or unsolicited push.
    Response {
        /// Correlation id of the request being answered; pushes use
        /// `CorrId(0)`.
        corr: CorrId,
        /// The response body.
        rsp: Response,
    },
}

const DIR_REQUEST: u8 = 0x01;
const DIR_RESPONSE: u8 = 0x02;

impl Envelope {
    /// Correlation id of the envelope.
    pub fn corr(&self) -> CorrId {
        match self {
            Envelope::Request { corr, .. } | Envelope::Response { corr, .. } => *corr,
        }
    }

    /// Wraps a push (unsolicited response) with the conventional zero
    /// correlation id.
    pub fn push(rsp: Response) -> Self {
        Envelope::Response {
            corr: CorrId(0),
            rsp,
        }
    }

    /// Whether the envelope is an unsolicited push.
    pub fn is_push(&self) -> bool {
        matches!(
            self,
            Envelope::Response {
                corr: CorrId(0),
                ..
            }
        )
    }

    /// Serializes the envelope.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        match self {
            Envelope::Request { corr, msg } => {
                buf.put_u8(DIR_REQUEST);
                buf.put_u64(corr.0);
                buf.put_slice(&encode_message(msg));
            }
            Envelope::Response { corr, rsp } => {
                buf.put_u8(DIR_RESPONSE);
                buf.put_u64(corr.0);
                buf.put_slice(&encode_response(rsp));
            }
        }
        buf.freeze()
    }

    /// Deserializes an envelope.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is malformed.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 9 {
            return Err(WireError::Truncated {
                context: "Envelope header",
            });
        }
        let dir = bytes[0];
        let Ok(corr_bytes) = <[u8; 8]>::try_from(&bytes[1..9]) else {
            return Err(WireError::Truncated {
                context: "Envelope header",
            });
        };
        let corr = CorrId(u64::from_be_bytes(corr_bytes));
        let body = &bytes[9..];
        match dir {
            DIR_REQUEST => Ok(Envelope::Request {
                corr,
                msg: decode_message(body)?,
            }),
            DIR_RESPONSE => Ok(Envelope::Response {
                corr,
                rsp: decode_response(body)?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "Envelope direction",
                tag,
            }),
        }
    }

    /// Serializes the envelope with the given codec.
    ///
    /// `CodecKind::Classic` produces the same bytes as [`Envelope::encode`].
    pub fn encode_with(&self, kind: CodecKind) -> Bytes {
        kind.codec().encode_envelope(self)
    }

    /// Deserializes an envelope with the given codec.
    ///
    /// Zero-copy codecs borrow string fields from `bytes`, so the caller
    /// hands over the shared buffer rather than a plain slice.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is malformed for that codec.
    pub fn decode_with(kind: CodecKind, bytes: &Bytes) -> Result<Self, WireError> {
        kind.codec().decode_envelope(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{DevId, MacAddr};
    use crate::messages::Message;

    fn dev_id() -> DevId {
        DevId::Mac(MacAddr::new([9, 8, 7, 6, 5, 4]))
    }

    #[test]
    fn request_roundtrip() {
        let env = Envelope::Request {
            corr: CorrId(77),
            msg: Message::QueryShadow { dev_id: dev_id() },
        };
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
        assert_eq!(env.corr(), CorrId(77));
        assert!(!env.is_push());
    }

    #[test]
    fn response_roundtrip_and_push() {
        let env = Envelope::push(Response::BindingRevoked);
        assert!(env.is_push());
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);

        let answered = Envelope::Response {
            corr: CorrId(3),
            rsp: Response::Unbound,
        };
        assert!(!answered.is_push());
        assert_eq!(Envelope::decode(&answered.encode()).unwrap(), answered);
    }

    #[test]
    fn encode_with_dispatches_per_codec() {
        let env = Envelope::Request {
            corr: CorrId(12),
            msg: Message::QueryShadow { dev_id: dev_id() },
        };
        // Classic via the trait is byte-identical to the inherent encoding.
        assert_eq!(env.encode_with(CodecKind::Classic), env.encode());
        for kind in CodecKind::ALL {
            let bytes = env.encode_with(kind);
            assert_eq!(Envelope::decode_with(kind, &bytes).unwrap(), env);
        }
    }

    #[test]
    fn short_frames_fail_cleanly() {
        for len in 0..9 {
            let buf = vec![DIR_REQUEST; len];
            assert!(Envelope::decode(&buf).is_err());
        }
    }

    #[test]
    fn unknown_direction_fails() {
        let mut buf = vec![0x55];
        buf.extend_from_slice(&0u64.to_be_bytes());
        assert!(matches!(
            Envelope::decode(&buf),
            Err(WireError::UnknownTag {
                context: "Envelope direction",
                tag: 0x55
            })
        ));
    }
}
