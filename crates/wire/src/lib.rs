//! # rb-wire
//!
//! Wire-level vocabulary for IoT remote binding, following the notation of
//! *"Your IoTs Are (Not) Mine: On the Remote Binding Between IoT Devices and
//! Users"* (DSN 2019), Table I:
//!
//! | Notation    | Meaning                                               |
//! |-------------|-------------------------------------------------------|
//! | `Status`    | messages reporting device status (sent by the device) |
//! | `Bind`      | messages creating bindings in the cloud               |
//! | `Unbind`    | messages revoking bindings in the cloud               |
//! | `DevId`     | a piece of *definite* data for device authentication  |
//! | `DevToken`  | a piece of *random* data for device authentication    |
//! | `BindToken` | a piece of random data authorizing binding creation   |
//! | `UserToken` | a piece of random data for user authentication        |
//! | `UserId`    | identifier (e.g. email address) of a user account     |
//! | `UserPw`    | password of a user account                            |
//!
//! The crate provides:
//!
//! * newtyped identifiers and credentials ([`ids`], [`tokens`]) so the type
//!   system mirrors the paper's notation,
//! * the primitive message vocabulary exchanged between device, app, and
//!   cloud ([`messages`]),
//! * request/response envelopes with correlation ids ([`envelope`]),
//! * a pluggable [`codec::Codec`] trait with two interchangeable binary wire
//!   formats — the self-describing big-endian classic format
//!   ([`codec::ClassicCodec`]) and a varint/TLV format with zero-copy decode
//!   ([`compact::CompactCodec`]) — so that "forging a message" in the attack
//!   crates means constructing real bytes, exactly as the paper's authors did
//!   with Postman and raw sockets. See `WIRE-FORMAT.md` for the byte-level
//!   specification of both formats.
//!
//! # Example
//!
//! ```rust
//! use rb_wire::ids::{DevId, MacAddr};
//! use rb_wire::tokens::UserToken;
//! use rb_wire::messages::{BindPayload, Message};
//! use rb_wire::codec::{decode_message, encode_message};
//!
//! # fn main() -> Result<(), rb_wire::WireError> {
//! let dev_id = DevId::Mac(MacAddr::new([0x94, 0x10, 0x3e, 0x01, 0x02, 0x03]));
//! let bind = Message::Bind(BindPayload::AclApp {
//!     dev_id: dev_id.clone(),
//!     user_token: UserToken::from_bytes([7u8; 16]),
//! });
//! let bytes = encode_message(&bind);
//! assert_eq!(decode_message(&bytes)?, bind);
//! # Ok(())
//! # }
//! ```

pub mod bytestr;
pub mod codec;
pub mod compact;
pub mod crypto;
pub mod envelope;
pub mod error;
pub mod ids;
pub mod messages;
pub mod telemetry;
pub mod tokens;

pub use error::WireError;
