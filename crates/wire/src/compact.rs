//! [`CompactCodec`]: the varint/TLV binary wire format with zero-copy
//! decode.
//!
//! The classic format spends bytes freely — fixed-width big-endian
//! integers, `u16` length prefixes — and its decoder allocates a fresh
//! `String` for every text field. This module implements the second
//! format behind the [`Codec`] trait (full byte-level specification in
//! `WIRE-FORMAT.md` §3):
//!
//! * **varints** — unsigned LEB128, canonical (overlong encodings are
//!   rejected), zigzag for signed values;
//! * **positional required fields** — fields a message cannot exist
//!   without are written back-to-back in a fixed order, with no per-field
//!   header;
//! * **TLV tail for defaultable fields** — options, booleans, strings
//!   with a default, and sequences follow as `field id (u8) · varint
//!   length · value` entries with strictly ascending ids; a field equal
//!   to its default (absent option, `false`, empty string/sequence) is
//!   omitted entirely, so the common heartbeat costs nothing for the
//!   fields it does not use;
//! * **zero-copy decode** — string fields are returned as
//!   [`crate::bytestr::ByteStr`] sub-slices of the arriving
//!   packet's [`Bytes`] buffer: a refcount bump, not an allocation.
//!
//! The message/response tag bytes are shared with the classic format; the
//! envelope direction bytes differ (`0xC1`/`0xC2` vs `0x01`/`0x02`) so a
//! frame decoded with the wrong codec fails loudly instead of
//! misparsing.
//!
//! ```rust
//! use rb_wire::codec::Codec;
//! use rb_wire::compact::CompactCodec;
//! use rb_wire::envelope::{CorrId, Envelope};
//! use rb_wire::messages::Message;
//! use rb_wire::tokens::{UserId, UserPw};
//!
//! # fn main() -> Result<(), rb_wire::WireError> {
//! let env = Envelope::Request {
//!     corr: CorrId(1),
//!     msg: Message::Login {
//!         user_id: UserId::new("alice@example.com"),
//!         user_pw: UserPw::new("s3cret"),
//!     },
//! };
//! let packet = CompactCodec.encode_envelope(&env);
//! // Decoding borrows the packet: the user id above comes back as a
//! // sub-slice of `packet`, not a fresh allocation.
//! assert_eq!(CompactCodec.decode_envelope(&packet)?, env);
//! # Ok(())
//! # }
//! ```

use bytes::Bytes;

use crate::bytestr::ByteStr;
use crate::codec::{
    deny_from_u8, deny_to_u8, Codec, ACT_BRIGHT, ACT_OFF, ACT_ON, ACT_QUERY_SCHED, ACT_QUERY_TEL,
    ACT_SET_SCHED, AUTH_DEVID, AUTH_DEVTOKEN, AUTH_PUBKEY, BIND_ACL_APP, BIND_ACL_DEVICE,
    BIND_CAPABILITY, DEVID_DIGITS, DEVID_MAC, DEVID_SERIAL, DEVID_UUID, MAX_SEQ, MAX_STR, MSG_BIND,
    MSG_CONTROL, MSG_LOGIN, MSG_QUERY_SHADOW, MSG_REQ_BINDTOKEN, MSG_REQ_DEVTOKEN, MSG_SET_RULE,
    MSG_SHARE, MSG_STATUS, MSG_UNBIND, MSG_UNSHARE, RSP_BINDTOKEN, RSP_BOUND, RSP_CONTROL_OK,
    RSP_CTRL_PUSH, RSP_DENIED, RSP_DEVTOKEN, RSP_LOGIN_OK, RSP_REVOKED, RSP_RULE_SET, RSP_SHADOW,
    RSP_SHARE_OK, RSP_STATUS_ACCEPTED, RSP_TEL_PUSH, RSP_UNBOUND, TEL_ALARM, TEL_BRIGHT, TEL_LOCK,
    TEL_MOTION, TEL_POWER, TEL_SWITCH, TEL_TEMP, TRG_ALARM, TRG_MOTION, TRG_POWER, TRG_TEMP_ABOVE,
    TRG_TEMP_BELOW, UNBIND_ID_ONLY, UNBIND_ID_TOKEN,
};
use crate::envelope::{CorrId, Envelope};
use crate::error::WireError;
use crate::ids::{DevId, MacAddr};
use crate::messages::{
    AutomationRule, BindPayload, ControlAction, DeviceAttributes, Message, Response, StatusAuth,
    StatusKind, StatusPayload, UnbindPayload,
};
use crate::telemetry::{RuleTrigger, ScheduleEntry, TelemetryFrame};
use crate::tokens::{BindToken, DevToken, SessionToken, UserId, UserPw, UserToken};

/// Compact envelope direction byte: request.
pub(crate) const CDIR_REQUEST: u8 = 0xC1;
/// Compact envelope direction byte: response.
pub(crate) const CDIR_RESPONSE: u8 = 0xC2;

// ---------------------------------------------------------------------------
// Varints.
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i32) -> u64 {
    u64::from(((v << 1) ^ (v >> 31)) as u32)
}

fn unzigzag(n: u64) -> i32 {
    let n = n as u32;
    ((n >> 1) as i32) ^ -((n & 1) as i32)
}

// ---------------------------------------------------------------------------
// The zero-copy reader: a cursor over the packet's shared buffer.
// ---------------------------------------------------------------------------

struct CReader<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl<'a> CReader<'a> {
    fn new(buf: &'a Bytes) -> Self {
        CReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(WireError::Truncated { context });
        };
        self.pos += 1;
        Ok(b)
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }

    /// Canonical LEB128: overlong encodings (a multi-byte encoding whose
    /// final group is zero, or one overflowing 64 bits) are rejected.
    fn varint(&mut self, context: &'static str) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        let mut len = 0u32;
        loop {
            let b = self.u8(context)?;
            len += 1;
            let group = u64::from(b & 0x7f);
            if shift == 63 && group > 1 {
                return Err(WireError::ValueOutOfRange { context });
            }
            value |= group << shift;
            if b & 0x80 == 0 {
                if len > 1 && group == 0 {
                    return Err(WireError::ValueOutOfRange { context });
                }
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::ValueOutOfRange { context });
            }
        }
    }

    fn varint_max(&mut self, context: &'static str, max: u64) -> Result<u64, WireError> {
        let v = self.varint(context)?;
        if v > max {
            return Err(WireError::ValueOutOfRange { context });
        }
        Ok(v)
    }

    fn zigzag_i32(&mut self, context: &'static str) -> Result<i32, WireError> {
        Ok(unzigzag(self.varint_max(context, u64::from(u32::MAX))?))
    }

    fn bytes16(&mut self, context: &'static str) -> Result<[u8; 16], WireError> {
        if self.remaining() < 16 {
            return Err(WireError::Truncated { context });
        }
        let mut out = [0u8; 16];
        out.copy_from_slice(&self.buf[self.pos..self.pos + 16]);
        self.pos += 16;
        Ok(out)
    }

    /// Slices `len` bytes out of the shared buffer — a refcount bump.
    fn take(&mut self, len: usize, context: &'static str) -> Result<Bytes, WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated { context });
        }
        let out = self.buf.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(out)
    }

    /// A length-prefixed UTF-8 string, borrowed from the packet buffer.
    fn string(&mut self, context: &'static str) -> Result<ByteStr, WireError> {
        let len = self.varint(context)?;
        if len > MAX_STR as u64 {
            return Err(WireError::LengthOutOfRange {
                context,
                len: usize::try_from(len).unwrap_or(usize::MAX),
                max: MAX_STR,
            });
        }
        let bytes = self.take(len as usize, context)?;
        ByteStr::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8 { context })
    }

    fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// TLV tails.
// ---------------------------------------------------------------------------

/// Streaming TLV cursor over a message's defaultable tail: fields must
/// appear in strictly ascending id order, so decoding is a single forward
/// pass with one header of lookahead and no per-message bookkeeping
/// allocation.
struct Fields<'a> {
    r: CReader<'a>,
    pending: Option<(u8, Bytes)>,
    last_id: u16,
    context: &'static str,
}

impl<'a> Fields<'a> {
    fn new(r: CReader<'a>, context: &'static str) -> Result<Self, WireError> {
        let mut fields = Fields {
            r,
            pending: None,
            last_id: 0,
            context,
        };
        fields.advance()?;
        Ok(fields)
    }

    fn advance(&mut self) -> Result<(), WireError> {
        if self.r.remaining() == 0 {
            self.pending = None;
            return Ok(());
        }
        let id = self.r.u8("TLV field id")?;
        if u16::from(id) <= self.last_id {
            return Err(WireError::ValueOutOfRange {
                context: "TLV field id order",
            });
        }
        self.last_id = u16::from(id);
        let len = self.r.varint("TLV field length")?;
        let len = usize::try_from(len).map_err(|_| WireError::LengthOutOfRange {
            context: "TLV field length",
            len: usize::MAX,
            max: MAX_STR.max(MAX_SEQ),
        })?;
        let value = self.r.take(len, "TLV field value")?;
        self.pending = Some((id, value));
        Ok(())
    }

    /// Consumes the next field if it carries `id`.
    fn take(&mut self, id: u8) -> Result<Option<Bytes>, WireError> {
        let matches = matches!(self.pending, Some((pid, _)) if pid == id);
        if matches {
            if let Some((_, value)) = self.pending.take() {
                self.advance()?;
                return Ok(Some(value));
            }
        }
        Ok(None)
    }

    /// All expected fields have been taken; anything left is unknown.
    fn finish(self) -> Result<(), WireError> {
        match self.pending {
            None => Ok(()),
            Some((id, _)) => Err(WireError::UnknownTag {
                context: self.context,
                tag: id,
            }),
        }
    }
}

/// Parses one tail-field value with a sub-reader that must consume it
/// fully.
fn value<T>(
    bytes: &Bytes,
    parse: impl FnOnce(&mut CReader<'_>) -> Result<T, WireError>,
) -> Result<T, WireError> {
    let mut r = CReader::new(bytes);
    let v = parse(&mut r)?;
    r.expect_end()?;
    Ok(v)
}

/// A whole-value UTF-8 string, borrowed from the packet buffer.
fn str_value(bytes: Bytes, context: &'static str) -> Result<ByteStr, WireError> {
    if bytes.len() > MAX_STR {
        return Err(WireError::LengthOutOfRange {
            context,
            len: bytes.len(),
            max: MAX_STR,
        });
    }
    ByteStr::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8 { context })
}

fn session_field(
    f: &mut Fields<'_>,
    id: u8,
    context: &'static str,
) -> Result<Option<SessionToken>, WireError> {
    match f.take(id)? {
        None => Ok(None),
        Some(v) => Ok(Some(SessionToken::from_bytes(value(&v, |r| {
            r.bytes16(context)
        })?))),
    }
}

fn bool_field(f: &mut Fields<'_>, id: u8, context: &'static str) -> Result<bool, WireError> {
    match f.take(id)? {
        None => Ok(false),
        Some(v) => value(&v, |r| r.bool(context)),
    }
}

fn str_field(f: &mut Fields<'_>, id: u8, context: &'static str) -> Result<ByteStr, WireError> {
    match f.take(id)? {
        None => Ok(ByteStr::default()),
        Some(v) => str_value(v, context),
    }
}

fn telemetry_field(f: &mut Fields<'_>, id: u8) -> Result<Vec<TelemetryFrame>, WireError> {
    match f.take(id)? {
        None => Ok(Vec::new()),
        Some(v) => value(&v, get_telemetry_vec),
    }
}

// ---------------------------------------------------------------------------
// The writer.
// ---------------------------------------------------------------------------

/// Encoder state: the output buffer plus one reusable scratch buffer for
/// computing TLV tail-field lengths (the only allocations an encode
/// performs).
struct W {
    out: Vec<u8>,
    scratch: Vec<u8>,
}

impl W {
    fn with_capacity(cap: usize) -> Self {
        W {
            out: Vec::with_capacity(cap),
            scratch: Vec::new(),
        }
    }

    fn field_with(&mut self, id: u8, write: impl FnOnce(&mut Vec<u8>)) {
        self.scratch.clear();
        write(&mut self.scratch);
        self.out.push(id);
        put_varint(&mut self.out, self.scratch.len() as u64);
        self.out.extend_from_slice(&self.scratch);
    }

    fn field_bytes(&mut self, id: u8, bytes: &[u8]) {
        self.out.push(id);
        put_varint(&mut self.out, bytes.len() as u64);
        self.out.extend_from_slice(bytes);
    }

    /// Empty strings are omitted (decode restores the default).
    fn field_str(&mut self, id: u8, s: &str) {
        if !s.is_empty() {
            let cut = s.len().min(MAX_STR);
            self.field_bytes(id, &s.as_bytes()[..cut]);
        }
    }

    /// `false` is omitted (decode restores the default).
    fn field_bool(&mut self, id: u8, v: bool) {
        if v {
            self.field_bytes(id, &[1]);
        }
    }

    fn field_session(&mut self, id: u8, session: &Option<SessionToken>) {
        if let Some(t) = session {
            self.field_bytes(id, t.as_bytes());
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let cut = s.len().min(MAX_STR);
    let bytes = &s.as_bytes()[..cut];
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

// ---------------------------------------------------------------------------
// Positional sub-encodings.
// ---------------------------------------------------------------------------

fn put_dev_id(out: &mut Vec<u8>, id: &DevId) {
    match id {
        DevId::Mac(mac) => {
            out.push(DEVID_MAC);
            out.extend_from_slice(&mac.octets());
        }
        DevId::Serial { vendor, seq } => {
            out.push(DEVID_SERIAL);
            put_varint(out, u64::from(*vendor));
            put_varint(out, *seq);
        }
        DevId::Digits { value, width } => {
            out.push(DEVID_DIGITS);
            put_varint(out, u64::from(*value));
            out.push(*width);
        }
        DevId::Uuid(u) => {
            out.push(DEVID_UUID);
            out.extend_from_slice(&u.to_be_bytes());
        }
    }
}

fn get_dev_id(r: &mut CReader<'_>) -> Result<DevId, WireError> {
    match r.u8("DevId tag")? {
        DEVID_MAC => {
            let mut octets = [0u8; 6];
            for b in &mut octets {
                *b = r.u8("DevId::Mac")?;
            }
            Ok(DevId::Mac(MacAddr::new(octets)))
        }
        DEVID_SERIAL => Ok(DevId::Serial {
            vendor: r.varint_max("DevId::Serial vendor", u64::from(u16::MAX))? as u16,
            seq: r.varint("DevId::Serial seq")?,
        }),
        DEVID_DIGITS => {
            let id = DevId::Digits {
                value: r.varint_max("DevId::Digits value", u64::from(u32::MAX))? as u32,
                width: r.u8("DevId::Digits width")?,
            };
            id.validate()?;
            Ok(id)
        }
        DEVID_UUID => Ok(DevId::Uuid(u128::from_be_bytes(r.bytes16("DevId::Uuid")?))),
        tag => Err(WireError::UnknownTag {
            context: "DevId",
            tag,
        }),
    }
}

fn put_status_auth(out: &mut Vec<u8>, auth: &StatusAuth) {
    match auth {
        StatusAuth::DevToken(t) => {
            out.push(AUTH_DEVTOKEN);
            out.extend_from_slice(t.as_bytes());
        }
        StatusAuth::DevId(id) => {
            out.push(AUTH_DEVID);
            put_dev_id(out, id);
        }
        StatusAuth::PublicKey { key_id, signature } => {
            out.push(AUTH_PUBKEY);
            put_varint(out, *key_id);
            out.extend_from_slice(&signature.to_be_bytes());
        }
    }
}

fn get_status_auth(r: &mut CReader<'_>) -> Result<StatusAuth, WireError> {
    match r.u8("StatusAuth tag")? {
        AUTH_DEVTOKEN => Ok(StatusAuth::DevToken(DevToken::from_bytes(
            r.bytes16("DevToken")?,
        ))),
        AUTH_DEVID => Ok(StatusAuth::DevId(get_dev_id(r)?)),
        AUTH_PUBKEY => Ok(StatusAuth::PublicKey {
            key_id: r.varint("PublicKey key_id")?,
            signature: u128::from_be_bytes(r.bytes16("PublicKey signature")?),
        }),
        tag => Err(WireError::UnknownTag {
            context: "StatusAuth",
            tag,
        }),
    }
}

fn put_telemetry(out: &mut Vec<u8>, t: &TelemetryFrame) {
    match t {
        TelemetryFrame::PowerMilliwatts(mw) => {
            out.push(TEL_POWER);
            put_varint(out, *mw);
        }
        TelemetryFrame::TemperatureMilliC(c) => {
            out.push(TEL_TEMP);
            put_varint(out, zigzag(*c));
        }
        TelemetryFrame::SwitchState { on } => {
            out.push(TEL_SWITCH);
            out.push(u8::from(*on));
        }
        TelemetryFrame::Brightness(b) => {
            out.push(TEL_BRIGHT);
            out.push(*b);
        }
        TelemetryFrame::LockEvent { locked, at_tick } => {
            out.push(TEL_LOCK);
            out.push(u8::from(*locked));
            put_varint(out, *at_tick);
        }
        TelemetryFrame::Motion { confidence } => {
            out.push(TEL_MOTION);
            out.push(*confidence);
        }
        TelemetryFrame::Alarm { triggered } => {
            out.push(TEL_ALARM);
            out.push(u8::from(*triggered));
        }
    }
}

fn get_telemetry(r: &mut CReader<'_>) -> Result<TelemetryFrame, WireError> {
    match r.u8("TelemetryFrame tag")? {
        TEL_POWER => Ok(TelemetryFrame::PowerMilliwatts(r.varint("Power")?)),
        TEL_TEMP => Ok(TelemetryFrame::TemperatureMilliC(
            r.zigzag_i32("Temperature")?,
        )),
        TEL_SWITCH => Ok(TelemetryFrame::SwitchState {
            on: r.bool("SwitchState")?,
        }),
        TEL_BRIGHT => Ok(TelemetryFrame::Brightness(r.u8("Brightness")?)),
        TEL_LOCK => Ok(TelemetryFrame::LockEvent {
            locked: r.bool("LockEvent locked")?,
            at_tick: r.varint("LockEvent at_tick")?,
        }),
        TEL_MOTION => Ok(TelemetryFrame::Motion {
            confidence: r.u8("Motion")?,
        }),
        TEL_ALARM => Ok(TelemetryFrame::Alarm {
            triggered: r.bool("Alarm")?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "TelemetryFrame",
            tag,
        }),
    }
}

fn put_telemetry_vec(out: &mut Vec<u8>, tel: &[TelemetryFrame]) {
    put_varint(out, tel.len().min(MAX_SEQ) as u64);
    for t in tel.iter().take(MAX_SEQ) {
        put_telemetry(out, t);
    }
}

fn get_telemetry_vec(r: &mut CReader<'_>) -> Result<Vec<TelemetryFrame>, WireError> {
    let n = r.varint_max("telemetry", MAX_SEQ as u64)? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(get_telemetry(r)?);
    }
    Ok(out)
}

fn put_schedule_entry(out: &mut Vec<u8>, e: &ScheduleEntry) {
    put_varint(out, e.at_tick);
    out.push(u8::from(e.turn_on));
}

fn get_schedule_entry(r: &mut CReader<'_>) -> Result<ScheduleEntry, WireError> {
    Ok(ScheduleEntry {
        at_tick: r.varint("ScheduleEntry at_tick")?,
        turn_on: r.bool("ScheduleEntry turn_on")?,
    })
}

fn put_schedule_vec(out: &mut Vec<u8>, entries: &[ScheduleEntry]) {
    put_varint(out, entries.len().min(MAX_SEQ) as u64);
    for e in entries.iter().take(MAX_SEQ) {
        put_schedule_entry(out, e);
    }
}

fn get_schedule_vec(r: &mut CReader<'_>) -> Result<Vec<ScheduleEntry>, WireError> {
    let n = r.varint_max("schedule", MAX_SEQ as u64)? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(get_schedule_entry(r)?);
    }
    Ok(out)
}

fn put_action(out: &mut Vec<u8>, a: &ControlAction) {
    match a {
        ControlAction::TurnOn => out.push(ACT_ON),
        ControlAction::TurnOff => out.push(ACT_OFF),
        ControlAction::SetBrightness(b) => {
            out.push(ACT_BRIGHT);
            out.push(*b);
        }
        ControlAction::SetSchedule(e) => {
            out.push(ACT_SET_SCHED);
            put_schedule_entry(out, e);
        }
        ControlAction::QuerySchedule => out.push(ACT_QUERY_SCHED),
        ControlAction::QueryTelemetry => out.push(ACT_QUERY_TEL),
    }
}

fn get_action(r: &mut CReader<'_>) -> Result<ControlAction, WireError> {
    match r.u8("ControlAction tag")? {
        ACT_ON => Ok(ControlAction::TurnOn),
        ACT_OFF => Ok(ControlAction::TurnOff),
        ACT_BRIGHT => Ok(ControlAction::SetBrightness(r.u8("Brightness")?)),
        ACT_SET_SCHED => Ok(ControlAction::SetSchedule(get_schedule_entry(r)?)),
        ACT_QUERY_SCHED => Ok(ControlAction::QuerySchedule),
        ACT_QUERY_TEL => Ok(ControlAction::QueryTelemetry),
        tag => Err(WireError::UnknownTag {
            context: "ControlAction",
            tag,
        }),
    }
}

fn put_trigger(out: &mut Vec<u8>, t: &RuleTrigger) {
    match t {
        RuleTrigger::TemperatureAbove(v) => {
            out.push(TRG_TEMP_ABOVE);
            put_varint(out, zigzag(*v));
        }
        RuleTrigger::TemperatureBelow(v) => {
            out.push(TRG_TEMP_BELOW);
            put_varint(out, zigzag(*v));
        }
        RuleTrigger::AlarmTriggered => out.push(TRG_ALARM),
        RuleTrigger::MotionAtLeast(c) => {
            out.push(TRG_MOTION);
            out.push(*c);
        }
        RuleTrigger::PowerAbove(p) => {
            out.push(TRG_POWER);
            put_varint(out, *p);
        }
    }
}

fn get_trigger(r: &mut CReader<'_>) -> Result<RuleTrigger, WireError> {
    match r.u8("RuleTrigger tag")? {
        TRG_TEMP_ABOVE => Ok(RuleTrigger::TemperatureAbove(
            r.zigzag_i32("TemperatureAbove")?,
        )),
        TRG_TEMP_BELOW => Ok(RuleTrigger::TemperatureBelow(
            r.zigzag_i32("TemperatureBelow")?,
        )),
        TRG_ALARM => Ok(RuleTrigger::AlarmTriggered),
        TRG_MOTION => Ok(RuleTrigger::MotionAtLeast(r.u8("MotionAtLeast")?)),
        TRG_POWER => Ok(RuleTrigger::PowerAbove(r.varint("PowerAbove")?)),
        tag => Err(WireError::UnknownTag {
            context: "RuleTrigger",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Message encode/decode.
// ---------------------------------------------------------------------------

fn encode_message_into(w: &mut W, msg: &Message) {
    match msg {
        Message::Login { user_id, user_pw } => {
            w.out.push(MSG_LOGIN);
            put_string(&mut w.out, user_id.as_str());
            put_string(&mut w.out, user_pw.expose());
        }
        Message::RequestDevToken { user_token } => {
            w.out.push(MSG_REQ_DEVTOKEN);
            w.out.extend_from_slice(user_token.as_bytes());
        }
        Message::RequestBindToken { user_token } => {
            w.out.push(MSG_REQ_BINDTOKEN);
            w.out.extend_from_slice(user_token.as_bytes());
        }
        Message::Status(s) => {
            w.out.push(MSG_STATUS);
            put_status_auth(&mut w.out, &s.auth);
            put_dev_id(&mut w.out, &s.dev_id);
            w.out.push(match s.kind {
                StatusKind::Register => 0,
                StatusKind::Heartbeat => 1,
            });
            w.field_str(1, &s.attributes.model);
            w.field_str(2, &s.attributes.firmware);
            w.field_session(3, &s.session);
            if !s.telemetry.is_empty() {
                w.field_with(4, |o| put_telemetry_vec(o, &s.telemetry));
            }
            w.field_bool(5, s.button_pressed);
        }
        Message::Bind(b) => {
            w.out.push(MSG_BIND);
            match b {
                BindPayload::AclApp { dev_id, user_token } => {
                    w.out.push(BIND_ACL_APP);
                    put_dev_id(&mut w.out, dev_id);
                    w.out.extend_from_slice(user_token.as_bytes());
                }
                BindPayload::AclDevice {
                    dev_id,
                    user_id,
                    user_pw,
                } => {
                    w.out.push(BIND_ACL_DEVICE);
                    put_dev_id(&mut w.out, dev_id);
                    put_string(&mut w.out, user_id.as_str());
                    put_string(&mut w.out, user_pw.expose());
                }
                BindPayload::Capability { bind_token } => {
                    w.out.push(BIND_CAPABILITY);
                    w.out.extend_from_slice(bind_token.as_bytes());
                }
            }
        }
        Message::Unbind(u) => {
            w.out.push(MSG_UNBIND);
            match u {
                UnbindPayload::DevIdUserToken { dev_id, user_token } => {
                    w.out.push(UNBIND_ID_TOKEN);
                    put_dev_id(&mut w.out, dev_id);
                    w.out.extend_from_slice(user_token.as_bytes());
                }
                UnbindPayload::DevIdOnly { dev_id } => {
                    w.out.push(UNBIND_ID_ONLY);
                    put_dev_id(&mut w.out, dev_id);
                }
            }
        }
        Message::Control {
            dev_id,
            user_token,
            session,
            action,
        } => {
            w.out.push(MSG_CONTROL);
            put_dev_id(&mut w.out, dev_id);
            w.out.extend_from_slice(user_token.as_bytes());
            put_action(&mut w.out, action);
            w.field_session(1, session);
        }
        Message::QueryShadow { dev_id } => {
            w.out.push(MSG_QUERY_SHADOW);
            put_dev_id(&mut w.out, dev_id);
        }
        Message::Share {
            dev_id,
            user_token,
            grantee,
        } => {
            w.out.push(MSG_SHARE);
            put_dev_id(&mut w.out, dev_id);
            w.out.extend_from_slice(user_token.as_bytes());
            put_string(&mut w.out, grantee.as_str());
        }
        Message::Unshare {
            dev_id,
            user_token,
            grantee,
        } => {
            w.out.push(MSG_UNSHARE);
            put_dev_id(&mut w.out, dev_id);
            w.out.extend_from_slice(user_token.as_bytes());
            put_string(&mut w.out, grantee.as_str());
        }
        Message::SetRule { user_token, rule } => {
            w.out.push(MSG_SET_RULE);
            w.out.extend_from_slice(user_token.as_bytes());
            put_dev_id(&mut w.out, &rule.trigger_dev);
            put_trigger(&mut w.out, &rule.trigger);
            put_dev_id(&mut w.out, &rule.action_dev);
            put_action(&mut w.out, &rule.action);
        }
    }
}

fn decode_message_bytes(bytes: &Bytes) -> Result<Message, WireError> {
    let mut r = CReader::new(bytes);
    match r.u8("Message tag")? {
        MSG_LOGIN => {
            let user_id = UserId::from_bytestr(r.string("UserId")?);
            let user_pw = UserPw::from_bytestr(r.string("UserPw")?);
            r.expect_end()?;
            Ok(Message::Login { user_id, user_pw })
        }
        MSG_REQ_DEVTOKEN => {
            let user_token = UserToken::from_bytes(r.bytes16("UserToken")?);
            r.expect_end()?;
            Ok(Message::RequestDevToken { user_token })
        }
        MSG_REQ_BINDTOKEN => {
            let user_token = UserToken::from_bytes(r.bytes16("UserToken")?);
            r.expect_end()?;
            Ok(Message::RequestBindToken { user_token })
        }
        MSG_STATUS => {
            let auth = get_status_auth(&mut r)?;
            let dev_id = get_dev_id(&mut r)?;
            let kind = match r.u8("StatusKind")? {
                0 => StatusKind::Register,
                1 => StatusKind::Heartbeat,
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "StatusKind",
                        tag,
                    })
                }
            };
            let mut f = Fields::new(r, "Status fields")?;
            let model = str_field(&mut f, 1, "attributes.model")?;
            let firmware = str_field(&mut f, 2, "attributes.firmware")?;
            let session = session_field(&mut f, 3, "SessionToken")?;
            let telemetry = telemetry_field(&mut f, 4)?;
            let button_pressed = bool_field(&mut f, 5, "button_pressed")?;
            f.finish()?;
            Ok(Message::Status(StatusPayload {
                auth,
                dev_id,
                kind,
                attributes: DeviceAttributes { model, firmware },
                session,
                telemetry,
                button_pressed,
            }))
        }
        MSG_BIND => {
            let payload = match r.u8("BindPayload tag")? {
                BIND_ACL_APP => BindPayload::AclApp {
                    dev_id: get_dev_id(&mut r)?,
                    user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
                },
                BIND_ACL_DEVICE => BindPayload::AclDevice {
                    dev_id: get_dev_id(&mut r)?,
                    user_id: UserId::from_bytestr(r.string("UserId")?),
                    user_pw: UserPw::from_bytestr(r.string("UserPw")?),
                },
                BIND_CAPABILITY => BindPayload::Capability {
                    bind_token: BindToken::from_bytes(r.bytes16("BindToken")?),
                },
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "BindPayload",
                        tag,
                    })
                }
            };
            r.expect_end()?;
            Ok(Message::Bind(payload))
        }
        MSG_UNBIND => {
            let payload = match r.u8("UnbindPayload tag")? {
                UNBIND_ID_TOKEN => UnbindPayload::DevIdUserToken {
                    dev_id: get_dev_id(&mut r)?,
                    user_token: UserToken::from_bytes(r.bytes16("UserToken")?),
                },
                UNBIND_ID_ONLY => UnbindPayload::DevIdOnly {
                    dev_id: get_dev_id(&mut r)?,
                },
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "UnbindPayload",
                        tag,
                    })
                }
            };
            r.expect_end()?;
            Ok(Message::Unbind(payload))
        }
        MSG_CONTROL => {
            let dev_id = get_dev_id(&mut r)?;
            let user_token = UserToken::from_bytes(r.bytes16("UserToken")?);
            let action = get_action(&mut r)?;
            let mut f = Fields::new(r, "Control fields")?;
            let session = session_field(&mut f, 1, "SessionToken")?;
            f.finish()?;
            Ok(Message::Control {
                dev_id,
                user_token,
                session,
                action,
            })
        }
        MSG_QUERY_SHADOW => {
            let dev_id = get_dev_id(&mut r)?;
            r.expect_end()?;
            Ok(Message::QueryShadow { dev_id })
        }
        MSG_SHARE => {
            let dev_id = get_dev_id(&mut r)?;
            let user_token = UserToken::from_bytes(r.bytes16("UserToken")?);
            let grantee = UserId::from_bytestr(r.string("grantee")?);
            r.expect_end()?;
            Ok(Message::Share {
                dev_id,
                user_token,
                grantee,
            })
        }
        MSG_UNSHARE => {
            let dev_id = get_dev_id(&mut r)?;
            let user_token = UserToken::from_bytes(r.bytes16("UserToken")?);
            let grantee = UserId::from_bytestr(r.string("grantee")?);
            r.expect_end()?;
            Ok(Message::Unshare {
                dev_id,
                user_token,
                grantee,
            })
        }
        MSG_SET_RULE => {
            let user_token = UserToken::from_bytes(r.bytes16("UserToken")?);
            let rule = AutomationRule {
                trigger_dev: get_dev_id(&mut r)?,
                trigger: get_trigger(&mut r)?,
                action_dev: get_dev_id(&mut r)?,
                action: get_action(&mut r)?,
            };
            r.expect_end()?;
            Ok(Message::SetRule { user_token, rule })
        }
        tag => Err(WireError::UnknownTag {
            context: "Message",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Response encode/decode.
// ---------------------------------------------------------------------------

fn encode_response_into(w: &mut W, rsp: &Response) {
    match rsp {
        Response::LoginOk { user_token } => {
            w.out.push(RSP_LOGIN_OK);
            w.out.extend_from_slice(user_token.as_bytes());
        }
        Response::DevTokenIssued { dev_token } => {
            w.out.push(RSP_DEVTOKEN);
            w.out.extend_from_slice(dev_token.as_bytes());
        }
        Response::BindTokenIssued { bind_token } => {
            w.out.push(RSP_BINDTOKEN);
            w.out.extend_from_slice(bind_token.as_bytes());
        }
        Response::StatusAccepted { session } => {
            w.out.push(RSP_STATUS_ACCEPTED);
            w.field_session(1, session);
        }
        Response::Bound { session } => {
            w.out.push(RSP_BOUND);
            w.field_session(1, session);
        }
        Response::Unbound => w.out.push(RSP_UNBOUND),
        Response::ControlOk {
            schedule,
            telemetry,
        } => {
            w.out.push(RSP_CONTROL_OK);
            if !schedule.is_empty() {
                w.field_with(1, |o| put_schedule_vec(o, schedule));
            }
            if !telemetry.is_empty() {
                w.field_with(2, |o| put_telemetry_vec(o, telemetry));
            }
        }
        Response::ShadowState { online, bound } => {
            w.out.push(RSP_SHADOW);
            w.field_bool(1, *online);
            w.field_bool(2, *bound);
        }
        Response::TelemetryPush { dev_id, telemetry } => {
            w.out.push(RSP_TEL_PUSH);
            put_dev_id(&mut w.out, dev_id);
            if !telemetry.is_empty() {
                w.field_with(1, |o| put_telemetry_vec(o, telemetry));
            }
        }
        Response::ControlPush { action, session } => {
            w.out.push(RSP_CTRL_PUSH);
            put_action(&mut w.out, action);
            w.field_session(1, session);
        }
        Response::BindingRevoked => w.out.push(RSP_REVOKED),
        Response::RuleSet { count } => {
            w.out.push(RSP_RULE_SET);
            put_varint(&mut w.out, u64::from(*count));
        }
        Response::ShareOk { session, guests } => {
            w.out.push(RSP_SHARE_OK);
            put_varint(&mut w.out, u64::from(*guests));
            w.field_session(1, session);
        }
        Response::Denied { reason } => {
            w.out.push(RSP_DENIED);
            w.out.push(deny_to_u8(*reason));
        }
    }
}

fn decode_response_bytes(bytes: &Bytes) -> Result<Response, WireError> {
    let mut r = CReader::new(bytes);
    match r.u8("Response tag")? {
        RSP_LOGIN_OK => {
            let user_token = UserToken::from_bytes(r.bytes16("UserToken")?);
            r.expect_end()?;
            Ok(Response::LoginOk { user_token })
        }
        RSP_DEVTOKEN => {
            let dev_token = DevToken::from_bytes(r.bytes16("DevToken")?);
            r.expect_end()?;
            Ok(Response::DevTokenIssued { dev_token })
        }
        RSP_BINDTOKEN => {
            let bind_token = BindToken::from_bytes(r.bytes16("BindToken")?);
            r.expect_end()?;
            Ok(Response::BindTokenIssued { bind_token })
        }
        RSP_STATUS_ACCEPTED => {
            let mut f = Fields::new(r, "StatusAccepted fields")?;
            let session = session_field(&mut f, 1, "SessionToken")?;
            f.finish()?;
            Ok(Response::StatusAccepted { session })
        }
        RSP_BOUND => {
            let mut f = Fields::new(r, "Bound fields")?;
            let session = session_field(&mut f, 1, "SessionToken")?;
            f.finish()?;
            Ok(Response::Bound { session })
        }
        RSP_UNBOUND => {
            r.expect_end()?;
            Ok(Response::Unbound)
        }
        RSP_CONTROL_OK => {
            let mut f = Fields::new(r, "ControlOk fields")?;
            let schedule = match f.take(1)? {
                None => Vec::new(),
                Some(v) => value(&v, get_schedule_vec)?,
            };
            let telemetry = telemetry_field(&mut f, 2)?;
            f.finish()?;
            Ok(Response::ControlOk {
                schedule,
                telemetry,
            })
        }
        RSP_SHADOW => {
            let mut f = Fields::new(r, "ShadowState fields")?;
            let online = bool_field(&mut f, 1, "ShadowState online")?;
            let bound = bool_field(&mut f, 2, "ShadowState bound")?;
            f.finish()?;
            Ok(Response::ShadowState { online, bound })
        }
        RSP_TEL_PUSH => {
            let dev_id = get_dev_id(&mut r)?;
            let mut f = Fields::new(r, "TelemetryPush fields")?;
            let telemetry = telemetry_field(&mut f, 1)?;
            f.finish()?;
            Ok(Response::TelemetryPush { dev_id, telemetry })
        }
        RSP_CTRL_PUSH => {
            let action = get_action(&mut r)?;
            let mut f = Fields::new(r, "ControlPush fields")?;
            let session = session_field(&mut f, 1, "SessionToken")?;
            f.finish()?;
            Ok(Response::ControlPush { action, session })
        }
        RSP_REVOKED => {
            r.expect_end()?;
            Ok(Response::BindingRevoked)
        }
        RSP_RULE_SET => {
            let count = r.varint_max("RuleSet count", u64::from(u16::MAX))? as u16;
            r.expect_end()?;
            Ok(Response::RuleSet { count })
        }
        RSP_SHARE_OK => {
            let guests = r.varint_max("ShareOk guests", u64::from(u16::MAX))? as u16;
            let mut f = Fields::new(r, "ShareOk fields")?;
            let session = session_field(&mut f, 1, "SessionToken")?;
            f.finish()?;
            Ok(Response::ShareOk { session, guests })
        }
        RSP_DENIED => {
            let reason = deny_from_u8(r.u8("DenyReason")?)?;
            r.expect_end()?;
            Ok(Response::Denied { reason })
        }
        tag => Err(WireError::UnknownTag {
            context: "Response",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// The codec.
// ---------------------------------------------------------------------------

/// The varint/TLV wire format with zero-copy decode (`WIRE-FORMAT.md` §3).
///
/// Smaller frames than [`ClassicCodec`](crate::codec::ClassicCodec)
/// (varints, positional required fields, omitted default fields) and an
/// allocation-free decode path for text fields, which borrow the arriving
/// packet's [`Bytes`] buffer. Select it per agent via
/// `set_codec(CodecKind::Compact)` or for a whole simulated world via
/// `WorldBuilder::with_codec`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactCodec;

impl Codec for CompactCodec {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn encode_message(&self, msg: &Message) -> Bytes {
        let mut w = W::with_capacity(64);
        encode_message_into(&mut w, msg);
        Bytes::from(w.out)
    }

    fn decode_message(&self, bytes: &Bytes) -> Result<Message, WireError> {
        decode_message_bytes(bytes)
    }

    fn encode_response(&self, rsp: &Response) -> Bytes {
        let mut w = W::with_capacity(32);
        encode_response_into(&mut w, rsp);
        Bytes::from(w.out)
    }

    fn decode_response(&self, bytes: &Bytes) -> Result<Response, WireError> {
        decode_response_bytes(bytes)
    }

    fn encode_envelope(&self, env: &Envelope) -> Bytes {
        let mut w = W::with_capacity(72);
        match env {
            Envelope::Request { corr, msg } => {
                w.out.push(CDIR_REQUEST);
                put_varint(&mut w.out, corr.0);
                encode_message_into(&mut w, msg);
            }
            Envelope::Response { corr, rsp } => {
                w.out.push(CDIR_RESPONSE);
                put_varint(&mut w.out, corr.0);
                encode_response_into(&mut w, rsp);
            }
        }
        Bytes::from(w.out)
    }

    fn decode_envelope(&self, bytes: &Bytes) -> Result<Envelope, WireError> {
        let mut r = CReader::new(bytes);
        let dir = r.u8("Envelope header")?;
        let corr = CorrId(r.varint("Envelope corr")?);
        let body = bytes.slice(r.pos..);
        match dir {
            CDIR_REQUEST => Ok(Envelope::Request {
                corr,
                msg: decode_message_bytes(&body)?,
            }),
            CDIR_RESPONSE => Ok(Envelope::Response {
                corr,
                rsp: decode_response_bytes(&body)?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "Envelope direction",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::codec::{encode_message, CodecKind};
    use crate::messages::DenyReason;

    fn sample_dev_id() -> DevId {
        DevId::Mac(MacAddr::new([0xa0, 0xb1, 0xc2, 0x12, 0x34, 0x56]))
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Login {
                user_id: UserId::new("alice@example.com"),
                user_pw: UserPw::new("s3cret"),
            },
            Message::Login {
                user_id: UserId::new(""),
                user_pw: UserPw::new(""),
            },
            Message::RequestDevToken {
                user_token: UserToken::from_entropy(42),
            },
            Message::RequestBindToken {
                user_token: UserToken::from_entropy(43),
            },
            Message::Status(StatusPayload {
                auth: StatusAuth::DevToken(DevToken::from_entropy(9)),
                dev_id: sample_dev_id(),
                kind: StatusKind::Register,
                attributes: DeviceAttributes::new("HS100", "1.2.3"),
                session: Some(SessionToken::from_entropy(7)),
                telemetry: vec![
                    TelemetryFrame::PowerMilliwatts(1234),
                    TelemetryFrame::TemperatureMilliC(-2500),
                    TelemetryFrame::LockEvent {
                        locked: true,
                        at_tick: 99,
                    },
                ],
                button_pressed: true,
            }),
            Message::Status(StatusPayload::heartbeat(
                StatusAuth::PublicKey {
                    key_id: 3,
                    signature: u128::MAX,
                },
                DevId::Uuid(u128::MAX - 1),
            )),
            Message::Bind(BindPayload::AclApp {
                dev_id: sample_dev_id(),
                user_token: UserToken::from_entropy(1),
            }),
            Message::Bind(BindPayload::AclDevice {
                dev_id: DevId::Digits {
                    value: 123_456,
                    width: 6,
                },
                user_id: UserId::new("bob"),
                user_pw: UserPw::new("pw"),
            }),
            Message::Bind(BindPayload::Capability {
                bind_token: BindToken::from_entropy(5),
            }),
            Message::Unbind(UnbindPayload::DevIdOnly {
                dev_id: DevId::Uuid(77),
            }),
            Message::Unbind(UnbindPayload::DevIdUserToken {
                dev_id: DevId::Serial {
                    vendor: u16::MAX,
                    seq: u64::MAX,
                },
                user_token: UserToken::from_entropy(2),
            }),
            Message::Control {
                dev_id: sample_dev_id(),
                user_token: UserToken::from_entropy(1),
                session: None,
                action: ControlAction::SetSchedule(ScheduleEntry {
                    at_tick: 5,
                    turn_on: false,
                }),
            },
            Message::QueryShadow {
                dev_id: sample_dev_id(),
            },
            Message::Share {
                dev_id: sample_dev_id(),
                user_token: UserToken::from_entropy(8),
                grantee: UserId::new("guest@example.com"),
            },
            Message::Unshare {
                dev_id: sample_dev_id(),
                user_token: UserToken::from_entropy(8),
                grantee: UserId::new("guest@example.com"),
            },
            Message::SetRule {
                user_token: UserToken::from_entropy(9),
                rule: AutomationRule {
                    trigger_dev: sample_dev_id(),
                    trigger: RuleTrigger::TemperatureAbove(30_000),
                    action_dev: DevId::Digits {
                        value: 42,
                        width: 6,
                    },
                    action: ControlAction::TurnOn,
                },
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::LoginOk {
                user_token: UserToken::from_entropy(1),
            },
            Response::DevTokenIssued {
                dev_token: DevToken::from_entropy(2),
            },
            Response::BindTokenIssued {
                bind_token: BindToken::from_entropy(3),
            },
            Response::StatusAccepted {
                session: Some(SessionToken::from_entropy(4)),
            },
            Response::StatusAccepted { session: None },
            Response::Bound { session: None },
            Response::Unbound,
            Response::ControlOk {
                schedule: vec![ScheduleEntry {
                    at_tick: 1,
                    turn_on: true,
                }],
                telemetry: vec![TelemetryFrame::Alarm { triggered: true }],
            },
            Response::ControlOk {
                schedule: Vec::new(),
                telemetry: Vec::new(),
            },
            Response::ShadowState {
                online: true,
                bound: false,
            },
            Response::ShadowState {
                online: false,
                bound: false,
            },
            Response::TelemetryPush {
                dev_id: sample_dev_id(),
                telemetry: vec![TelemetryFrame::Motion { confidence: 80 }],
            },
            Response::ControlPush {
                action: ControlAction::TurnOn,
                session: None,
            },
            Response::BindingRevoked,
            Response::ShareOk {
                session: Some(SessionToken::from_entropy(6)),
                guests: 2,
            },
            Response::RuleSet { count: 3 },
            Response::Denied {
                reason: DenyReason::NotBoundUser,
            },
        ]
    }

    #[test]
    fn message_roundtrips() {
        for msg in sample_messages() {
            let bytes = CompactCodec.encode_message(&msg);
            let back = CompactCodec
                .decode_message(&bytes)
                .unwrap_or_else(|e| panic!("{msg}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn response_roundtrips() {
        for rsp in sample_responses() {
            let bytes = CompactCodec.encode_response(&rsp);
            let back = CompactCodec
                .decode_response(&bytes)
                .unwrap_or_else(|e| panic!("{rsp}: {e}"));
            assert_eq!(back, rsp);
        }
    }

    #[test]
    fn envelope_roundtrips_and_push() {
        for msg in sample_messages() {
            let env = Envelope::Request {
                corr: CorrId(u64::MAX),
                msg,
            };
            let bytes = CompactCodec.encode_envelope(&env);
            assert_eq!(CompactCodec.decode_envelope(&bytes).unwrap(), env);
        }
        let push = Envelope::push(Response::BindingRevoked);
        let bytes = CompactCodec.encode_envelope(&push);
        let back = CompactCodec.decode_envelope(&bytes).unwrap();
        assert!(back.is_push());
        assert_eq!(back, push);
    }

    #[test]
    fn decoded_strings_borrow_the_packet_buffer() {
        let env = Envelope::Request {
            corr: CorrId(1),
            msg: Message::Login {
                user_id: UserId::new("alice@example.com"),
                user_pw: UserPw::new("hunter2hunter2"),
            },
        };
        let packet = CompactCodec.encode_envelope(&env);
        let decoded = CompactCodec.decode_envelope(&packet).unwrap();
        let Envelope::Request {
            msg: Message::Login { user_id, .. },
            ..
        } = decoded
        else {
            panic!("wrong shape");
        };
        // Zero-copy: the decoded id's bytes live inside the packet buffer.
        let packet_range = packet.as_ptr() as usize..packet.as_ptr() as usize + packet.len();
        let id_ptr = user_id.as_str().as_ptr() as usize;
        assert!(
            packet_range.contains(&id_ptr),
            "decoded UserId must be a sub-slice of the packet"
        );
    }

    #[test]
    fn compact_frames_are_smaller_than_classic_in_aggregate() {
        // Individual worst cases (e.g. a `u64::MAX` serial) can lose to a
        // fixed-width field, but over the representative corpus the varint,
        // positional-field, and omit-default savings dominate.
        let classic: usize = sample_messages()
            .iter()
            .map(|m| encode_message(m).len())
            .sum();
        let compact: usize = sample_messages()
            .iter()
            .map(|m| CompactCodec.encode_message(m).len())
            .sum();
        assert!(compact < classic, "compact {compact} >= classic {classic}");
    }

    #[test]
    fn classic_envelope_is_rejected() {
        let env = Envelope::Request {
            corr: CorrId(5),
            msg: Message::QueryShadow {
                dev_id: sample_dev_id(),
            },
        };
        let classic = env.encode();
        // Classic direction byte 0x01 is not a compact direction.
        assert!(matches!(
            CompactCodec.decode_envelope(&classic),
            Err(WireError::UnknownTag {
                context: "Envelope direction",
                ..
            })
        ));
        // And vice versa: the compact frame fails classic decode.
        let compact = CompactCodec.encode_envelope(&env);
        assert!(Envelope::decode(&compact).is_err());
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // corr = 0 encoded in two bytes (0x80 0x00) is non-canonical.
        let bytes = Bytes::from(vec![CDIR_REQUEST, 0x80, 0x00, MSG_QUERY_SHADOW]);
        assert_eq!(
            CompactCodec.decode_envelope(&bytes),
            Err(WireError::ValueOutOfRange {
                context: "Envelope corr"
            })
        );
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 11 continuation bytes: shifts past 63 bits.
        let mut raw = vec![CDIR_REQUEST];
        raw.extend_from_slice(&[0xff; 10]);
        raw.push(0x01);
        assert_eq!(
            CompactCodec.decode_envelope(&Bytes::from(raw)),
            Err(WireError::ValueOutOfRange {
                context: "Envelope corr"
            })
        );
    }

    #[test]
    fn unknown_tail_field_id_is_rejected() {
        // A Status whose tail carries an unexpected field 9.
        let mut w = W::with_capacity(64);
        w.out.push(MSG_STATUS);
        put_status_auth(&mut w.out, &StatusAuth::DevId(sample_dev_id()));
        put_dev_id(&mut w.out, &sample_dev_id());
        w.out.push(1); // heartbeat
        w.field_bytes(9, &[0]);
        let bytes = Bytes::from(w.out);
        assert_eq!(
            decode_message_bytes(&bytes),
            Err(WireError::UnknownTag {
                context: "Status fields",
                tag: 9
            })
        );
    }

    #[test]
    fn out_of_order_tail_fields_are_rejected() {
        // Status with firmware (2) before model (1): non-canonical order.
        let mut w = W::with_capacity(64);
        w.out.push(MSG_STATUS);
        put_status_auth(&mut w.out, &StatusAuth::DevId(sample_dev_id()));
        put_dev_id(&mut w.out, &sample_dev_id());
        w.out.push(1);
        w.field_str(2, "fw");
        w.field_str(1, "model");
        let bytes = Bytes::from(w.out);
        assert_eq!(
            decode_message_bytes(&bytes),
            Err(WireError::ValueOutOfRange {
                context: "TLV field id order"
            })
        );
    }

    #[test]
    fn missing_required_field_is_truncation() {
        // Control cut off before its action byte.
        let mut w = W::with_capacity(64);
        w.out.push(MSG_CONTROL);
        put_dev_id(&mut w.out, &sample_dev_id());
        w.out
            .extend_from_slice(UserToken::from_entropy(1).as_bytes());
        let bytes = Bytes::from(w.out);
        assert_eq!(
            decode_message_bytes(&bytes),
            Err(WireError::Truncated {
                context: "ControlAction tag"
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // A RequestDevToken with one byte of slack after the token.
        let mut w = W::with_capacity(32);
        w.out.push(MSG_REQ_DEVTOKEN);
        w.out
            .extend_from_slice(UserToken::from_entropy(1).as_bytes());
        w.out.push(0xde);
        let bytes = Bytes::from(w.out);
        assert_eq!(
            decode_message_bytes(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn trailing_bytes_inside_a_tail_value_are_rejected() {
        // A session tail field of 17 bytes: the sub-reader must not leave
        // slack.
        let mut w = W::with_capacity(64);
        w.out.push(RSP_BOUND);
        let mut fat = SessionToken::from_entropy(1).as_bytes().to_vec();
        fat.push(0xde);
        w.field_bytes(1, &fat);
        let bytes = Bytes::from(w.out);
        assert_eq!(
            decode_response_bytes(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn oversized_string_is_rejected() {
        let mut w = W::with_capacity(MAX_STR + 16);
        w.out.push(MSG_LOGIN);
        put_varint(&mut w.out, MAX_STR as u64 + 1);
        w.out.extend_from_slice(&vec![b'a'; MAX_STR + 1]);
        let bytes = Bytes::from(w.out);
        assert!(matches!(
            decode_message_bytes(&bytes),
            Err(WireError::LengthOutOfRange { .. })
        ));
    }

    #[test]
    fn oversized_sequence_count_is_rejected() {
        let mut w = W::with_capacity(64);
        w.out.push(MSG_STATUS);
        put_status_auth(&mut w.out, &StatusAuth::DevId(sample_dev_id()));
        put_dev_id(&mut w.out, &sample_dev_id());
        w.out.push(1);
        w.field_with(4, |o| put_varint(o, MAX_SEQ as u64 + 1));
        let bytes = Bytes::from(w.out);
        assert_eq!(
            decode_message_bytes(&bytes),
            Err(WireError::ValueOutOfRange {
                context: "telemetry"
            })
        );
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = W::with_capacity(16);
        w.out.push(MSG_LOGIN);
        put_varint(&mut w.out, 2);
        w.out.extend_from_slice(&[0xff, 0xfe]);
        let bytes = Bytes::from(w.out);
        assert_eq!(
            decode_message_bytes(&bytes),
            Err(WireError::InvalidUtf8 { context: "UserId" })
        );
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let env = Envelope::Request {
            corr: CorrId(0x0123_4567_89ab),
            msg: Message::Status(StatusPayload {
                auth: StatusAuth::DevId(sample_dev_id()),
                dev_id: sample_dev_id(),
                kind: StatusKind::Register,
                attributes: DeviceAttributes::new("model", "fw"),
                session: Some(SessionToken::from_entropy(1)),
                telemetry: vec![TelemetryFrame::PowerMilliwatts(500)],
                button_pressed: true,
            }),
        };
        let full = CompactCodec.encode_envelope(&env);
        for cut in 0..full.len() {
            let prefix = full.slice(..cut);
            // With omit-default tail fields, a cut at a field boundary can
            // be a valid *shorter* message — but then it must be canonical:
            // it re-encodes to exactly the bytes we decoded. Every other
            // cut must fail cleanly, never panic.
            match CompactCodec.decode_envelope(&prefix) {
                Err(_) => {}
                Ok(decoded) => {
                    assert_eq!(
                        CompactCodec.encode_envelope(&decoded),
                        prefix,
                        "prefix of {cut} bytes decoded non-canonically"
                    );
                }
            }
        }
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, -2500, 30_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn codec_kind_selects_and_names() {
        assert_eq!(CodecKind::Compact.codec().name(), "compact");
        assert_eq!(CodecKind::from_name("compact"), Some(CodecKind::Compact));
        assert_eq!(CodecKind::from_name("classic"), Some(CodecKind::Classic));
        assert_eq!(CodecKind::from_name("protobuf"), None);
        assert_eq!(CodecKind::Compact.to_string(), "compact");
    }
}
