//! Device identifiers and the vendor ID-allocation schemes behind them.
//!
//! The paper's adversary model (Section III-A) rests on how *guessable* and
//! *leakable* device IDs are in practice: MAC addresses expose their 3-byte
//! OUI leaving only 24 bits of entropy, some vendors use 6–7-digit serial
//! numbers enumerable "within an hour", and labels printed on devices or
//! packaging leak through the supply chain. [`DevId`] captures the concrete
//! shapes observed in the wild and [`IdScheme`] captures the allocation
//! policies, so the `rb-attack` crate can quantify search spaces exactly.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::WireError;

/// A 48-bit IEEE 802 MAC address used by several vendors as the device ID.
///
/// The first three bytes are the Organizationally Unique Identifier (OUI):
/// they identify the vendor and are public knowledge, which is why the paper
/// notes "with vendor-specific bytes excluded, the search space of MAC
/// addresses is often within 3 bytes".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// Creates a MAC address from its six raw bytes.
    pub fn new(bytes: [u8; 6]) -> Self {
        MacAddr(bytes)
    }

    /// Builds a MAC address from a vendor OUI and a 24-bit NIC-specific
    /// suffix.
    ///
    /// # Panics
    ///
    /// Panics if `nic` does not fit in 24 bits.
    pub fn from_oui(oui: [u8; 3], nic: u32) -> Self {
        assert!(nic <= 0x00ff_ffff, "nic suffix must fit in 24 bits");
        MacAddr([
            oui[0],
            oui[1],
            oui[2],
            (nic >> 16) as u8,
            (nic >> 8) as u8,
            nic as u8,
        ])
    }

    /// The raw bytes of the address.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// The vendor OUI (first three bytes).
    pub fn oui(&self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// The NIC-specific 24-bit suffix — the only part an attacker who knows
    /// the vendor must guess.
    pub fn nic_suffix(&self) -> u32 {
        ((self.0[3] as u32) << 16) | ((self.0[4] as u32) << 8) | self.0[5] as u32
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// A device identifier (`DevId` in the paper's Table I): "a piece of
/// *definite* data for device authentication".
///
/// Being definite (static) is exactly what makes it unsuitable as an
/// authenticator — it can be inferred, enumerated, or leaked through
/// ownership transfer, yet several of the studied vendors authenticate
/// devices with nothing else.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DevId {
    /// The device's MAC address (vendors #2, #5, #6, #8, #10 style).
    Mac(MacAddr),
    /// A vendor-assigned sequential serial number.
    Serial {
        /// Vendor code embedded in the serial.
        vendor: u16,
        /// Sequential unit number.
        seq: u64,
    },
    /// A short all-digit ID, as found on the insecure cameras and baby
    /// monitors the paper cites (6 or 7 digits).
    Digits {
        /// The numeric value.
        value: u32,
        /// Number of digits (fixed width, zero padded).
        width: u8,
    },
    /// A 128-bit random identifier — large enough that enumeration is
    /// infeasible, though leakage through labels remains possible.
    Uuid(u128),
}

impl DevId {
    /// Validates internal invariants (digit IDs fit their declared width).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::ValueOutOfRange`] if a [`DevId::Digits`] value
    /// does not fit in its width or the width is outside `1..=9`.
    pub fn validate(&self) -> Result<(), WireError> {
        if let DevId::Digits { value, width } = self {
            if *width == 0 || *width > 9 {
                return Err(WireError::ValueOutOfRange {
                    context: "DevId::Digits width",
                });
            }
            if u64::from(*value) >= 10u64.pow(u32::from(*width)) {
                return Err(WireError::ValueOutOfRange {
                    context: "DevId::Digits value",
                });
            }
        }
        Ok(())
    }

    /// A short stable label for logs and tables.
    pub fn short(&self) -> String {
        match self {
            DevId::Mac(m) => format!("mac:{m}"),
            DevId::Serial { vendor, seq } => format!("sn:{vendor:04x}-{seq}"),
            DevId::Digits { value, width } => {
                format!("id:{value:0width$}", width = *width as usize)
            }
            DevId::Uuid(u) => format!("uuid:{u:032x}"),
        }
    }
}

impl fmt::Display for DevId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.short())
    }
}

impl From<MacAddr> for DevId {
    fn from(mac: MacAddr) -> Self {
        DevId::Mac(mac)
    }
}

/// How a vendor allocates device IDs across its product line.
///
/// The scheme determines the attacker's search space (Section III-A); the
/// `rb-attack::idspace` module uses [`IdScheme::search_space`] and
/// [`IdScheme::id_at`] to reproduce the paper's enumeration-cost claims.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IdScheme {
    /// MAC addresses with a publicly known vendor OUI; the attacker must
    /// search only the 24-bit NIC suffix.
    MacWithOui {
        /// The vendor's OUI.
        oui: [u8; 3],
    },
    /// Sequential serial numbers starting from `start`.
    SequentialSerial {
        /// Vendor code embedded in serials.
        vendor: u16,
        /// First unit number.
        start: u64,
    },
    /// Fixed-width all-digit IDs assigned sequentially (the 6/7-digit camera
    /// IDs of the paper's citations \[14\], \[18\]).
    ShortDigits {
        /// Number of digits.
        width: u8,
    },
    /// 128-bit random IDs (the recommended strong scheme).
    RandomUuid,
}

impl IdScheme {
    /// Number of distinct IDs the scheme can produce — the attacker's
    /// worst-case search space.
    ///
    /// Returns `None` for spaces that overflow `u128` (never happens for the
    /// supported schemes, but keeps the API total).
    pub fn search_space(&self) -> u128 {
        match self {
            IdScheme::MacWithOui { .. } => 1 << 24,
            IdScheme::SequentialSerial { .. } => u128::from(u64::MAX),
            IdScheme::ShortDigits { width } => 10u128.pow(u32::from(*width)),
            IdScheme::RandomUuid => u128::MAX,
        }
    }

    /// The `index`-th ID under this scheme, for deterministic allocation and
    /// for attacker enumeration.
    ///
    /// For [`IdScheme::RandomUuid`] the index is diffused through a
    /// SplitMix64-style mixer: the scheme is *modeled* as unpredictable, so
    /// enumeration by index does not correspond to real allocation order.
    pub fn id_at(&self, index: u64) -> DevId {
        match self {
            IdScheme::MacWithOui { oui } => {
                DevId::Mac(MacAddr::from_oui(*oui, (index as u32) & 0x00ff_ffff))
            }
            IdScheme::SequentialSerial { vendor, start } => DevId::Serial {
                vendor: *vendor,
                seq: start.wrapping_add(index),
            },
            IdScheme::ShortDigits { width } => DevId::Digits {
                value: (index % 10u64.pow(u32::from(*width))) as u32,
                width: *width,
            },
            IdScheme::RandomUuid => {
                let lo = splitmix64(index);
                let hi = splitmix64(index ^ 0x9e37_79b9_7f4a_7c15);
                DevId::Uuid((u128::from(hi) << 64) | u128::from(lo))
            }
        }
    }

    /// Whether an attacker can practically enumerate the whole space at the
    /// given probe rate within the given number of seconds.
    pub fn enumerable_within(&self, probes_per_sec: u64, seconds: u64) -> bool {
        let budget = u128::from(probes_per_sec) * u128::from(seconds);
        self.search_space() <= budget
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_roundtrips_oui_and_suffix() {
        let mac = MacAddr::from_oui([0x94, 0x10, 0x3e], 0x0a0b0c);
        assert_eq!(mac.oui(), [0x94, 0x10, 0x3e]);
        assert_eq!(mac.nic_suffix(), 0x0a0b0c);
        assert_eq!(mac.to_string(), "94:10:3e:0a:0b:0c");
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn mac_from_oui_rejects_oversized_suffix() {
        let _ = MacAddr::from_oui([0, 0, 0], 0x0100_0000);
    }

    #[test]
    fn digits_validation_enforces_width() {
        assert!(DevId::Digits {
            value: 123_456,
            width: 6
        }
        .validate()
        .is_ok());
        assert!(DevId::Digits {
            value: 1_234_567,
            width: 6
        }
        .validate()
        .is_err());
        assert!(DevId::Digits { value: 1, width: 0 }.validate().is_err());
        assert!(DevId::Digits {
            value: 1,
            width: 10
        }
        .validate()
        .is_err());
    }

    #[test]
    fn short_formats_are_distinct_and_padded() {
        let a = DevId::Digits {
            value: 42,
            width: 6,
        };
        assert_eq!(a.short(), "id:000042");
        let b = DevId::Serial {
            vendor: 0x00ab,
            seq: 9,
        };
        assert_eq!(b.short(), "sn:00ab-9");
        assert_ne!(a.short(), b.short());
    }

    #[test]
    fn mac_scheme_search_space_is_24_bits() {
        let scheme = IdScheme::MacWithOui { oui: [1, 2, 3] };
        assert_eq!(scheme.search_space(), 1 << 24);
    }

    #[test]
    fn six_digit_ids_enumerable_within_an_hour() {
        // The paper: "some device IDs only contain 6 or 7 digits, allowing
        // attackers to traverse all possible IDs within an hour."
        let six = IdScheme::ShortDigits { width: 6 };
        let seven = IdScheme::ShortDigits { width: 7 };
        // 300 probes/sec is a very modest HTTP request rate.
        assert!(six.enumerable_within(300, 3600));
        assert!(seven.enumerable_within(3000, 3600));
        // A UUID space never is.
        assert!(!IdScheme::RandomUuid.enumerable_within(u64::MAX, u64::MAX));
    }

    #[test]
    fn sequential_allocation_is_dense() {
        let scheme = IdScheme::SequentialSerial {
            vendor: 7,
            start: 100,
        };
        assert_eq!(
            scheme.id_at(0),
            DevId::Serial {
                vendor: 7,
                seq: 100
            }
        );
        assert_eq!(
            scheme.id_at(5),
            DevId::Serial {
                vendor: 7,
                seq: 105
            }
        );
    }

    #[test]
    fn uuid_allocation_is_diffused() {
        let scheme = IdScheme::RandomUuid;
        let a = scheme.id_at(0);
        let b = scheme.id_at(1);
        assert_ne!(a, b);
        // Adjacent indices must not produce adjacent ids.
        if let (DevId::Uuid(x), DevId::Uuid(y)) = (a, b) {
            assert!(x.abs_diff(y) > 1 << 64);
        } else {
            panic!("uuid scheme must produce uuid ids");
        }
    }

    #[test]
    fn digit_allocation_wraps_at_width() {
        let scheme = IdScheme::ShortDigits { width: 6 };
        assert_eq!(scheme.id_at(1_000_000), scheme.id_at(0));
        assert!(scheme.id_at(999_999).validate().is_ok());
    }
}
