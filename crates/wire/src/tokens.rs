//! Credential and token newtypes (`DevToken`, `UserToken`, `BindToken`,
//! `SessionToken`, `UserId`, `UserPw`).
//!
//! Tokens are 128-bit random values; the paper's central recommendation is
//! that *random* tokens (delivered out of band through local configuration)
//! must replace *definite* identifiers for authentication and authorization.
//! Token material is opaque `[u8; 16]` and constructed from caller-supplied
//! entropy, keeping this crate free of RNG dependencies and the simulations
//! deterministic.

use crate::bytestr::ByteStr;
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! token_newtype {
    ($(#[$meta:meta])* $name:ident, $label:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name([u8; 16]);

        impl $name {
            /// Wraps raw token material.
            pub fn from_bytes(bytes: [u8; 16]) -> Self {
                Self(bytes)
            }

            /// Builds a token from 128 bits of caller-supplied entropy.
            pub fn from_entropy(entropy: u128) -> Self {
                Self(entropy.to_be_bytes())
            }

            /// The raw token material.
            pub fn as_bytes(&self) -> &[u8; 16] {
                &self.0
            }

            /// The token material as a `u128` (for codecs).
            pub fn to_u128(self) -> u128 {
                u128::from_be_bytes(self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Redact all but a 4-byte prefix so experiment logs do not
                // become token oracles.
                write!(
                    f,
                    concat!($label, "({:02x}{:02x}{:02x}{:02x}..)"),
                    self.0[0], self.0[1], self.0[2], self.0[3]
                )
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

token_newtype!(
    /// `DevToken`: random data for device authentication, requested from the
    /// cloud by the app and delivered to the device during local
    /// configuration (Figure 3, Type 1).
    DevToken,
    "DevToken"
);

token_newtype!(
    /// `UserToken`: random data returned by the cloud at login, used to
    /// authenticate the user in subsequent requests.
    UserToken,
    "UserToken"
);

token_newtype!(
    /// `BindToken`: random data authorizing a *capability-based* binding —
    /// possession proves the user locally communicated with the device
    /// (Section IV-B, Samsung SmartThings style).
    BindToken,
    "BindToken"
);

token_newtype!(
    /// Post-binding session token returned to *both* user and device when a
    /// binding is created; subsequently required on every control/status
    /// message (the "extra step for post-binding authorization" of
    /// Section IV-B that defeats hijack-then-control).
    SessionToken,
    "SessionToken"
);

/// `UserId`: the human-readable account identifier, e.g. an email address.
///
/// Backed by a [`ByteStr`], so a decoder holding the packet's [`bytes::Bytes`]
/// buffer can build one without copying the identifier out.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(ByteStr);

impl UserId {
    /// Maximum accepted length in bytes.
    pub const MAX_LEN: usize = 256;

    /// Creates a user id, truncating to [`UserId::MAX_LEN`] bytes.
    pub fn new(id: impl Into<String>) -> Self {
        UserId::from_bytestr(ByteStr::new(id))
    }

    /// Creates a user id from an existing [`ByteStr`] (zero-copy when the
    /// value fits [`UserId::MAX_LEN`]; truncation slices, never copies).
    pub fn from_bytestr(id: ByteStr) -> Self {
        UserId(id.truncated(Self::MAX_LEN))
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for UserId {
    fn from(s: &str) -> Self {
        UserId::new(s)
    }
}

/// `UserPw`: the account password. Display/Debug are redacted; the paper's
/// fourth lesson is that this credential "should never be delivered to the
/// device", which device-initiated ACL binding violates.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserPw(ByteStr);

impl UserPw {
    /// Creates a password value.
    pub fn new(pw: impl Into<String>) -> Self {
        UserPw(ByteStr::new(pw))
    }

    /// Creates a password from an existing [`ByteStr`] (zero-copy).
    pub fn from_bytestr(pw: ByteStr) -> Self {
        UserPw(pw)
    }

    /// Constant-time-ish comparison (length leak only); enough for a
    /// simulator, and it documents the right instinct.
    pub fn verify(&self, candidate: &UserPw) -> bool {
        if self.0.len() != candidate.0.len() {
            return false;
        }
        self.0
            .bytes()
            .zip(candidate.0.bytes())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }

    /// Exposes the secret; only the codec should need this.
    pub fn expose(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for UserPw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("UserPw(<redacted>)")
    }
}

impl fmt::Display for UserPw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<redacted>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrips_entropy() {
        let t = DevToken::from_entropy(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(t.to_u128(), 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(DevToken::from_bytes(*t.as_bytes()), t);
    }

    #[test]
    fn token_debug_redacts_tail() {
        let t = UserToken::from_bytes([0xaa; 16]);
        let s = format!("{t:?}");
        assert_eq!(s, "UserToken(aaaaaaaa..)");
        assert!(!s.contains(&"aa".repeat(16)));
    }

    #[test]
    fn distinct_token_types_do_not_unify() {
        // Compile-time property: DevToken and UserToken are different types.
        fn takes_dev(_: DevToken) {}
        takes_dev(DevToken::from_entropy(1));
        // takes_dev(UserToken::from_entropy(1)); // must not compile
    }

    #[test]
    fn user_id_truncates_at_max_len() {
        let long = "x".repeat(UserId::MAX_LEN + 100);
        let id = UserId::new(long);
        assert_eq!(id.as_str().len(), UserId::MAX_LEN);
    }

    #[test]
    fn user_id_truncates_on_char_boundary() {
        let long = "é".repeat(UserId::MAX_LEN); // 2 bytes per char
        let id = UserId::new(long);
        assert!(id.as_str().len() <= UserId::MAX_LEN);
        assert!(id.as_str().chars().all(|c| c == 'é'));
    }

    #[test]
    fn password_verify_and_redaction() {
        let pw = UserPw::new("hunter2");
        assert!(pw.verify(&UserPw::new("hunter2")));
        assert!(!pw.verify(&UserPw::new("hunter3")));
        assert!(!pw.verify(&UserPw::new("hunter22")));
        assert_eq!(format!("{pw:?}"), "UserPw(<redacted>)");
        assert_eq!(pw.to_string(), "<redacted>");
    }

    #[test]
    fn session_token_ordering_is_stable() {
        let a = SessionToken::from_entropy(1);
        let b = SessionToken::from_entropy(2);
        assert!(a < b);
    }
}
