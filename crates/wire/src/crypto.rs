//! Simulated cryptographic primitives.
//!
//! The reproduction does not need real cryptography — it needs the
//! *authorization structure* of the studied protocols. [`sign_dev_id`]
//! stands in for an asymmetric device signature (AWS/IBM/Google-style
//! public-key authentication): unforgeable without the secret, verifiable
//! by whoever registered the key.

use crate::ids::DevId;

/// Produces the simulated signature of `dev_id` under `secret`.
///
/// Deterministic; mixes an FNV-1a digest of the ID into the key material so
/// signatures differ across both devices and keys.
pub fn sign_dev_id(secret: u128, dev_id: &DevId) -> u128 {
    let digest = dev_id
        .short()
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
        });
    secret ^ ((u128::from(digest) << 64) | u128::from(digest.rotate_left(17)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MacAddr;

    #[test]
    fn signature_depends_on_both_inputs() {
        let a = DevId::Mac(MacAddr::new([1, 2, 3, 4, 5, 6]));
        let b = DevId::Mac(MacAddr::new([1, 2, 3, 4, 5, 7]));
        assert_ne!(sign_dev_id(1, &a), sign_dev_id(1, &b));
        assert_ne!(sign_dev_id(1, &a), sign_dev_id(2, &a));
        assert_eq!(sign_dev_id(1, &a), sign_dev_id(1, &a));
    }
}
