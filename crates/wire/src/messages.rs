//! The primitive message vocabulary of remote binding.
//!
//! The paper's state-machine model (Section III-B) reduces remote binding to
//! three primitive message types — `Status`, `Bind`, `Unbind` — plus the
//! surrounding user-authentication and control traffic. The enums here
//! encode *every concrete shape* of those primitives observed across the 10
//! studied vendors (Figures 3 and 4, Section IV-C), so a vendor design is
//! just a choice of variants, and an attack is just a forged value.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::bytestr::ByteStr;
use crate::ids::DevId;
use crate::telemetry::{RuleTrigger, ScheduleEntry, TelemetryFrame};
use crate::tokens::{BindToken, DevToken, SessionToken, UserId, UserPw, UserToken};

/// How a `Status` message authenticates the device (Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatusAuth {
    /// Type 1: a dynamic [`DevToken`] obtained via the user's app during
    /// local configuration. The secure commodity option.
    DevToken(DevToken),
    /// Type 2: the static [`DevId`]. The option that makes A1/A3-4/A4
    /// possible once the ID leaks.
    DevId(DevId),
    /// Public-key style authentication (AWS/IBM/Google IoT): a key id plus a
    /// simulated signature over the message. Requires per-device key
    /// provisioning at manufacture time.
    PublicKey {
        /// Identifies the device key registered in the cloud.
        key_id: u64,
        /// Simulated signature value (the signing simulation lives in
        /// `rb-cloud::keystore`).
        signature: u128,
    },
}

impl StatusAuth {
    /// The device ID carried by the authenticator, if any.
    pub fn dev_id(&self) -> Option<&DevId> {
        match self {
            StatusAuth::DevId(id) => Some(id),
            _ => None,
        }
    }
}

/// Whether a `Status` message is the initial registration or a keep-alive.
///
/// The paper notes both "share the same functionality: they change the
/// online/offline state of a device shadow", so the cloud treats them
/// uniformly; the distinction matters only for realistic traffic shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatusKind {
    /// First message after the device joins the network.
    Register,
    /// Periodic keep-alive.
    Heartbeat,
}

/// Static attributes reported alongside status messages ("the firmware
/// version and the model name").
///
/// Fields are [`ByteStr`]s so a zero-copy decoder can slice them straight
/// out of the packet buffer; they still print, compare, and deref like
/// strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceAttributes {
    /// Marketing model name.
    pub model: ByteStr,
    /// Firmware version string.
    pub firmware: ByteStr,
}

impl DeviceAttributes {
    /// Convenience constructor.
    pub fn new(model: impl Into<ByteStr>, firmware: impl Into<ByteStr>) -> Self {
        DeviceAttributes {
            model: model.into(),
            firmware: firmware.into(),
        }
    }
}

impl Default for DeviceAttributes {
    fn default() -> Self {
        DeviceAttributes::new("generic", "0.0.0")
    }
}

/// A `Status` message: sent by the device (or forged by an attacker holding
/// the device ID) to report liveness and telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusPayload {
    /// How the sender authenticates as the device.
    pub auth: StatusAuth,
    /// The device ID the sender claims to be (always present: even
    /// token-authenticated designs carry the ID for routing).
    pub dev_id: DevId,
    /// Registration vs heartbeat.
    pub kind: StatusKind,
    /// Device attributes (model, firmware).
    pub attributes: DeviceAttributes,
    /// Post-binding session token, required by designs with post-binding
    /// authorization once the device is bound.
    pub session: Option<SessionToken>,
    /// Telemetry carried with the status report.
    pub telemetry: Vec<TelemetryFrame>,
    /// Whether a physical button on the device was pressed in the reporting
    /// interval (Philips-Hue-style ownership proof for binding).
    pub button_pressed: bool,
}

impl StatusPayload {
    /// A plain heartbeat with no telemetry.
    pub fn heartbeat(auth: StatusAuth, dev_id: DevId) -> Self {
        StatusPayload {
            auth,
            dev_id,
            kind: StatusKind::Heartbeat,
            attributes: DeviceAttributes::default(),
            session: None,
            telemetry: Vec::new(),
            button_pressed: false,
        }
    }

    /// A registration message with attributes.
    pub fn register(auth: StatusAuth, dev_id: DevId, attributes: DeviceAttributes) -> Self {
        StatusPayload {
            auth,
            dev_id,
            kind: StatusKind::Register,
            attributes,
            session: None,
            telemetry: Vec::new(),
            button_pressed: false,
        }
    }
}

/// A `Bind` message: creates a binding between a user and a device
/// (Figure 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BindPayload {
    /// ACL-based binding sent by the *app*: `Bind:(DevId, UserToken)`.
    AclApp {
        /// Device to bind.
        dev_id: DevId,
        /// The requesting user's token.
        user_token: UserToken,
    },
    /// ACL-based binding sent by the *device*, which received the user's
    /// account credentials during local configuration:
    /// `Bind:(DevId, UserId, UserPw)`. Flagged by the paper as dangerous.
    AclDevice {
        /// Device to bind.
        dev_id: DevId,
        /// Account identifier delivered to the device.
        user_id: UserId,
        /// Account password delivered to the device.
        user_pw: UserPw,
    },
    /// Capability-based binding: `Bind:BindToken`. The token was issued to
    /// the user by the cloud, carried to the device over the local network,
    /// and submitted back by the device — proving local co-presence.
    Capability {
        /// The authorization capability.
        bind_token: BindToken,
    },
}

impl BindPayload {
    /// The device ID named in the payload, if the scheme names one.
    pub fn dev_id(&self) -> Option<&DevId> {
        match self {
            BindPayload::AclApp { dev_id, .. } | BindPayload::AclDevice { dev_id, .. } => {
                Some(dev_id)
            }
            BindPayload::Capability { .. } => None,
        }
    }
}

/// An `Unbind` message: revokes a binding (Section IV-C).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnbindPayload {
    /// Type 1: `Unbind:(DevId, UserToken)` — sender proves a user identity;
    /// a *correct* cloud additionally checks the user is the bound one.
    DevIdUserToken {
        /// Device whose binding is revoked.
        dev_id: DevId,
        /// The requesting user's token.
        user_token: UserToken,
    },
    /// Type 2: `Unbind:DevId` — sent during device reset; anyone holding the
    /// device ID can forge it (attack A3-1).
    DevIdOnly {
        /// Device whose binding is revoked.
        dev_id: DevId,
    },
}

impl UnbindPayload {
    /// The device ID named in the payload.
    pub fn dev_id(&self) -> &DevId {
        match self {
            UnbindPayload::DevIdUserToken { dev_id, .. } | UnbindPayload::DevIdOnly { dev_id } => {
                dev_id
            }
        }
    }
}

/// A remote-control action on a bound device.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlAction {
    /// Switch the load on.
    TurnOn,
    /// Switch the load off.
    TurnOff,
    /// Set bulb brightness (0–100).
    SetBrightness(u8),
    /// Store a schedule entry cloud-side (smart-lock/plug timers).
    SetSchedule(ScheduleEntry),
    /// Read back the stored schedule — the response is the private data A1
    /// *stealing* targets.
    QuerySchedule,
    /// Read the most recent telemetry the cloud holds for the device.
    QueryTelemetry,
}

impl ControlAction {
    /// A short tag for traces and forensic marks.
    pub fn kind_str(&self) -> &'static str {
        match self {
            ControlAction::TurnOn => "turn-on",
            ControlAction::TurnOff => "turn-off",
            ControlAction::SetBrightness(_) => "set-brightness",
            ControlAction::SetSchedule(_) => "set-schedule",
            ControlAction::QuerySchedule => "query-schedule",
            ControlAction::QueryTelemetry => "query-telemetry",
        }
    }
}

/// A trigger-action automation rule stored cloud-side (IFTTT-style,
/// paper §V-B). When telemetry from `trigger_dev` satisfies `trigger`, the
/// cloud relays `action` to `action_dev` — which is why injected fake
/// telemetry has a *cascade* effect.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AutomationRule {
    /// The sensor device whose telemetry is watched.
    pub trigger_dev: DevId,
    /// The condition.
    pub trigger: RuleTrigger,
    /// The actuator device.
    pub action_dev: DevId,
    /// What to do when the condition fires.
    pub action: ControlAction,
}

/// Every message a party can send toward the cloud (requests) — the
/// counterpart is [`Response`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// User login: `(UserId, UserPw)` → `Response::LoginOk(UserToken)`.
    Login {
        /// Account identifier.
        user_id: UserId,
        /// Account password.
        user_pw: UserPw,
    },
    /// App requests a fresh [`DevToken`] to hand to a device during local
    /// configuration (Figure 3, Type 1 step 1).
    RequestDevToken {
        /// The logged-in user's token.
        user_token: UserToken,
    },
    /// App requests a [`BindToken`] capability (capability-based designs).
    RequestBindToken {
        /// The logged-in user's token.
        user_token: UserToken,
    },
    /// Device status report (or a forgery of one).
    Status(StatusPayload),
    /// Binding creation.
    Bind(BindPayload),
    /// Binding revocation.
    Unbind(UnbindPayload),
    /// Remote control of a bound device by a user.
    Control {
        /// Target device.
        dev_id: DevId,
        /// The requesting user's token.
        user_token: UserToken,
        /// Post-binding session token if the design requires one.
        session: Option<SessionToken>,
        /// The action to perform.
        action: ControlAction,
    },
    /// Query the cloud-side shadow state of a device (diagnostics; used by
    /// experiments, not part of the attacked surface).
    QueryShadow {
        /// Device of interest.
        dev_id: DevId,
    },
    /// Grant another account control of a bound device (device sharing —
    /// the many-to-one binding of the paper's footnote 2). Only the bound
    /// owner may share.
    Share {
        /// The shared device.
        dev_id: DevId,
        /// The owner's token.
        user_token: UserToken,
        /// The account receiving access.
        grantee: UserId,
    },
    /// Store an automation rule; both devices must belong to the requesting
    /// user.
    SetRule {
        /// The rule owner's token.
        user_token: UserToken,
        /// The rule.
        rule: AutomationRule,
    },
    /// Revoke a previously granted share. Only the bound owner may revoke.
    Unshare {
        /// The shared device.
        dev_id: DevId,
        /// The owner's token.
        user_token: UserToken,
        /// The account losing access.
        grantee: UserId,
    },
}

impl Message {
    /// A short tag for traces.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Message::Login { .. } => "Login",
            Message::RequestDevToken { .. } => "RequestDevToken",
            Message::RequestBindToken { .. } => "RequestBindToken",
            Message::Status(_) => "Status",
            Message::Bind(_) => "Bind",
            Message::Unbind(_) => "Unbind",
            Message::Control { .. } => "Control",
            Message::QueryShadow { .. } => "QueryShadow",
            Message::Share { .. } => "Share",
            Message::SetRule { .. } => "SetRule",
            Message::Unshare { .. } => "Unshare",
        }
    }

    /// Whether this is one of the three *primitive* message types of the
    /// state-machine model.
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            Message::Status(_) | Message::Bind(_) | Message::Unbind(_)
        )
    }

    /// A fine-grained tag naming the exact primitive *shape* (Figures 3
    /// and 4), used by the cloud's forensic marks and the `rb-forensics`
    /// classifier to identify which forged primitive an attack used.
    /// Unlike [`Message::kind_str`], this distinguishes e.g. the two
    /// `Unbind` shapes, which map to different attack sub-cases
    /// (A3-1 vs A3-2).
    pub fn primitive_str(&self) -> &'static str {
        match self {
            Message::Login { .. } => "login",
            Message::RequestDevToken { .. } => "request-dev-token",
            Message::RequestBindToken { .. } => "request-bind-token",
            Message::Status(payload) => match payload.kind {
                StatusKind::Register => "status:register",
                StatusKind::Heartbeat => "status:heartbeat",
            },
            Message::Bind(BindPayload::AclApp { .. }) => "bind:acl-app",
            Message::Bind(BindPayload::AclDevice { .. }) => "bind:acl-device",
            Message::Bind(BindPayload::Capability { .. }) => "bind:capability",
            Message::Unbind(UnbindPayload::DevIdUserToken { .. }) => "unbind:dev-id+user-token",
            Message::Unbind(UnbindPayload::DevIdOnly { .. }) => "unbind:dev-id",
            Message::Control { .. } => "control",
            Message::QueryShadow { .. } => "query-shadow",
            Message::Share { .. } => "share",
            Message::SetRule { .. } => "set-rule",
            Message::Unshare { .. } => "unshare",
        }
    }

    /// The device ID this message targets, if it names one. Used by the
    /// cloud to attribute forensic marks to a device shadow.
    pub fn dev_id(&self) -> Option<&DevId> {
        match self {
            Message::Status(payload) => Some(&payload.dev_id),
            Message::Bind(payload) => payload.dev_id(),
            Message::Unbind(payload) => Some(payload.dev_id()),
            Message::Control { dev_id, .. }
            | Message::QueryShadow { dev_id }
            | Message::Share { dev_id, .. }
            | Message::Unshare { dev_id, .. } => Some(dev_id),
            Message::SetRule { rule, .. } => Some(&rule.trigger_dev),
            Message::Login { .. }
            | Message::RequestDevToken { .. }
            | Message::RequestBindToken { .. } => None,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind_str())
    }
}

/// Why a request was denied. Mirrors the checks in `rb-cloud::policy`; the
/// attack engine uses the reason to classify failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DenyReason {
    /// Unknown user or wrong password.
    BadCredentials,
    /// The user token was not issued or has been revoked.
    InvalidUserToken,
    /// Device authentication failed (bad DevToken / signature / unknown id).
    DeviceAuthFailed,
    /// The device is already bound and the policy rejects re-binding.
    AlreadyBound,
    /// The requester is not the user bound to the device.
    NotBoundUser,
    /// The named account does not exist (sharing with a ghost).
    UnknownUser,
    /// The device is not bound to anyone.
    NotBound,
    /// The capability token was not issued or was already consumed.
    InvalidBindToken,
    /// Required post-binding session token missing or wrong.
    BadSession,
    /// Ownership proof failed (button press / source-IP match required).
    OwnershipProofFailed,
    /// The design requires the device to be online for this operation.
    DeviceOffline,
    /// Unknown device ID.
    UnknownDevice,
    /// The message shape is not supported by this vendor's design.
    UnsupportedOperation,
    /// Too many requests from this source (rate limiting).
    RateLimited,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DenyReason::BadCredentials => "bad credentials",
            DenyReason::InvalidUserToken => "invalid user token",
            DenyReason::DeviceAuthFailed => "device authentication failed",
            DenyReason::AlreadyBound => "device already bound",
            DenyReason::NotBoundUser => "requester is not the bound user",
            DenyReason::UnknownUser => "unknown user",
            DenyReason::NotBound => "device is not bound",
            DenyReason::InvalidBindToken => "invalid bind token",
            DenyReason::BadSession => "bad session token",
            DenyReason::OwnershipProofFailed => "ownership proof failed",
            DenyReason::DeviceOffline => "device offline",
            DenyReason::UnknownDevice => "unknown device",
            DenyReason::UnsupportedOperation => "unsupported operation",
            DenyReason::RateLimited => "rate limited",
        };
        f.write_str(s)
    }
}

/// Cloud → party responses and pushes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Login succeeded.
    LoginOk {
        /// Token for subsequent requests.
        user_token: UserToken,
    },
    /// A fresh device token was issued.
    DevTokenIssued {
        /// The token to deliver to the device locally.
        dev_token: DevToken,
    },
    /// A binding capability was issued.
    BindTokenIssued {
        /// The capability to deliver to the device locally.
        bind_token: BindToken,
    },
    /// Status accepted; carries the session token when the design issues
    /// one (post-binding authorization).
    StatusAccepted {
        /// Session token for subsequent messages, if issued.
        session: Option<SessionToken>,
    },
    /// Binding created; carries the session token when the design issues
    /// one to the binding user.
    Bound {
        /// Session token for subsequent messages, if issued.
        session: Option<SessionToken>,
    },
    /// Binding revoked.
    Unbound,
    /// Control action executed; optionally carries queried data.
    ControlOk {
        /// Schedule entries, if the action was `QuerySchedule`.
        schedule: Vec<ScheduleEntry>,
        /// Telemetry, if the action was `QueryTelemetry`.
        telemetry: Vec<TelemetryFrame>,
    },
    /// Shadow state dump (diagnostics).
    ShadowState {
        /// `true` if the shadow is online.
        online: bool,
        /// `true` if the shadow is bound.
        bound: bool,
    },
    /// Push notification to a bound user: fresh telemetry from "their"
    /// device (this is the channel A1 poisons).
    TelemetryPush {
        /// The reporting device.
        dev_id: DevId,
        /// The frames reported.
        telemetry: Vec<TelemetryFrame>,
    },
    /// Push to a device: a control command relayed from the bound user.
    ControlPush {
        /// The action requested.
        action: ControlAction,
        /// Session token if the design requires the device to verify it.
        session: Option<SessionToken>,
    },
    /// Push to a party: your binding was revoked / replaced.
    BindingRevoked,
    /// An automation rule was stored.
    RuleSet {
        /// The user's rule count after the operation.
        count: u16,
    },
    /// A share grant/revocation was applied; carries the binding session
    /// token (if the design issues one) so the owner can hand it to the
    /// guest through the vendor's sharing flow, plus the guest count.
    ShareOk {
        /// Session token the guest will need on control requests.
        session: Option<SessionToken>,
        /// Number of guests after the operation.
        guests: u16,
    },
    /// The request was denied.
    Denied {
        /// Why.
        reason: DenyReason,
    },
}

impl Response {
    /// A short tag for traces.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Response::LoginOk { .. } => "LoginOk",
            Response::DevTokenIssued { .. } => "DevTokenIssued",
            Response::BindTokenIssued { .. } => "BindTokenIssued",
            Response::StatusAccepted { .. } => "StatusAccepted",
            Response::Bound { .. } => "Bound",
            Response::Unbound => "Unbound",
            Response::ControlOk { .. } => "ControlOk",
            Response::ShadowState { .. } => "ShadowState",
            Response::TelemetryPush { .. } => "TelemetryPush",
            Response::ControlPush { .. } => "ControlPush",
            Response::BindingRevoked => "BindingRevoked",
            Response::ShareOk { .. } => "ShareOk",
            Response::RuleSet { .. } => "RuleSet",
            Response::Denied { .. } => "Denied",
        }
    }

    /// Whether the response signals success.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Denied { .. })
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Denied { reason } => write!(f, "Denied({reason})"),
            other => f.write_str(other.kind_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MacAddr;

    fn dev_id() -> DevId {
        DevId::Mac(MacAddr::new([1, 2, 3, 4, 5, 6]))
    }

    #[test]
    fn primitive_classification_matches_the_paper() {
        let status = Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        ));
        let bind = Message::Bind(BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: UserToken::from_entropy(1),
        });
        let unbind = Message::Unbind(UnbindPayload::DevIdOnly { dev_id: dev_id() });
        let login = Message::Login {
            user_id: UserId::new("a@example.com"),
            user_pw: UserPw::new("pw"),
        };
        assert!(status.is_primitive());
        assert!(bind.is_primitive());
        assert!(unbind.is_primitive());
        assert!(!login.is_primitive());
    }

    #[test]
    fn bind_payload_dev_id_presence() {
        let acl = BindPayload::AclApp {
            dev_id: dev_id(),
            user_token: UserToken::from_entropy(1),
        };
        assert_eq!(acl.dev_id(), Some(&dev_id()));
        let cap = BindPayload::Capability {
            bind_token: BindToken::from_entropy(2),
        };
        assert_eq!(cap.dev_id(), None);
    }

    #[test]
    fn unbind_payload_always_names_a_device() {
        let u1 = UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: UserToken::from_entropy(3),
        };
        let u2 = UnbindPayload::DevIdOnly { dev_id: dev_id() };
        assert_eq!(u1.dev_id(), &dev_id());
        assert_eq!(u2.dev_id(), &dev_id());
    }

    #[test]
    fn status_auth_dev_id_extraction() {
        assert_eq!(StatusAuth::DevId(dev_id()).dev_id(), Some(&dev_id()));
        assert_eq!(
            StatusAuth::DevToken(DevToken::from_entropy(1)).dev_id(),
            None
        );
        assert_eq!(
            StatusAuth::PublicKey {
                key_id: 1,
                signature: 2
            }
            .dev_id(),
            None
        );
    }

    #[test]
    fn deny_reason_display_is_informative() {
        assert_eq!(
            DenyReason::NotBoundUser.to_string(),
            "requester is not the bound user"
        );
        let r = Response::Denied {
            reason: DenyReason::AlreadyBound,
        };
        assert_eq!(r.to_string(), "Denied(device already bound)");
        assert!(!r.is_ok());
        assert!(Response::Unbound.is_ok());
    }

    #[test]
    fn primitive_str_distinguishes_shapes_kind_str_does_not() {
        let unbind_reset = Message::Unbind(UnbindPayload::DevIdOnly { dev_id: dev_id() });
        let unbind_user = Message::Unbind(UnbindPayload::DevIdUserToken {
            dev_id: dev_id(),
            user_token: UserToken::from_entropy(1),
        });
        // Same coarse kind, different primitive shape — the distinction the
        // forensic classifier needs to tell A3-1 from A3-2.
        assert_eq!(unbind_reset.kind_str(), unbind_user.kind_str());
        assert_eq!(unbind_reset.primitive_str(), "unbind:dev-id");
        assert_eq!(unbind_user.primitive_str(), "unbind:dev-id+user-token");

        let register = Message::Status(StatusPayload::register(
            StatusAuth::DevId(dev_id()),
            dev_id(),
            DeviceAttributes::default(),
        ));
        let heartbeat = Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        ));
        assert_eq!(register.primitive_str(), "status:register");
        assert_eq!(heartbeat.primitive_str(), "status:heartbeat");

        let cap = Message::Bind(BindPayload::Capability {
            bind_token: BindToken::from_entropy(2),
        });
        assert_eq!(cap.primitive_str(), "bind:capability");
    }

    #[test]
    fn message_dev_id_targets() {
        let status = Message::Status(StatusPayload::heartbeat(
            StatusAuth::DevId(dev_id()),
            dev_id(),
        ));
        assert_eq!(status.dev_id(), Some(&dev_id()));
        let login = Message::Login {
            user_id: UserId::new("u"),
            user_pw: UserPw::new("p"),
        };
        assert_eq!(login.dev_id(), None);
        let cap = Message::Bind(BindPayload::Capability {
            bind_token: BindToken::from_entropy(2),
        });
        assert_eq!(cap.dev_id(), None, "capability binds name no device");
        let control = Message::Control {
            dev_id: dev_id(),
            user_token: UserToken::from_entropy(1),
            session: None,
            action: ControlAction::TurnOn,
        };
        assert_eq!(control.dev_id(), Some(&dev_id()));
    }

    #[test]
    fn message_kind_strings_cover_all_variants() {
        let msgs = [
            Message::Login {
                user_id: UserId::new("u"),
                user_pw: UserPw::new("p"),
            },
            Message::RequestDevToken {
                user_token: UserToken::from_entropy(0),
            },
            Message::RequestBindToken {
                user_token: UserToken::from_entropy(0),
            },
            Message::QueryShadow { dev_id: dev_id() },
        ];
        let kinds: Vec<_> = msgs.iter().map(|m| m.kind_str()).collect();
        assert_eq!(
            kinds,
            [
                "Login",
                "RequestDevToken",
                "RequestBindToken",
                "QueryShadow"
            ]
        );
    }
}
