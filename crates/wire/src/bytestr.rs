//! [`ByteStr`]: an immutable UTF-8 string view over a shared [`Bytes`]
//! buffer.
//!
//! The compact wire codec decodes string fields as *sub-slices of the
//! arriving packet* — a refcount bump instead of a heap allocation per
//! field. `ByteStr` is the type that carries that borrow: it wraps a
//! [`Bytes`] handle whose contents are guaranteed valid UTF-8, and it
//! compares, orders, and hashes by string content, so the credential
//! newtypes ([`crate::tokens::UserId`], [`crate::tokens::UserPw`]) and
//! device attributes can switch their internals to it without changing
//! observable behavior.
//!
//! ```
//! use rb_wire::bytestr::ByteStr;
//! use bytes::Bytes;
//!
//! // Zero-copy: the ByteStr shares the packet's allocation.
//! let packet = Bytes::from(b"...alice@example.com...".to_vec());
//! let field = ByteStr::from_utf8(packet.slice(3..20)).expect("valid UTF-8");
//! assert_eq!(field.as_str(), "alice@example.com");
//!
//! // Owned construction still works for call sites that build values.
//! let owned = ByteStr::new("alice@example.com");
//! assert_eq!(owned, field);
//! ```

use bytes::Bytes;
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;

/// An immutable UTF-8 string backed by a reference-counted [`Bytes`]
/// buffer. Cloning is O(1); equality, ordering, and hashing follow the
/// string content (matching `String`/`str` semantics).
#[derive(Clone, Default)]
pub struct ByteStr(Bytes);

impl ByteStr {
    /// Creates a `ByteStr` from an owned string (one allocation, the
    /// `String`'s own buffer is reused).
    pub fn new(s: impl Into<String>) -> Self {
        ByteStr(Bytes::from(s.into().into_bytes()))
    }

    /// Wraps a [`Bytes`] buffer after validating it is UTF-8 — the
    /// zero-copy path used by the compact codec's decoder.
    pub fn from_utf8(bytes: Bytes) -> Result<Self, std::str::Utf8Error> {
        std::str::from_utf8(&bytes)?;
        Ok(ByteStr(bytes))
    }

    /// The string content.
    pub fn as_str(&self) -> &str {
        // SAFETY-FREE invariant: every constructor validates UTF-8, and the
        // buffer is immutable afterwards, so this re-check always succeeds.
        std::str::from_utf8(&self.0).unwrap_or_default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a prefix of at most `max` bytes, cut on a char boundary —
    /// zero-copy (shares this value's backing buffer). Used by bounded
    /// fields like `UserId` to enforce their length cap.
    pub fn truncated(&self, max: usize) -> ByteStr {
        if self.len() <= max {
            return self.clone();
        }
        let s = self.as_str();
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        ByteStr(self.0.slice(..cut))
    }
}

impl Deref for ByteStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for ByteStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for ByteStr {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for ByteStr {
    fn from(s: &str) -> Self {
        ByteStr::new(s)
    }
}

impl From<String> for ByteStr {
    fn from(s: String) -> Self {
        ByteStr::new(s)
    }
}

impl PartialEq for ByteStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for ByteStr {}

impl PartialEq<str> for ByteStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for ByteStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for ByteStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ByteStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for ByteStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `str`'s Hash so `Borrow<str>` map lookups work.
        self.as_str().hash(state);
    }
}

impl fmt::Display for ByteStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for ByteStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zero_copy_slice_view() {
        let packet = Bytes::from(b"xxhelloyy".to_vec());
        let s = ByteStr::from_utf8(packet.slice(2..7)).expect("utf8");
        assert_eq!(s.as_str(), "hello");
        assert_eq!(s, "hello");
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn rejects_invalid_utf8() {
        let bad = Bytes::from(vec![0xff, 0xfe]);
        assert!(ByteStr::from_utf8(bad).is_err());
    }

    #[test]
    fn content_equality_across_backings() {
        let owned = ByteStr::new("café");
        let sliced = ByteStr::from_utf8(Bytes::from("xcaféx".as_bytes().to_vec()).slice(1..6))
            .expect("utf8");
        assert_eq!(owned, sliced);
        assert_eq!(owned.cmp(&sliced), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_str_for_map_lookup() {
        let mut map: HashMap<ByteStr, u32> = HashMap::new();
        map.insert(ByteStr::new("alice"), 1);
        // Borrow<str> lookup must find the entry.
        assert_eq!(map.get("alice"), Some(&1));
    }

    #[test]
    fn truncated_cuts_on_char_boundary() {
        let s = ByteStr::new("é".repeat(10)); // 2 bytes each
        let t = s.truncated(5);
        assert_eq!(t.len(), 4);
        assert!(t.as_str().chars().all(|c| c == 'é'));
        // No-op when already short enough.
        assert_eq!(s.truncated(100), s);
    }

    #[test]
    fn display_and_debug_match_str() {
        let s = ByteStr::new("a\"b");
        assert_eq!(s.to_string(), "a\"b");
        assert_eq!(format!("{s:?}"), "\"a\\\"b\"");
    }
}
